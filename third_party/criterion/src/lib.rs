//! Minimal wall-clock stand-in for the `criterion` crate.
//!
//! Covers the subset of the criterion 0.5 API the bench crate uses:
//! groups, `sample_size`, `bench_function`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros. Each benchmark
//! runs `sample_size` timed iterations (after one warm-up) and prints the
//! mean wall time per iteration — no statistics, plots, or baselines.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Wall-clock measurement (the only measurement the stand-in has).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: PhantomData,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    _parent: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: a warm-up call, then `sample_size` timed
    /// iterations, reporting the mean.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size as u64,
            total: Duration::ZERO,
            timed: 0,
        };
        f(&mut b);
        let mean = if b.timed == 0 {
            Duration::ZERO
        } else {
            b.total / b.timed as u32
        };
        println!(
            "bench {}/{id}: {mean:?}/iter ({} iters)",
            self.name, b.timed
        );
        self
    }

    /// Ends the group (for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the hot callable.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed: u64,
}

impl Bencher {
    /// Runs `f` once untimed (warm-up), then `iters` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.timed += 1;
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // one warm-up + three timed
        assert_eq!(calls, 4);
    }
}
