//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! Implements exactly the subset of the proptest 1.x API this workspace's
//! property tests use. Inputs are drawn from a splitmix64 stream seeded by
//! the test name, so every run sees the same cases (reproducible failures,
//! no flakiness). No shrinking, no failure persistence.

pub mod rng {
    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct Rng(u64);

    impl Rng {
        /// Seeds the stream from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng(h | 1)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;

    use crate::rng::Rng;

    /// A generator of random values (the proptest `Strategy` trait, minus
    /// shrinking).
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi - lo) as u128;
                    let v = lo + (u128::from(rng.next_u64()) % span) as i128;
                    v as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Values produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Vectors with a length drawn from `size` and elements from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::rng::Rng;
    use crate::strategy::Any;

    /// Types with a canonical random generator (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use std::ops::Range;

        use crate::strategy::{Strategy, VecStrategy};

        /// A `Vec` strategy with the given element strategy and size range.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }
    }
}

/// Per-test configuration (`cases` is the only knob the stand-in honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Declares deterministic property tests (see crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng::Rng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($s) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng::Rng::from_name("bounds");
        for _ in 0..1000 {
            let v = crate::strategy::Strategy::generate(&(3usize..12), &mut rng);
            assert!((3..12).contains(&v));
            let w = crate::strategy::Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&w));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::rng::Rng::from_name("x");
        let mut b = crate::rng::Rng::from_name("x");
        let s = prop::collection::vec((any::<u8>(), 0usize..9), 1..20);
        let va = crate::strategy::Strategy::generate(&s, &mut a);
        let vb = crate::strategy::Strategy::generate(&s, &mut b);
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_compiles_and_runs(
            xs in prop::collection::vec(0u64..100, 1..5),
            flip in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 5);
            let _ = flip;
            prop_assert!(xs.iter().all(|&x| x < 100));
        }
    }
}
