//! Suite-level gate for bulk per-superblock cache accounting (DESIGN §13):
//! for every Table 2 workload, a run with batched accounting armed (the
//! production default — deferred per-run tallies, sealed poll-run collapse,
//! precomputed miss-latency increments) must be *bit-identical* to a run
//! with immediate per-access accounting — same checksum, same full
//! `RunStats` (uops, cycles, hit mix, abort counts, marker snaps), sample
//! for sample. Bulk charging is only a valid optimisation if no observation
//! point can tell the two accounting disciplines apart.
//!
//! A second leg repeats the comparison under fault pressure (targeted
//! mid-chain aborts, the overflow-prone line-budget kind, and injected
//! conflicts), because the mid-block unapply path — refunding a sealed
//! run's bulk charge when a trap or abort redirects between its head and
//! its last poll — is exactly the machinery faults stress. A third leg
//! sweeps the §6.3 hardware variants so the equivalence is not an artifact
//! of the Table 1 geometry.

use hasp_experiments::{
    compile_workload, profile_workload, try_execute_compiled, CompiledWorkload, ProfiledWorkload,
};
use hasp_hw::{FaultPlan, HwConfig};
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

fn unbatched_with_name(name: &'static str) -> HwConfig {
    let mut hw = HwConfig::unbatched();
    // Same timing name so WorkloadRun equality only differs by stats if the
    // accounting disciplines genuinely diverge.
    hw.name = name;
    hw
}

fn run_both(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    batched: HwConfig,
    unbatched: HwConfig,
) {
    assert!(batched.batched_mem && !unbatched.batched_mem);
    let b = try_execute_compiled(w, profiled, compiled, &batched);
    let u = try_execute_compiled(w, profiled, compiled, &unbatched);
    match (b, u) {
        (Ok(b), Ok(u)) => {
            assert_eq!(
                b.stats, u.stats,
                "{}: batched stats diverged from the per-access reference",
                w.name
            );
            assert_eq!(b.samples, u.samples, "{}: samples diverged", w.name);
        }
        (b, u) => panic!(
            "{}: accounting disciplines disagree on outcome:\n  batched:   {b:?}\n  unbatched: {u:?}",
            w.name
        ),
    }
}

/// Every suite workload under the aggressive paper configuration: bulk
/// accounting must reproduce the per-access reference's stats exactly
/// (checksum equality is asserted inside `try_execute_compiled` against the
/// interpreter for both runs).
#[test]
fn all_workloads_identical_across_accounting_disciplines() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic_aggressive());
        run_both(
            &w,
            &profiled,
            &compiled,
            HwConfig::baseline(),
            unbatched_with_name(HwConfig::baseline().name),
        );
    }
}

/// Mid-chain aborts redirect out of blocks whose sealed poll runs may be
/// mid-flight — the precharge-refund path — and the line-budget kind makes
/// overflow surface at run heads; conflicts interleave epoch flash-clears
/// with deferred tallies. Drive all three and require identity cell by
/// cell.
#[test]
fn fault_pressure_identical_across_accounting_disciplines() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").expect("jython");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    for plan in [
        FaultPlan::abort_at(7),
        FaultPlan::overflow_budget(24),
        FaultPlan::conflicts(1_000),
    ] {
        let mut batched = HwConfig::baseline();
        batched.faults = plan.clone();
        let mut unbatched = unbatched_with_name(batched.name);
        unbatched.faults = plan;
        run_both(w, &profiled, &compiled, batched, unbatched);
    }
}

/// The §6.3 hardware variants change cache geometry, width, and MLP — the
/// inputs to the precomputed miss-latency increments — so the equivalence
/// must hold under each, not just Table 1.
#[test]
fn hardware_variants_identical_across_accounting_disciplines() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "fop").expect("fop");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    for variant in [
        HwConfig::with_begin_overhead(),
        HwConfig::single_inflight(),
        HwConfig::two_wide(),
        HwConfig::two_wide_half(),
    ] {
        let batched = variant.clone();
        let mut unbatched = variant;
        unbatched.batched_mem = false;
        run_both(w, &profiled, &compiled, batched, unbatched);
    }
}
