//! Property tests for the core data structures and algorithms:
//! Equation-1 boundary partitioning against brute force, the cache model's
//! speculative-bit state machine, the undo log, and histogram accounting.

use proptest::prelude::*;

use hasp_core::partition::{pi_term, select_boundaries, Candidate};
use hasp_hw::{CacheSim, Histogram, HwConfig};
use hasp_vm::bytecode::ClassId;
use hasp_vm::heap::{Heap, HeapCell};
use hasp_vm::value::Value;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The DP that minimizes Π (Equation 1) matches exhaustive search.
    #[test]
    fn equation1_dp_is_optimal(
        gaps in prop::collection::vec(1u64..300, 1..10),
        r_target in 20u64..400,
    ) {
        let mut prefix = 0;
        let mut cands = vec![Candidate { path_index: 0, prefix_ops: 0 }];
        for (i, g) in gaps.iter().enumerate() {
            prefix += g;
            cands.push(Candidate { path_index: i + 1, prefix_ops: prefix });
        }
        let chosen = select_boundaries(r_target, &cands);
        let dp_cost: f64 = chosen
            .windows(2)
            .map(|w| pi_term(r_target, cands[w[1]].prefix_ops - cands[w[0]].prefix_ops))
            .sum();
        // Brute force over all subsets containing first and last.
        let k = cands.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << (k - 2)) {
            let mut idx = vec![0usize];
            for bit in 0..(k - 2) {
                if mask & (1 << bit) != 0 {
                    idx.push(bit + 1);
                }
            }
            idx.push(k - 1);
            let cost: f64 = idx
                .windows(2)
                .map(|w| pi_term(r_target, cands[w[1]].prefix_ops - cands[w[0]].prefix_ops))
                .sum();
            best = best.min(cost);
        }
        prop_assert!((dp_cost - best).abs() < 1e-6, "dp {dp_cost} vs brute {best}");
    }

    /// Commit clears all speculative bits; abort removes exactly the
    /// speculatively written lines; reads survive aborts.
    #[test]
    fn cache_speculative_state_machine(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..40),
    ) {
        let cfg = HwConfig::baseline();
        let mut commit_side = CacheSim::new(&cfg);
        let mut abort_side = CacheSim::new(&cfg);
        let mut wrote = std::collections::HashSet::new();
        let mut read_only = std::collections::HashSet::new();
        for (slot, is_write) in &accesses {
            let addr = 0x10_000 + slot * cfg.line_bytes;
            commit_side.access(addr, *is_write, true);
            abort_side.access(addr, *is_write, true);
            if *is_write {
                wrote.insert(addr);
                read_only.remove(&addr);
            } else if !wrote.contains(&addr) {
                read_only.insert(addr);
            }
        }
        commit_side.commit_region();
        prop_assert_eq!(commit_side.spec_lines(), 0);
        abort_side.abort_region();
        prop_assert_eq!(abort_side.spec_lines(), 0);
        // After an abort, written lines are gone; read-only lines remain.
        for addr in &read_only {
            let (level, _) = abort_side.access(*addr, false, false);
            prop_assert_eq!(level, hasp_hw::HitLevel::L1, "read line evicted by abort");
        }
        for addr in &wrote {
            let (level, _) = abort_side.access(*addr, false, false);
            prop_assert_ne!(level, hasp_hw::HitLevel::L1, "written line must be invalidated");
        }
    }

    /// Replaying an undo log in reverse restores every heap cell.
    #[test]
    fn undo_log_roundtrip(
        writes in prop::collection::vec((0u16..4, any::<i64>()), 1..50),
    ) {
        let mut heap = Heap::new();
        let obj = heap.alloc_object(ClassId(0), 4);
        for f in 0..4 {
            heap.set_field(obj, f, Value::Int(i64::from(f) * 1000));
        }
        let before: Vec<i64> =
            (0..4).map(|f| heap.read_cell(HeapCell::Field(obj, f))).collect();
        let mark = heap.alloc_mark();

        let mut undo = Vec::new();
        for (f, v) in &writes {
            let cell = HeapCell::Field(obj, *f);
            undo.push((cell, heap.read_cell(cell)));
            heap.write_cell(cell, *v);
        }
        // Speculative allocations vanish with the rollback.
        let _spec_obj = heap.alloc_object(ClassId(0), 2);
        for (cell, old) in undo.iter().rev() {
            heap.write_cell(*cell, *old);
        }
        heap.truncate(&mark);
        let after: Vec<i64> =
            (0..4).map(|f| heap.read_cell(HeapCell::Field(obj, f))).collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(heap.len(), 1);
    }

    /// Histogram totals are conserved and the mean is exact.
    #[test]
    fn histogram_accounting(samples in prop::collection::vec(0u64..5000, 1..100)) {
        let mut h = Histogram::new(&[16, 64, 256, 1024]);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.n, samples.len() as u64);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), h.n);
        prop_assert_eq!(h.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(h.max, *samples.iter().max().unwrap());
        let mean = h.sum as f64 / h.n as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9);
        // fraction_le is monotone in the bound.
        let f16 = h.fraction_le(16);
        let f64_ = h.fraction_le(64);
        let f1024 = h.fraction_le(1024);
        prop_assert!(f16 <= f64_ && f64_ <= f1024);
    }
}
