//! Property tests for the hardware substrate's bookkeeping structures:
//! `LineSet` must behave exactly like a sorted set under random insert
//! sequences (duplicates, overflow boundaries), the cache's speculative
//! read/write bits must flash-clear on both commit and abort whatever the
//! access sequence was, and the MRU-filter and seal-site way-predictor
//! fast paths must each be bit-identical to their reference models under
//! random interleavings of accesses, commits, aborts, and coherence
//! invalidations.

use proptest::prelude::*;

use hasp_hw::lineset::{LineSet, SPILL_LINES};
use hasp_hw::{CacheSim, HitLevel, HwConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn lineset_matches_reference_set_semantics(
        lines in prop::collection::vec(0u64..96, 0..200),
    ) {
        let mut dense = LineSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for &line in &lines {
            // Duplicate inserts must be rejected exactly when the reference
            // rejects them.
            prop_assert_eq!(dense.insert(line), reference.insert(line));
            prop_assert_eq!(dense.len(), reference.len());
        }
        // Same members, no duplicates (sorted view is representation-
        // independent: the dense vector keeps insertion order).
        let expect: Vec<u64> = reference.iter().copied().collect();
        prop_assert_eq!(dense.to_sorted_vec(), expect);
        for probe in 0..96 {
            prop_assert_eq!(dense.contains(probe), reference.contains(&probe));
        }
    }

    #[test]
    fn lineset_agrees_across_the_spill_boundary(
        lines in prop::collection::vec(0u64..1024, 0..700),
        probes in prop::collection::vec(0u64..1024, 16..17),
    ) {
        // The hybrid set must answer insert/contains/len identically to a
        // reference set whether it is still the dense sorted vector or has
        // spilled to the hash representation — the universe and length here
        // are sized so both sides of the SPILL_LINES threshold are hit.
        let mut hybrid = LineSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for &line in &lines {
            prop_assert_eq!(hybrid.insert(line), reference.insert(line));
            prop_assert_eq!(hybrid.len(), reference.len());
            prop_assert_eq!(hybrid.is_spilled(), reference.len() > SPILL_LINES);
        }
        let expect: Vec<u64> = reference.iter().copied().collect();
        prop_assert_eq!(hybrid.to_sorted_vec(), expect);
        for &probe in &probes {
            prop_assert_eq!(hybrid.contains(probe), reference.contains(&probe));
        }
        // Recycling the buffer resets to the dense representation.
        let recycled = LineSet::from_buffer(hybrid.into_buffer());
        prop_assert!(recycled.is_empty() && !recycled.is_spilled());
    }

    #[test]
    fn lineset_overflow_boundary_is_exact(
        budget in 1u64..24,
        extra in 0u64..8,
    ) {
        // Inserting exactly `budget` distinct lines stays at the boundary;
        // each extra distinct line grows the footprint past it — the machine's
        // line-budget overflow trigger fires on `len() > budget`.
        let mut s = LineSet::new();
        for line in 0..budget {
            s.insert(line * 7);
        }
        prop_assert_eq!(s.len() as u64, budget);
        prop_assert!(s.len() as u64 <= budget, "at the boundary: no overflow");
        for line in 0..extra {
            s.insert(budget * 7 + line + 1);
        }
        prop_assert_eq!(s.len() as u64, budget + extra);
        prop_assert_eq!(s.len() as u64 > budget, extra > 0);
    }

    #[test]
    fn filtered_cache_is_bit_identical_to_unfiltered_reference(
        ops in prop::collection::vec(
            (any::<u8>(), 0u64..12, 0u64..8, any::<bool>(), any::<bool>()),
            1..300,
        ),
    ) {
        // The MRU-filter + deferred-LRU fast path (DESIGN §12) against the
        // unfiltered reference model in lockstep: identical hit levels,
        // overflow signals, conflict verdicts, and speculative-line counts
        // at every step of a random access / commit / abort / invalidate
        // interleaving.
        let mut fast = CacheSim::new(&HwConfig::baseline());
        let mut reference = CacheSim::new(&HwConfig::unfiltered());
        for &(sel, choice, offset, write, speculative) in &ops {
            // Twelve hot lines crammed into two L1 sets (8 KB stride): high
            // same-line repeat probability to exercise the filter, and
            // guaranteed eviction/overflow pressure so the deferred-LRU
            // victim choices are what is actually under test.
            let addr = (choice / 2) * 8192 + (choice % 2) * 64 + offset * 8;
            match sel % 8 {
                // Weighted toward accesses.
                0..=4 => prop_assert_eq!(
                    fast.access(addr, write, speculative),
                    reference.access(addr, write, speculative),
                    "access {addr:#x} (write={write}, spec={speculative}) diverged"
                ),
                5 => {
                    fast.commit_region();
                    reference.commit_region();
                }
                6 => {
                    fast.abort_region();
                    reference.abort_region();
                }
                _ => prop_assert_eq!(
                    fast.invalidate(addr),
                    reference.invalidate(addr),
                    "invalidate {addr:#x} conflict verdict diverged"
                ),
            }
            prop_assert_eq!(fast.spec_lines(), reference.spec_lines());
        }
    }

    #[test]
    fn predicted_cache_is_bit_identical_to_unpredicted_reference(
        ops in prop::collection::vec(
            (any::<u8>(), 0u64..12, 0u64..8, 0u32..6, any::<bool>(), any::<bool>()),
            1..300,
        ),
    ) {
        // The seal-site way predictor (DESIGN §16) against the unpredicted
        // reference model in lockstep, through the exact discipline the
        // machine uses: consult `fast_hit` first (both `Absorbed` and
        // `Resident` are validated L1 hits that cannot geometrically
        // overflow), fall through to the full sited path otherwise. Hit
        // levels, overflow signals, conflict verdicts, and speculative-line
        // counts must agree at every step of a random access / commit /
        // abort / invalidate interleaving — commits and aborts bump the
        // epoch, so trained entries keep being consulted across flash
        // clears, and the eviction pressure below makes any stale-index use
        // or LRU victim-order drift surface as a divergent hit level.
        let mut fast = CacheSim::new(&HwConfig::baseline());
        let mut reference = CacheSim::new(&HwConfig::unpredicted());
        let sited = |c: &mut CacheSim, site: u32, addr: u64, write: bool, spec: bool| {
            match c.fast_hit(site, addr, write, spec) {
                Some(_) => (HitLevel::L1, false),
                None => c.access_sited(site, addr, write, spec),
            }
        };
        for &(sel, choice, offset, slot, write, speculative) in &ops {
            // Same crammed two-set universe as the filter lockstep test,
            // with twelve hot lines shared by only five predictor sites so
            // entries are constantly retrained onto conflicting lines —
            // plus an occasional site-less access (slot 5 → NO_SITE), the
            // fallback-lock / alloc-header shape.
            let addr = (choice / 2) * 8192 + (choice % 2) * 64 + offset * 8;
            let site = if slot == 5 { hasp_hw::NO_SITE } else { slot };
            match sel % 8 {
                // Weighted toward accesses.
                0..=4 => prop_assert_eq!(
                    sited(&mut fast, site, addr, write, speculative),
                    sited(&mut reference, site, addr, write, speculative),
                    "access {addr:#x} site {site} (write={write}, spec={speculative}) diverged"
                ),
                5 => {
                    fast.commit_region();
                    reference.commit_region();
                }
                6 => {
                    fast.abort_region();
                    reference.abort_region();
                }
                _ => prop_assert_eq!(
                    fast.invalidate(addr),
                    reference.invalidate(addr),
                    "invalidate {addr:#x} conflict verdict diverged"
                ),
            }
            prop_assert_eq!(fast.spec_lines(), reference.spec_lines());
        }
        // The reference side must never have consulted a predictor.
        prop_assert_eq!(reference.pred_stats().probes, 0);
    }

    #[test]
    fn batched_run_collapse_is_bit_identical_to_per_access_replay(
        ops in prop::collection::vec(
            (any::<u8>(), 0u64..12, 0u64..8, 1u32..5, any::<bool>(), any::<bool>()),
            1..200,
        ),
        unfiltered in any::<bool>(),
    ) {
        // The DESIGN §13 run-collapse contract at the cache-model level: a
        // sealed static run is `k` identical accesses (same line, same
        // kind, same speculative state — exactly what a poll run is), the
        // batched engine performs only the head's probe and bulk-counts the
        // `k-1` followers, and the per-access reference replays all `k`
        // through the absorbed-else-access discipline the machine's
        // `mem_access_parts` uses. Exactness requires: identical head
        // results, followers that are pure `(L1, no-overflow)` hits, and
        // identical speculative-line counts at every step — under both the
        // filtered production model and the unfiltered reference model
        // (where skipped follower LRU ticks shift timestamps uniformly but
        // never reorder victims).
        let cfg = if unfiltered { HwConfig::unfiltered() } else { HwConfig::baseline() };
        let mut batched = CacheSim::new(&cfg);
        let mut reference = CacheSim::new(&cfg);
        let probe = |c: &mut CacheSim, addr, write, speculative| {
            if c.absorbed(addr, write, speculative) {
                (HitLevel::L1, false)
            } else {
                c.access(addr, write, speculative)
            }
        };
        for &(sel, choice, offset, run, write, speculative) in &ops {
            // Same crammed two-set universe as the filter lockstep test:
            // high same-line repeat probability plus eviction pressure.
            let addr = (choice / 2) * 8192 + (choice % 2) * 64 + offset * 8;
            match sel % 8 {
                // Weighted toward run-shaped accesses.
                0..=4 => {
                    let b = probe(&mut batched, addr, write, speculative);
                    let r = probe(&mut reference, addr, write, speculative);
                    prop_assert_eq!(
                        b, r,
                        "run head {:#x} (write={}, spec={}) diverged",
                        addr, write, speculative
                    );
                    // An overflow at the head aborts the region before any
                    // follower retires (the machine breaks out of the
                    // interior loop), so the run only continues on success.
                    if !b.1 {
                        for _ in 1..run {
                            let f = probe(&mut reference, addr, write, speculative);
                            prop_assert_eq!(
                                f,
                                (HitLevel::L1, false),
                                "follower of {:#x} must be an absorbed L1 hit",
                                addr
                            );
                        }
                    }
                }
                5 => {
                    batched.commit_region();
                    reference.commit_region();
                }
                6 => {
                    batched.abort_region();
                    reference.abort_region();
                }
                _ => prop_assert_eq!(
                    batched.invalidate(addr),
                    reference.invalidate(addr),
                    "invalidate {:#x} conflict verdict diverged",
                    addr
                ),
            }
            prop_assert_eq!(batched.spec_lines(), reference.spec_lines());
        }
    }

    #[test]
    fn spec_bits_flash_clear_on_commit_and_abort(
        accesses in prop::collection::vec(
            (0u64..0x40_00, any::<bool>()),
            1..64,
        ),
        commit in any::<bool>(),
    ) {
        let mut c = CacheSim::new(&HwConfig::baseline());
        let mut overflowed = false;
        for &(addr, write) in &accesses {
            // 64B-aligned-ish speculative accesses inside one region.
            let (_, ovf) = c.access(addr * 8, write, true);
            if ovf {
                // Real hardware aborts here; for the property we just stop
                // accumulating speculative state.
                overflowed = true;
                break;
            }
        }
        if !overflowed {
            prop_assert!(c.spec_lines() > 0, "region touched at least one line");
        }
        if commit {
            c.commit_region();
        } else {
            c.abort_region();
        }
        prop_assert_eq!(
            c.spec_lines(),
            0,
            "speculative R/W bits must flash-clear on {}",
            if commit { "commit" } else { "abort" }
        );
        // A second flash-clear is idempotent.
        c.commit_region();
        c.abort_region();
        prop_assert_eq!(c.spec_lines(), 0);
    }
}

mod ladder_liveness {
    //! Governor-ladder liveness: under an *arbitrary* fault plan and an
    //! arbitrary (small-budget) ladder policy, the machine must always
    //! terminate with the interpreter's checksum — no tier livelock, no
    //! retry loop that starves the alt path — and the per-tier accounting
    //! must balance at run end. The compiled workload is built once; each
    //! case is one governed, validated machine run.

    use super::*;
    use std::sync::OnceLock;

    use hasp_experiments::{
        compile_workload, profile_workload, CompiledWorkload, ProfiledWorkload,
    };
    use hasp_hw::{FaultPlan, GovernorConfig, Machine};
    use hasp_opt::CompilerConfig;
    use hasp_workloads::{synthetic, Workload};

    fn fixture() -> &'static (Workload, ProfiledWorkload, CompiledWorkload) {
        static FIXTURE: OnceLock<(Workload, ProfiledWorkload, CompiledWorkload)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let w = synthetic::add_element(400);
            let profiled = profile_workload(&w);
            let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic());
            (w, profiled, compiled)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn machine_terminates_with_reference_checksum_under_any_plan(
            seed in any::<u64>(),
            conflict in prop_oneof![Just(0u64), 200u64..50_000],
            interrupt in prop_oneof![Just(0u64), 500u64..50_000],
            spurious in prop_oneof![Just(0u64), 200u64..50_000],
            line_budget in prop_oneof![Just(0u64), 2u64..24],
            abort_at in prop_oneof![Just(None), (1u64..200).prop_map(Some)],
            retry_budget in 1u32..5,
            cooldown in 1u64..16,
            tier2 in 0u32..4,
            tier3 in 0u32..4,
            reform in 0u32..5,
            lock_held in any::<bool>(),
        ) {
            let (w, profiled, compiled) = fixture();
            let mut hw = hasp_hw::HwConfig::baseline();
            hw.validate = true;
            hw.faults = FaultPlan {
                seed,
                conflict_per_miljon: conflict,
                interrupt_interval: interrupt,
                spurious_per_miljon: spurious,
                line_budget,
                abort_at_entry: abort_at,
            };
            hw.governor = GovernorConfig {
                enabled: true,
                retry_budget,
                cooldown_entries: cooldown,
                max_cooldown: cooldown * 16,
                tier2_disables: tier2,
                tier3_disables: tier3,
                reform_budget: reform,
            };
            let mut mach = Machine::new(&w.program, &compiled.code, hw);
            mach.set_fuel(w.fuel.saturating_mul(4));
            if lock_held {
                mach.set_fallback_lock(true);
            }
            let out = mach.run(&[]);
            prop_assert!(out.is_ok(), "machine must terminate cleanly: {:?}", out.err());
            prop_assert_eq!(
                mach.env.checksum(),
                profiled.reference_checksum,
                "ladder must preserve semantics under injection"
            );
            prop_assert!(
                mach.stats().tier_counters_consistent(),
                "tier accounting must balance: enters {:?} exits {:?} live {:?}",
                mach.stats().tier_enters,
                mach.stats().tier_exits,
                mach.stats().tier_live
            );
        }
    }
}

/// The sharded [`Directory`](hasp_hw::Directory) must implement exactly the
/// protocol of a naive sequential reference directory (one flat map, plain
/// per-core queues, no striping, no atomics): same message streams per
/// core, same signal verdicts, same global counters, same final line
/// states. Random cross-core publish/release interleavings — applied from
/// one thread, so any divergence is a striping/hashing/mailbox bug, not a
/// data race.
mod directory_model {
    use super::*;

    use hasp_hw::{CohMsg, CoreId, Directory, LineState};

    const CORES: usize = 4;
    const LINE_BITS: u32 = 48;

    /// The sequential reference: the DESIGN §17 protocol in its plainest
    /// possible form.
    struct RefDir {
        lines: std::collections::BTreeMap<u64, LineState>,
        mail: Vec<Vec<CohMsg>>,
        signaled: u64,
        invalidations: u64,
        downgrades: u64,
        publishes: u64,
    }

    impl RefDir {
        fn new() -> RefDir {
            RefDir {
                lines: std::collections::BTreeMap::new(),
                mail: vec![Vec::new(); CORES],
                signaled: 0,
                invalidations: 0,
                downgrades: 0,
                publishes: 0,
            }
        }

        fn post(&mut self, to: CoreId, msg: CohMsg) {
            if msg.signal {
                self.signaled += 1;
            }
            if msg.write {
                self.invalidations += 1;
            } else {
                self.downgrades += 1;
            }
            self.mail[to as usize].push(msg);
        }

        fn write(&mut self, me: CoreId, key: u64, spec: bool) {
            self.publishes += 1;
            let my_bit = 1u64 << me;
            let st = self.lines.entry(key).or_default();
            let victims = st.sharers & !my_bit;
            let signaled_spec = st.spec_readers & !my_bit;
            let spec_writer = st.spec_writer.filter(|&w| w != me);
            st.owner = Some(me);
            st.sharers = my_bit;
            st.spec_readers &= my_bit;
            if st.spec_writer != Some(me) {
                st.spec_writer = None;
            }
            if spec {
                st.spec_writer = Some(me);
            }
            for v in 0..CORES as u8 {
                let bit = 1u64 << v;
                if victims & bit != 0 {
                    let signal = signaled_spec & bit != 0 || spec_writer == Some(v);
                    self.post(
                        v,
                        CohMsg {
                            key,
                            write: true,
                            signal,
                        },
                    );
                }
            }
        }

        fn read(&mut self, me: CoreId, key: u64, spec: bool) {
            self.publishes += 1;
            let my_bit = 1u64 << me;
            let st = self.lines.entry(key).or_default();
            let victim = st.owner.filter(|&o| o != me);
            let signal = victim.is_some() && st.spec_writer == victim;
            if victim.is_some() {
                st.owner = None;
                if signal {
                    st.spec_writer = None;
                }
            }
            st.sharers |= my_bit;
            if spec {
                st.spec_readers |= my_bit;
            }
            if let Some(v) = victim {
                self.post(
                    v,
                    CohMsg {
                        key,
                        write: false,
                        signal,
                    },
                );
            }
        }

        fn release(&mut self, me: CoreId, key: u64) {
            let my_bit = 1u64 << me;
            if let Some(st) = self.lines.get_mut(&key) {
                st.spec_readers &= !my_bit;
                if st.spec_writer == Some(me) {
                    st.spec_writer = None;
                }
                let empty = st.owner.is_none()
                    && st.sharers == 0
                    && st.spec_readers == 0
                    && st.spec_writer.is_none();
                if empty {
                    self.lines.remove(&key);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn directory_matches_sequential_reference(
            ops in prop::collection::vec(
                (0u8..CORES as u8, 0u64..6, 0u64..2, 0u8..3, any::<bool>()),
                0..300,
            ),
        ) {
            // A tiny line universe across two asids forces heavy collisions
            // (and checks asid isolation falls out of key packing alone).
            let dir = Directory::with_stripes(CORES, 8);
            let mut reference = RefDir::new();
            for &(core, line, asid, kind, spec) in &ops {
                let key = (asid << LINE_BITS) | line;
                match kind {
                    0 => {
                        dir.publish_write(core, key, spec);
                        reference.write(core, key, spec);
                    }
                    1 => {
                        dir.publish_read(core, key, spec);
                        reference.read(core, key, spec);
                    }
                    _ => {
                        dir.release_spec(core, key);
                        reference.release(core, key);
                    }
                }
            }
            // Same global counters...
            prop_assert_eq!(dir.signaled(), reference.signaled);
            prop_assert_eq!(dir.invalidations(), reference.invalidations);
            prop_assert_eq!(dir.downgrades(), reference.downgrades);
            prop_assert_eq!(dir.publishes(), reference.publishes);
            // ...same per-core message streams, in order...
            for core in 0..CORES as u8 {
                let mut got = Vec::new();
                while let Some(msg) = dir.pop_msg(core) {
                    got.push(msg);
                }
                prop_assert_eq!(
                    &got,
                    &reference.mail[core as usize],
                    "core {} mailbox diverged",
                    core
                );
                prop_assert!(!dir.pending(core), "drained mailbox still pending");
            }
            // ...same final line states over the whole touched universe.
            for &(_, line, asid, _, _) in &ops {
                let key = (asid << LINE_BITS) | line;
                let expect = reference.lines.get(&key).copied().unwrap_or_default();
                prop_assert_eq!(dir.line_state(key), expect, "key {:#x}", key);
            }
        }
    }
}
