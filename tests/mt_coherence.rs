//! Cross-core stress gates for the coherence directory (DESIGN §17), all
//! with the invariant validator armed and **no fault injection** — every
//! abort here is organic.
//!
//! Two legs:
//!
//! * **Machine vs antagonist** — a real machine executes a workload on
//!   core 0 while a directory-level antagonist thread on core 1 aims
//!   plain (non-speculative) writes at whatever line core 0 is currently
//!   speculating on. Asserts the conflicts are non-vacuous, that every
//!   signaled message is classified (`signaled == sig_aborts +
//!   sig_raced`), and that every victim-side conflict surfaced as exactly
//!   one machine `Conflict`/`Sle` abort.
//! * **Machine vs machine** — two machines on real threads, same address
//!   space, same directory. Both must still reproduce the interpreter's
//!   checksum bit-for-bit (the atomicity contract under genuine
//!   concurrency), and the same conservation and abort-accounting
//!   identities must hold across both cores.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hasp_experiments::{compile_workload, profile_workload};
use hasp_hw::stats::AbortReason;
use hasp_hw::{CoreLink, Directory, HwConfig, LinkStats, Machine};
use hasp_opt::CompilerConfig;
use hasp_workloads::all_workloads;

fn stress_hw() -> HwConfig {
    HwConfig {
        name: "mt-stress",
        validate: true,
        ..HwConfig::baseline()
    }
}

/// Conflict-class machine aborts (no injection ⇒ all organic).
fn conflict_aborts(m: &Machine) -> u64 {
    m.stats().aborts.get(AbortReason::Conflict) + m.stats().aborts.get(AbortReason::Sle)
}

#[test]
fn antagonist_conflicts_are_conserved_and_observed() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").expect("jython");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    let hw = stress_hw();

    // Scheduling decides how many attacks land inside a speculative window;
    // retry a few times rather than demanding luck on the first run.
    for attempt in 0..10 {
        let dir = Directory::new(2);
        let stop = AtomicBool::new(false);
        let (stats, link) = std::thread::scope(|s| {
            let antagonist = {
                let dir = Arc::clone(&dir);
                let stop = &stop;
                s.spawn(move || {
                    // Bounded attack budget so a fully-contended victim can
                    // always finish once the attacker runs dry (the governor
                    // is off, so an unbounded attacker could livelock a
                    // region into fuel exhaustion).
                    let mut attacks = 0u32;
                    while !stop.load(Ordering::Relaxed) && attacks < 400 {
                        if let Some((key, _)) = dir.any_remote_spec_key(1) {
                            dir.publish_write(1, key, false);
                            attacks += 1;
                        }
                        std::thread::yield_now();
                    }
                })
            };
            let mut mach = Machine::new(&w.program, &compiled.code, hw.clone());
            mach.set_fuel(w.fuel.saturating_mul(8));
            mach.attach_core(CoreLink::new(Arc::clone(&dir), 0, 0));
            mach.run(&[]).expect("victim run under attack");
            stop.store(true, Ordering::Relaxed);
            antagonist.join().expect("antagonist");
            assert_eq!(
                mach.env.checksum(),
                profiled.reference_checksum,
                "checksum diverged under antagonist conflicts"
            );
            let stats = mach.stats().clone();
            let link = mach.detach_core().expect("link");
            (stats, link)
        });
        // Conservation: every signaled message was classified by the victim.
        assert_eq!(
            dir.signaled(),
            link.stats.sig_aborts + link.stats.sig_raced,
            "conservation identity violated (attempt {attempt}): {:?}",
            link.stats
        );
        // Observation: every victim-side conflict became a machine abort.
        assert_eq!(
            stats.aborts.get(AbortReason::Conflict) + stats.aborts.get(AbortReason::Sle),
            link.stats.sig_aborts,
            "a delivered conflict did not surface as an abort (attempt {attempt})"
        );
        if link.stats.sig_aborts > 0 {
            return;
        }
    }
    panic!("antagonist never landed a conflict in 10 attempts — the gate is vacuous");
}

#[test]
fn two_machines_share_an_address_space_correctly() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "pmd").expect("pmd");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    let hw = stress_hw();

    let mut signaled_total = 0u64;
    for attempt in 0..6 {
        let dir = Directory::new(2);
        let outcomes: Vec<(u64, LinkStats)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2u8)
                .map(|core| {
                    let dir = Arc::clone(&dir);
                    let (w, profiled, compiled, hw) = (&*w, &profiled, &compiled, &hw);
                    s.spawn(move || {
                        let mut mach = Machine::new(&w.program, &compiled.code, hw.clone());
                        mach.set_fuel(w.fuel.saturating_mul(8));
                        mach.attach_core(CoreLink::new(dir, core, 0));
                        mach.run(&[]).expect("machine under contention");
                        assert_eq!(
                            mach.env.checksum(),
                            profiled.reference_checksum,
                            "core {core} checksum diverged under contention"
                        );
                        let observed = conflict_aborts(&mach);
                        let link = mach.detach_core().expect("link");
                        (observed, link.stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        let (sig_aborts, sig_raced) = outcomes
            .iter()
            .fold((0, 0), |(a, r), (_, l)| (a + l.sig_aborts, r + l.sig_raced));
        assert_eq!(
            dir.signaled(),
            sig_aborts + sig_raced,
            "conservation identity violated (attempt {attempt}): {outcomes:?}"
        );
        for (core, (observed, link)) in outcomes.iter().enumerate() {
            assert_eq!(
                *observed, link.sig_aborts,
                "core {core}: delivered conflicts != conflict aborts (attempt {attempt})"
            );
        }
        signaled_total += dir.signaled();
        if signaled_total > 0 && attempt >= 1 {
            break;
        }
    }
    assert!(
        signaled_total > 0,
        "two contending machines never collided — the gate is vacuous"
    );
}
