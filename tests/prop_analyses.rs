//! Property tests over the IR analyses on randomly generated reducible-ish
//! CFGs: dominator-tree laws, post-dominator duality at exits, loop
//! detection sanity, and SSA-construction round trips through the verifier.

use proptest::prelude::*;

use hasp_ir::{DomTree, Func, LoopForest, PostDomTree, Term};
use hasp_vm::bytecode::{CmpOp, MethodId};

/// Builds a random CFG: `n` blocks where block `i` branches to one or two
/// higher-numbered blocks (acyclic core) plus optional back edges to
/// lower-numbered blocks, last block returns.
fn random_cfg(edges: &[(u8, u8, bool)], n: usize) -> Func {
    let mut f = Func::new("r", MethodId(0), 0);
    let x = f.vreg();
    let y = f.vreg();
    // Blocks b1..=bn (entry is b0).
    let blocks: Vec<_> = (0..n).map(|_| f.add_block(Term::Return(None))).collect();
    f.block_mut(f.entry).term = Term::Jump(blocks[0]);
    for i in 0..n - 1 {
        // Default: fall through to the next block.
        f.block_mut(blocks[i]).term = Term::Jump(blocks[i + 1]);
    }
    for &(from, to, backward) in edges {
        let from = from as usize % n;
        if from == n - 1 {
            continue; // keep the exit a plain return
        }
        let to = if backward {
            to as usize % (from + 1) // ≤ from: a back edge
        } else {
            from + 1 + (to as usize % (n - from - 1).max(1))
        };
        let t = blocks[to.min(n - 1)];
        let fall = blocks[from + 1];
        f.block_mut(blocks[from]).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t,
            f: fall,
            t_count: 1,
            f_count: 1,
        };
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn dominator_laws(
        edges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..12),
        n in 3usize..12,
    ) {
        let f = random_cfg(&edges, n);
        let dt = DomTree::compute(&f);
        let rpo = f.rpo();
        // Entry dominates everything reachable; everything dominates itself.
        for &b in &rpo {
            prop_assert!(dt.dominates(f.entry, b));
            prop_assert!(dt.dominates(b, b));
        }
        // idom is a strict dominator and dominance is transitive through it.
        for &b in &rpo {
            if let Some(d) = dt.idom(b) {
                prop_assert!(dt.dominates(d, b));
                prop_assert!(d != b);
                if let Some(dd) = dt.idom(d) {
                    prop_assert!(dt.dominates(dd, b), "transitivity");
                }
            } else {
                prop_assert_eq!(b, f.entry);
            }
        }
        // A block's dominator must dominate all its predecessors' paths:
        // every CFG predecessor of b is dominated by idom(b) or IS a
        // back-edge source dominated by b itself... weaker check: idom(b)
        // dominates every pred that is not dominated by b.
        let preds = f.preds();
        for &b in &rpo {
            if let Some(d) = dt.idom(b) {
                for &p in preds.get(&b).into_iter().flatten() {
                    prop_assert!(
                        dt.dominates(d, p) || dt.dominates(b, p),
                        "idom({b}) = {d} must dominate pred {p} (or p is in a loop under {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn postdominator_duality(
        edges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..12),
        n in 3usize..12,
    ) {
        let f = random_cfg(&edges, n);
        let pdt = PostDomTree::compute(&f);
        let rpo = f.rpo();
        for &b in &rpo {
            prop_assert!(pdt.post_dominates(b, b));
        }
        // Exit blocks post-dominate themselves and are in the exit list.
        for &e in pdt.exits() {
            prop_assert!(f.succs(e).is_empty());
        }
        // If a post-dominates b and b post-dominates a, they are equal.
        for &a in &rpo {
            for &b in &rpo {
                if a != b {
                    prop_assert!(
                        !(pdt.post_dominates(a, b) && pdt.post_dominates(b, a)),
                        "antisymmetry: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn loop_headers_dominate_their_blocks(
        edges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..12),
        n in 3usize..12,
    ) {
        let f = random_cfg(&edges, n);
        let dt = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dt);
        for l in forest.post_order() {
            for &b in &l.blocks {
                prop_assert!(
                    dt.dominates(l.header, b),
                    "natural-loop header {} must dominate member {b}",
                    l.header
                );
            }
            // Every latch is in the loop and targets the header.
            for latch in l.latches(&f) {
                prop_assert!(l.blocks.contains(&latch));
                prop_assert!(f.succs(latch).contains(&l.header));
            }
            // Post-order is innermost-first: members of an earlier loop that
            // share our header's blocks imply nesting consistency.
            prop_assert!(l.blocks.contains(&l.header));
        }
    }
}
