//! The backbone guarantee of the reproduction: for every benchmark and every
//! compiler configuration, execution on the simulated hardware produces the
//! interpreter's exact observable checksum — through region commits, explicit
//! aborts, exception aborts, overflow aborts, injected conflicts, and
//! interrupts. `run_workload` asserts the checksum internally, so these
//! tests pass exactly when speculation is semantically invisible.

use hasp_experiments::{profile_workload, run_workload};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;
use hasp_workloads::all_workloads;

#[test]
fn all_workloads_all_compiler_configs_match_interpreter() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        for cfg in CompilerConfig::paper_configs() {
            let run = run_workload(&w, &profiled, &cfg, &HwConfig::baseline());
            assert!(run.stats.uops > 0, "{}/{} ran no uops", w.name, cfg.name);
            // Every sample must have been measured.
            assert_eq!(
                run.samples.len(),
                w.samples.len(),
                "{}/{}",
                w.name,
                cfg.name
            );
            for s in &run.samples {
                assert!(
                    s.uops > 0,
                    "{}/{} empty sample {}",
                    w.name,
                    cfg.name,
                    s.marker
                );
            }
        }
    }
}

#[test]
fn forced_monomorphic_config_matches_interpreter() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").expect("jython");
    let profiled = profile_workload(w);
    let run = run_workload(
        w,
        &profiled,
        &CompilerConfig::atomic_forced_mono(),
        &HwConfig::baseline(),
    );
    assert!(run.stats.commits > 0, "forced-mono must still speculate");
}

#[test]
fn hardware_variants_match_interpreter() {
    // One high-coverage workload across every hardware configuration,
    // including the Figure 9 overhead models and the §6.3 narrow machines.
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "xalan").expect("xalan");
    let profiled = profile_workload(w);
    let cfg = CompilerConfig::atomic_aggressive();
    for hw in [
        HwConfig::baseline(),
        HwConfig::with_begin_overhead(),
        HwConfig::single_inflight(),
        HwConfig::two_wide(),
        HwConfig::two_wide_half(),
    ] {
        let run = run_workload(w, &profiled, &cfg, &hw);
        assert!(run.stats.uops > 0, "{}", hw.name);
    }
}

#[test]
fn conflicts_and_interrupts_stay_transparent_on_real_workload() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "hsqldb").expect("hsqldb");
    let profiled = profile_workload(w);
    let mut hw = HwConfig::baseline();
    hw.name = "chkpt+hostile";
    hw.faults.conflict_per_miljon = 300;
    hw.faults.interrupt_interval = 50_000;
    let run = run_workload(w, &profiled, &CompilerConfig::atomic(), &hw);
    assert!(
        run.stats.total_aborts() > 0,
        "hostile hardware must cause aborts: {:?}",
        run.stats.aborts
    );
}
