//! The golden gate for superblock dispatch: for every suite workload, the
//! batched superblock engine must be *bit-identical* to the per-uop
//! reference loop — same checksum, same full `RunStats` (uops, cycles,
//! abort counts, uop-class mix, marker snaps), sample for sample. The
//! batched fuel/stats accounting is only a valid optimisation if no
//! observation point (marker snapshot, region boundary, fault) can tell
//! the two engines apart.
//!
//! A second leg drives the fault-injection smoke matrix under both
//! dispatch modes with validation *off* — so the superblock path is
//! genuinely exercised for the kinds that permit it (overflow, targeted)
//! rather than silently falling back — and compares outcomes cell by cell.

use hasp_experiments::{
    compile_workload, profile_workload, sweep_rates, try_execute_compiled, CompiledWorkload,
    ProfiledWorkload,
};
use hasp_hw::{Dispatch, FaultPlan, GovernorConfig, HwConfig, FAULT_KINDS};
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

fn per_uop_baseline() -> HwConfig {
    let mut hw = HwConfig::per_uop();
    // Same timing name so WorkloadRun equality only differs by stats if the
    // engines genuinely diverge.
    hw.name = HwConfig::baseline().name;
    hw
}

fn run_both(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    mut hw_sb: HwConfig,
    mut hw_pu: HwConfig,
) {
    hw_sb.dispatch = Dispatch::Superblock;
    hw_pu.dispatch = Dispatch::PerUop;
    let sb = try_execute_compiled(w, profiled, compiled, &hw_sb);
    let pu = try_execute_compiled(w, profiled, compiled, &hw_pu);
    match (sb, pu) {
        (Ok(sb), Ok(pu)) => {
            // Full-struct equality: uops, cycles, commits, aborts-by-reason,
            // uop-class mix, region histograms, marker snaps, and the
            // extracted samples all at once.
            assert_eq!(
                sb.stats, pu.stats,
                "{}: superblock stats diverged from per-uop reference",
                w.name
            );
            assert_eq!(sb.samples, pu.samples, "{}: samples diverged", w.name);
        }
        (sb, pu) => panic!(
            "{}: dispatch modes disagree on outcome:\n  superblock: {sb:?}\n  per-uop:    {pu:?}",
            w.name
        ),
    }
}

/// Every Table 2 workload, every paper compiler configuration: superblock
/// dispatch must reproduce the per-uop engine's stats exactly (checksum
/// equality is asserted inside `try_execute_compiled` against the
/// interpreter for both modes).
#[test]
fn all_workloads_identical_across_dispatch_modes() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        for ccfg in CompilerConfig::paper_configs() {
            let compiled = compile_workload(&w, &profiled, &ccfg);
            run_both(
                &w,
                &profiled,
                &compiled,
                HwConfig::baseline(),
                per_uop_baseline(),
            );
        }
    }
}

/// The narrow machines and overhead models stress different fuel/cycle
/// arithmetic; the engines must still agree.
#[test]
fn hardware_variants_identical_across_dispatch_modes() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "xalan").expect("xalan");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    for hw in [
        HwConfig::with_begin_overhead(),
        HwConfig::single_inflight(),
        HwConfig::two_wide(),
        HwConfig::two_wide_half(),
    ] {
        run_both(w, &profiled, &compiled, hw.clone(), hw);
    }
}

/// The mid-chain abort path must be exercised non-vacuously: a targeted
/// injection fires `aregion_abort` while the chained engine is deep in a
/// linked trace, so the suffix-unapply accounting and the post-abort
/// resync are what's under test — not just clean commits. The abort count
/// is asserted positive first, so this can never silently degenerate into
/// a commits-only run.
#[test]
fn mid_chain_abort_is_exercised_and_identical() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").expect("jython");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    for entry in [1, 7, 1000] {
        let mut hw_sb = HwConfig::baseline();
        hw_sb.faults = FaultPlan::abort_at(entry);
        let mut hw_pu = per_uop_baseline();
        hw_pu.faults = FaultPlan::abort_at(entry);
        let sb = try_execute_compiled(w, &profiled, &compiled, &hw_sb)
            .expect("superblock run with targeted abort");
        assert!(
            sb.stats.aborts.total() > 0,
            "targeted abort at entry {entry} never fired — the mid-chain \
             abort path went unexercised"
        );
        let pu = try_execute_compiled(w, &profiled, &compiled, &hw_pu)
            .expect("per-uop run with targeted abort");
        assert_eq!(
            sb.stats, pu.stats,
            "mid-chain abort (entry {entry}): superblock stats diverged"
        );
        assert_eq!(sb.samples, pu.samples, "entry {entry}: samples diverged");
    }
}

/// The fault smoke matrix (fop, pmd × every fault kind at its middle rate)
/// cell-by-cell under both dispatch modes. Validation stays OFF here so the
/// superblock engine is genuinely used for the kinds that allow it; the
/// per-uop-forcing kinds (conflict, interrupt, spurious) still pass through
/// the same gate and must agree trivially.
#[test]
fn fault_smoke_matrix_identical_across_dispatch_modes() {
    let mut workloads = all_workloads();
    workloads.retain(|w| w.name == "fop" || w.name == "pmd");
    let ccfg = CompilerConfig::atomic_aggressive();
    for w in &workloads {
        let profiled = profile_workload(w);
        let compiled = compile_workload(w, &profiled, &ccfg);
        for kind in FAULT_KINDS {
            let rate = sweep_rates(kind)[1];
            let mut hw = HwConfig::baseline();
            hw.faults = kind.plan(rate);
            hw.governor = GovernorConfig::online();
            run_both(w, &profiled, &compiled, hw.clone(), hw);
        }
        // And the clean cell with the governor online, for symmetry.
        let mut hw = HwConfig::baseline();
        hw.faults = FaultPlan::none();
        hw.governor = GovernorConfig::online();
        run_both(w, &profiled, &compiled, hw.clone(), hw);
    }
}
