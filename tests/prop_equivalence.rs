//! Property-based differential testing: randomly generated programs must
//! produce identical observable checksums under the interpreter and under
//! the simulated machine compiled with every paper configuration — the
//! strongest single check of the whole compiler + hardware stack.

use proptest::prelude::*;

use hasp_hw::{lower, CodeCache, HwConfig, Machine};
use hasp_opt::{compile_program, CompilerConfig};
use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp};
use hasp_vm::interp::Interp;
use hasp_vm::Program;

/// One step of the random loop body.
#[derive(Debug, Clone)]
enum Step {
    /// `r[dst] = r[a] op r[b]` (division guarded below).
    Alu(BinOp, usize, usize, usize),
    /// `obj.field[f] = r[src]`
    StoreField(usize, usize),
    /// `r[dst] = obj.field[f]`
    LoadField(usize, usize),
    /// `arr[r[idx] & mask] = r[src]`
    StoreElem(usize, usize),
    /// `r[dst] = arr[r[idx] & mask]`
    LoadElem(usize, usize),
    /// A biased diamond: if `r[a] % 100 < pct` run the rare arm, which
    /// clobbers a field.
    Diamond(usize, u8, usize),
    /// Fold `r[src]` into the checksum.
    Checksum(usize),
}

const NREGS: usize = 6;
const NFIELDS: usize = 4;
const ARR: i64 = 64;

fn step_strategy() -> impl Strategy<Value = Step> {
    let binop = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Xor),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Div),
        Just(BinOp::Rem),
    ];
    prop_oneof![
        (binop, 0..NREGS, 0..NREGS, 0..NREGS).prop_map(|(o, d, a, b)| Step::Alu(o, d, a, b)),
        (0..NFIELDS, 0..NREGS).prop_map(|(f, s)| Step::StoreField(f, s)),
        (0..NREGS, 0..NFIELDS).prop_map(|(d, f)| Step::LoadField(d, f)),
        (0..NREGS, 0..NREGS).prop_map(|(i, s)| Step::StoreElem(i, s)),
        (0..NREGS, 0..NREGS).prop_map(|(d, i)| Step::LoadElem(d, i)),
        (0..NREGS, 0..30u8, 0..NFIELDS).prop_map(|(a, p, f)| Step::Diamond(a, p, f)),
        (0..NREGS).prop_map(Step::Checksum),
    ]
}

/// Builds a counted loop around the random body.
fn build(steps: &[Step], iters: i64, seed: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let cls = pb.add_class("Obj", None, &["f0", "f1", "f2", "f3"]);
    let fields: Vec<_> = (0..NFIELDS)
        .map(|i| pb.field(cls, &format!("f{i}")))
        .collect();
    let mut m = pb.method("main", 0);
    let obj = m.reg();
    m.new_obj(obj, cls);
    let arr_len = m.imm(ARR);
    let arr = m.reg();
    m.new_array(arr, arr_len);
    let regs: Vec<_> = (0..NREGS as i64)
        .map(|i| m.imm(seed.wrapping_add(i * 17)))
        .collect();
    let mask = m.imm(ARR - 1);
    let one = m.imm(1);
    let k100 = m.imm(100);
    let posmask = m.imm(0x7fff_ffff);

    let i = m.imm(0);
    let n = m.imm(iters);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    for (k, step) in steps.iter().enumerate() {
        match step {
            Step::Alu(op, d, a, b) => {
                if matches!(op, BinOp::Div | BinOp::Rem) {
                    // Guard the divisor: |b| | 1 is never zero.
                    let g = m.reg();
                    m.bin(BinOp::And, g, regs[*b], posmask);
                    m.bin(BinOp::Or, g, g, one);
                    m.bin(*op, regs[*d], regs[*a], g);
                } else {
                    m.bin(*op, regs[*d], regs[*a], regs[*b]);
                }
            }
            Step::StoreField(f, s) => m.put_field(obj, fields[*f], regs[*s]),
            Step::LoadField(d, f) => m.get_field(regs[*d], obj, fields[*f]),
            Step::StoreElem(idx, s) => {
                let j = m.reg();
                m.bin(BinOp::And, j, regs[*idx], mask);
                m.astore(arr, j, regs[*s]);
            }
            Step::LoadElem(d, idx) => {
                let j = m.reg();
                m.bin(BinOp::And, j, regs[*idx], mask);
                m.aload(regs[*d], arr, j);
            }
            Step::Diamond(a, pct, f) => {
                let sel = m.reg();
                m.bin(BinOp::And, sel, regs[*a], posmask);
                m.bin(BinOp::Rem, sel, sel, k100);
                let thr = m.imm(i64::from(*pct));
                let rare = m.new_label();
                let join = m.new_label();
                m.branch(CmpOp::Lt, sel, thr, rare);
                m.jump(join);
                m.bind(rare);
                let t = m.reg();
                m.get_field(t, obj, fields[*f]);
                let kk = m.imm(k as i64 + 3);
                m.bin(BinOp::Add, t, t, kk);
                m.put_field(obj, fields[*f], t);
                m.jump(join);
                m.bind(join);
            }
            Step::Checksum(s) => m.checksum(regs[*s]),
        }
    }
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    for f in &fields {
        let v = m.reg();
        m.get_field(v, obj, *f);
        m.checksum(v);
    }
    for r in &regs {
        m.checksum(*r);
    }
    m.ret(None);
    let entry = m.finish(&mut pb);
    pb.finish(entry)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_execute_identically(
        steps in prop::collection::vec(step_strategy(), 3..25),
        iters in 50i64..400,
        seed in any::<i64>(),
    ) {
        let program = build(&steps, iters, seed);
        let mut interp = Interp::new(&program).with_profiling();
        interp.set_fuel(50_000_000);
        interp.run(&[]).expect("interp");
        let reference = interp.env.checksum();

        for cfg in CompilerConfig::paper_configs() {
            let compiled = compile_program(&program, &interp.profile, &cfg);
            let mut code = CodeCache::new();
            for (mid, c) in &compiled {
                code.install(*mid, lower(&c.func));
            }
            let mut machine = Machine::new(&program, &code, HwConfig::baseline());
            machine.set_fuel(200_000_000);
            machine.run(&[]).expect("machine");
            prop_assert_eq!(
                machine.env.checksum(),
                reference,
                "config {} diverged (steps {:?})",
                cfg.name,
                &steps
            );
        }
    }
}
