//! Suite-level gate for the seal-site way predictor (DESIGN §16): for every
//! Table 2 workload, a run with the predictor armed (the production
//! default) must be *bit-identical* to a run with the predictor disabled —
//! same checksum, same full `RunStats` (uops, cycles, hit mix, abort
//! counts, marker snaps), sample for sample. A predicted index is only used
//! after a live tag compare proves the line still resides there, so no
//! observation point may be able to tell the two models apart; this gate is
//! what holds that claim to account across both dispatch engines.
//!
//! A fault-pressure leg repeats the comparison under targeted mid-chain
//! aborts, a tight injected line budget, and coherence-conflict spray:
//! aborts flash-clear the speculative epoch and overflows stress the
//! deferred-LRU victim choice — exactly the machinery a stale predictor
//! entry would corrupt if validation ever let one through.

use hasp_experiments::{
    compile_workload, profile_workload, try_execute_compiled, CompiledWorkload, ProfiledWorkload,
};
use hasp_hw::{FaultPlan, HwConfig};
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

fn unpredicted_baseline() -> HwConfig {
    let mut hw = HwConfig::unpredicted();
    // Same timing name so the two runs differ only in stats if the models
    // genuinely diverge.
    hw.name = HwConfig::baseline().name;
    hw
}

fn run_both(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    predicted: HwConfig,
    unpredicted: HwConfig,
) {
    assert!(predicted.way_predict && !unpredicted.way_predict);
    let p = try_execute_compiled(w, profiled, compiled, &predicted);
    let u = try_execute_compiled(w, profiled, compiled, &unpredicted);
    match (p, u) {
        (Ok(p), Ok(u)) => {
            assert_eq!(
                p.stats, u.stats,
                "{}: predicted stats diverged from the unpredicted reference",
                w.name
            );
            assert_eq!(p.samples, u.samples, "{}: samples diverged", w.name);
            assert_eq!(
                u.pred.probes, 0,
                "{}: disabled predictor must never be consulted",
                w.name
            );
            assert!(
                p.pred.probes > 0,
                "{}: armed predictor was never consulted — the gate is vacuous",
                w.name
            );
        }
        (p, u) => panic!(
            "{}: cache models disagree on outcome:\n  predicted:   {p:?}\n  unpredicted: {u:?}",
            w.name
        ),
    }
}

/// Every suite workload under the aggressive paper configuration, on the
/// superblock engine: the predicted model must reproduce the unpredicted
/// model's stats exactly (checksum equality is asserted inside
/// `try_execute_compiled` against the interpreter for both runs).
#[test]
fn all_workloads_identical_across_predictor_models() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic_aggressive());
        run_both(
            &w,
            &profiled,
            &compiled,
            HwConfig::baseline(),
            unpredicted_baseline(),
        );
    }
}

/// The per-uop reference engine reaches the cache model through
/// `Machine::step` rather than the superblock interior loop, so its seal
/// sites arrive via a different dispatch path — gate that leg too.
#[test]
fn per_uop_engine_identical_across_predictor_models() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic_aggressive());
        let predicted = HwConfig::per_uop();
        let mut unpredicted = HwConfig::per_uop();
        unpredicted.way_predict = false;
        run_both(&w, &profiled, &compiled, predicted, unpredicted);
    }
}

/// Aborts bump the speculative epoch (flash clear) and overflow exercises
/// the deferred-LRU victim choice under speculative pressure; a predictor
/// entry trained before a mid-block abort must retrain through validation,
/// never stale-hit across the epoch. Drive all three fault kinds and
/// require identity cell by cell.
#[test]
fn fault_pressure_identical_across_predictor_models() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").expect("jython");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    for plan in [
        FaultPlan::abort_at(7),
        FaultPlan::overflow_budget(24),
        FaultPlan::conflicts(1_000),
    ] {
        let mut predicted = HwConfig::baseline();
        predicted.faults = plan.clone();
        let mut unpredicted = unpredicted_baseline();
        unpredicted.faults = plan;
        run_both(w, &profiled, &compiled, predicted, unpredicted);
    }
}
