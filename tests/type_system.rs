//! Differential tests for the type-system operations (instanceof chains,
//! checked casts, monitor nesting) between the interpreter and the machine,
//! plus trap behavior inside and outside atomic regions.

use hasp_hw::{lower, CodeCache, HwConfig, Machine, MachineFault};
use hasp_opt::{compile_program, CompilerConfig};
use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp};
use hasp_vm::interp::Interp;
use hasp_vm::{Program, Trap, VmError};

fn run_both(p: &Program) -> (i64, i64) {
    let mut interp = Interp::new(p).with_profiling();
    interp.set_fuel(50_000_000);
    interp.run(&[]).expect("interp");
    let compiled = compile_program(p, &interp.profile, &CompilerConfig::atomic());
    let mut cc = CodeCache::new();
    for (m, c) in &compiled {
        cc.install(*m, lower(&c.func));
    }
    let mut mach = Machine::new(p, &cc, HwConfig::baseline());
    mach.set_fuel(200_000_000);
    mach.run(&[]).expect("machine");
    (interp.env.checksum(), mach.env.checksum())
}

#[test]
fn instanceof_chains_and_casts() {
    let mut pb = ProgramBuilder::new();
    let animal = pb.add_class("Animal", None, &["legs"]);
    let dog = pb.add_class("Dog", Some(animal), &[]);
    let cat = pb.add_class("Cat", Some(animal), &[]);
    let puppy = pb.add_class("Puppy", Some(dog), &[]);

    let mut m = pb.method("main", 0);
    let zoo_len = m.imm(4);
    let zoo = m.reg();
    m.new_array(zoo, zoo_len);
    for (i, cls) in [animal, dog, cat, puppy].into_iter().enumerate() {
        let o = m.reg();
        m.new_obj(o, cls);
        let idx = m.imm(i as i64);
        m.astore(zoo, idx, o);
    }
    let i = m.imm(0);
    let one = m.imm(1);
    let n = m.imm(4);
    let acc = m.imm(0);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    let o = m.reg();
    m.aload(o, zoo, i);
    for (weight, cls) in [(1i64, animal), (10, dog), (100, cat), (1000, puppy)] {
        let is = m.reg();
        m.instance_of(is, o, cls);
        let w = m.imm(weight);
        let t = m.reg();
        m.bin(BinOp::Mul, t, is, w);
        m.bin(BinOp::Add, acc, acc, t);
    }
    // Upcasts always succeed; null casts always succeed.
    m.check_cast(o, animal);
    let nil = m.reg();
    m.const_null(nil);
    m.check_cast(nil, puppy);
    m.bin(BinOp::Add, i, i, one);
    m.jump(head);
    m.bind(exit);
    m.checksum(acc);
    m.ret(Some(acc));
    let entry = m.finish(&mut pb);
    let p = pb.finish(entry);
    let (a, b) = run_both(&p);
    assert_eq!(a, b);
}

#[test]
fn downcast_failure_traps_identically() {
    let mut pb = ProgramBuilder::new();
    let animal = pb.add_class("Animal", None, &[]);
    let dog = pb.add_class("Dog", Some(animal), &[]);
    let mut m = pb.method("main", 0);
    let o = m.reg();
    m.new_obj(o, animal);
    m.check_cast(o, dog); // Animal is not a Dog
    m.ret(None);
    let entry = m.finish(&mut pb);
    let p = pb.finish(entry);

    let mut interp = Interp::new(&p).with_profiling();
    let ierr = interp.run(&[]).unwrap_err();
    assert!(matches!(
        ierr,
        VmError::Trap {
            trap: Trap::ClassCast,
            ..
        }
    ));

    let compiled = compile_program(&p, &interp.profile, &CompilerConfig::no_atomic());
    let mut cc = CodeCache::new();
    for (mid, c) in &compiled {
        cc.install(*mid, lower(&c.func));
    }
    let mut mach = Machine::new(&p, &cc, HwConfig::baseline());
    let merr = mach.run(&[]).unwrap_err();
    assert!(matches!(
        merr,
        MachineFault::Vm(VmError::Trap {
            trap: Trap::ClassCast,
            ..
        })
    ));
}

#[test]
fn nested_monitors_and_recursion() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("C", None, &["v"]);
    let fv = pb.field(c, "v");
    // Recursive synchronized method: locks the same receiver at each depth.
    let rec = pb.declare("C.rec", 2);
    let mut r = pb.method("C.rec", 2);
    r.set_synchronized();
    let base = r.new_label();
    let zero = r.imm(0);
    r.branch(CmpOp::Le, r.arg(1), zero, base);
    let t = r.reg();
    r.get_field(t, r.arg(0), fv);
    let one = r.imm(1);
    r.bin(BinOp::Add, t, t, one);
    r.put_field(r.arg(0), fv, t);
    let n1 = r.reg();
    r.bin(BinOp::Sub, n1, r.arg(1), one);
    r.call(None, rec, &[r.arg(0), n1]);
    r.ret(None);
    r.bind(base);
    r.ret(None);
    r.finish(&mut pb);

    let mut m = pb.method("main", 0);
    let o = m.reg();
    m.new_obj(o, c);
    let i = m.imm(0);
    let n = m.imm(200);
    let one = m.imm(1);
    let depth = m.imm(5);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    m.call(None, rec, &[o, depth]);
    m.bin(BinOp::Add, i, i, one);
    m.jump(head);
    m.bind(exit);
    let out = m.reg();
    m.get_field(out, o, fv);
    m.checksum(out);
    m.ret(Some(out));
    let entry = m.finish(&mut pb);
    let p = pb.finish(entry);
    let (a, b) = run_both(&p);
    assert_eq!(a, b);
}
