//! Structural invariants of atomic-region formation (paper §4), checked on
//! every benchmark under every compiler configuration:
//!
//! * the compiled IR verifies (SSA + region structure),
//! * regions are single-entry and non-nested, contain no calls, and exit
//!   through `aregion_end` (the verifier enforces these),
//! * region sizes respect the formation caps,
//! * every assert has recorded provenance (abort-PC diagnosis, §3.2),
//! * the lowered code resolves every branch target.

use hasp_core::StaticRegionStats;
use hasp_experiments::profile_workload;
use hasp_hw::lower;
use hasp_opt::{compile_program, CompilerConfig};
use hasp_workloads::all_workloads;

#[test]
fn compiled_ir_verifies_and_respects_caps() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        for cfg in CompilerConfig::paper_configs() {
            let compiled = compile_program(&w.program, &profiled.profile, &cfg);
            for (mid, c) in &compiled {
                hasp_ir::verify(&c.func)
                    .unwrap_or_else(|e| panic!("{}/{} method {}: {e}", w.name, cfg.name, mid.0));
                for (ri, info) in c.func.regions.iter().enumerate() {
                    assert!(
                        info.size_estimate <= cfg.region.max_region_ops,
                        "{}/{} region {ri} size {} exceeds cap",
                        w.name,
                        cfg.name,
                        info.size_estimate
                    );
                    assert!(!c.func.block(info.begin).dead, "begin block must be live");
                }
                // Asserts carry provenance for the abort-PC mapping.
                for a in &c.func.asserts {
                    assert!(!a.origin.is_empty());
                }
                if !cfg.atomic {
                    assert!(
                        c.func.regions.is_empty(),
                        "{}: no regions in {}",
                        w.name,
                        cfg.name
                    );
                }
            }
        }
    }
}

#[test]
fn atomic_configs_form_regions_on_hot_workloads() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let cfg = CompilerConfig::atomic_aggressive();
        let compiled = compile_program(&w.program, &profiled.profile, &cfg);
        let total_regions: usize = compiled.values().map(|c| c.func.regions.len()).sum();
        assert!(total_regions > 0, "{} formed no regions at all", w.name);
        // Static coverage sanity on the entry method.
        let entry = &compiled[&w.program.entry()];
        let stats = StaticRegionStats::collect(&entry.func);
        assert!(stats.total_ops > 0);
    }
}

#[test]
fn lowering_resolves_every_target() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let cfg = CompilerConfig::atomic();
        let compiled = compile_program(&w.program, &profiled.profile, &cfg);
        for (mid, c) in &compiled {
            let code = lower(&c.func);
            for (pc, u) in code.uops.iter().enumerate() {
                let check = |t: usize| {
                    assert!(
                        t < code.uops.len(),
                        "{} method {} pc {pc}: target {t} out of range",
                        w.name,
                        mid.0
                    );
                };
                match u {
                    hasp_hw::Uop::Jmp { target } | hasp_hw::Uop::Br { target, .. } => {
                        check(*target)
                    }
                    hasp_hw::Uop::JmpInd { table, default, .. } => {
                        table.iter().for_each(|t| check(*t));
                        check(*default);
                    }
                    hasp_hw::Uop::RegionBegin { alt, .. } => check(*alt),
                    _ => {}
                }
            }
            assert_eq!(
                code.region_count as usize,
                c.func.regions.len(),
                "region metadata must survive lowering"
            );
        }
    }
}
