//! Suite-level gate for the memory-model fast path (DESIGN §12): for every
//! Table 2 workload, a run with the MRU line filter + deferred LRU armed
//! (the production default) must be *bit-identical* to a run with the
//! unfiltered reference cache model — same checksum, same full `RunStats`
//! (uops, cycles, hit mix, abort counts, marker snaps), sample for sample.
//! The filter is only a valid optimisation if no observation point can
//! tell the two models apart.
//!
//! A second leg repeats the comparison under fault pressure (targeted
//! mid-chain aborts and the overflow-prone line-budget kind), because the
//! filter's epoch flash-clear and the deferred-LRU victim choices are
//! exactly the machinery that aborts and overflows stress.

use hasp_experiments::{
    compile_workload, profile_workload, try_execute_compiled, CompiledWorkload, ProfiledWorkload,
};
use hasp_hw::{FaultPlan, HwConfig};
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

fn unfiltered_baseline() -> HwConfig {
    let mut hw = HwConfig::unfiltered();
    // Same timing name so WorkloadRun equality only differs by stats if the
    // models genuinely diverge.
    hw.name = HwConfig::baseline().name;
    hw
}

fn run_both(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    filtered: HwConfig,
    unfiltered: HwConfig,
) {
    assert!(filtered.mem_filter && !unfiltered.mem_filter);
    let f = try_execute_compiled(w, profiled, compiled, &filtered);
    let u = try_execute_compiled(w, profiled, compiled, &unfiltered);
    match (f, u) {
        (Ok(f), Ok(u)) => {
            assert_eq!(
                f.stats, u.stats,
                "{}: filtered stats diverged from the unfiltered reference",
                w.name
            );
            assert_eq!(f.samples, u.samples, "{}: samples diverged", w.name);
        }
        (f, u) => panic!(
            "{}: cache models disagree on outcome:\n  filtered:   {f:?}\n  unfiltered: {u:?}",
            w.name
        ),
    }
}

/// Every suite workload under the aggressive paper configuration: the
/// filtered model must reproduce the unfiltered model's stats exactly
/// (checksum equality is asserted inside `try_execute_compiled` against the
/// interpreter for both runs).
#[test]
fn all_workloads_identical_across_cache_models() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic_aggressive());
        run_both(
            &w,
            &profiled,
            &compiled,
            HwConfig::baseline(),
            unfiltered_baseline(),
        );
    }
}

/// Aborts bump the filter's epoch (the flash clear) and overflow exercises
/// the deferred-LRU victim choice under speculative pressure — the two
/// mechanisms the equivalence argument leans on — so drive both under
/// injected faults and require identity cell by cell.
#[test]
fn fault_pressure_identical_across_cache_models() {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").expect("jython");
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    for plan in [
        FaultPlan::abort_at(7),
        FaultPlan::overflow_budget(24),
        FaultPlan::conflicts(1_000),
    ] {
        let mut filtered = HwConfig::baseline();
        filtered.faults = plan.clone();
        let mut unfiltered = unfiltered_baseline();
        unfiltered.faults = plan;
        run_both(w, &profiled, &compiled, filtered, unfiltered);
    }
}
