//! Per-workload smoke tests: every benchmark interprets cleanly, is
//! deterministic, produces a meaningful checksum, and hits each sample
//! marker exactly twice (the §5 methodology contract).

use hasp_vm::interp::Interp;
use hasp_workloads::{all_workloads, synthetic};

#[test]
fn every_workload_interprets_deterministically() {
    for w in all_workloads() {
        let mut a = Interp::new(&w.program).with_profiling();
        a.set_fuel(w.fuel);
        a.run(&[]).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut b = Interp::new(&w.program);
        b.set_fuel(w.fuel);
        b.run(&[]).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            a.env.checksum(),
            b.env.checksum(),
            "{} must be deterministic",
            w.name
        );
        assert_ne!(
            a.env.checksum(),
            0,
            "{} must produce observable output",
            w.name
        );

        // Marker contract: each sample's marker fires exactly twice.
        for s in &w.samples {
            assert_eq!(
                a.env.marker_count(s.marker),
                2,
                "{} marker {} must bound one sample",
                w.name,
                s.marker
            );
        }
        // Profiles exist for the entry method.
        assert!(a.profile.method(w.program.entry()).is_some(), "{}", w.name);
    }
}

#[test]
fn synthetic_scenarios_interpret_deterministically() {
    for w in [
        synthetic::add_element(5_000),
        synthetic::phase_flip(20_000, 15_000, 40),
        synthetic::postdom_checks(5_000),
    ] {
        let mut a = Interp::new(&w.program);
        a.set_fuel(w.fuel);
        a.run(&[]).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_ne!(a.env.checksum(), 0, "{}", w.name);
    }
}

#[test]
fn workload_profiles_capture_bias() {
    // The paper's whole premise: these programs are full of strongly-biased
    // branches. Check that each workload's entry profile contains at least
    // one branch with ≥99% bias and one with meaningful two-sidedness.
    for w in all_workloads() {
        let mut interp = Interp::new(&w.program).with_profiling();
        interp.set_fuel(w.fuel);
        interp.run(&[]).unwrap();
        let prof = interp.profile.method(w.program.entry()).unwrap();
        let mut biased = 0;
        let mut executed = 0;
        for &pc in prof.branches.keys() {
            if let Some(bias) = prof.branch_bias(pc) {
                executed += 1;
                if !(0.01..=0.99).contains(&bias) {
                    biased += 1;
                }
            }
        }
        assert!(executed > 0, "{}", w.name);
        assert!(
            biased >= 1,
            "{}: expected at least one strongly-biased branch ({biased}/{executed})",
            w.name
        );
    }
}
