//! Golden structural test for region formation on the paper's Figure 5 CFG:
//! an outer loop with a 50%/50% diamond, a 99%-biased inner exit and <1%
//! cold edges. After formation, the hot subgraph must be replicated behind
//! an `aregion_begin`, the cold edges must be asserts, and the original
//! blocks must survive as the abort path.

use hasp_experiments::profile_workload;
use hasp_opt::{compile_method, CompilerConfig};
use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};
use hasp_workloads::{Sample, Workload};

/// Figure 5's shape, expressed as a runnable program: `entry F; loop { B;
/// if (50%) D else E; I (99% continue / 1% cold); } G exit` with a cold
/// handler block C.
fn figure5_workload() -> Workload {
    let mut pb = ProgramBuilder::new();
    let st = pb.add_class("S", None, &["acc", "cold_hits", "d", "e"]);
    let f_acc = pb.field(st, "acc");
    let f_cold = pb.field(st, "cold_hits");
    let f_d = pb.field(st, "d");
    let f_e = pb.field(st, "e");

    let mut m = pb.method("main", 0);
    let s = m.reg();
    m.new_obj(s, st);
    let one = m.imm(1);
    let k100 = m.imm(100);
    let k50 = m.imm(50);
    m.marker(1);
    let i = m.imm(0);
    let n = m.imm(30_000);
    let head = m.new_label(); // B
    let d_arm = m.new_label(); // D
    let e_arm = m.new_label(); // E
    let latch = m.new_label(); // I
    let cold = m.new_label(); // C (cold)
    let exit = m.new_label(); // G
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    let r = m.reg();
    m.intrin(Intrinsic::NextRandom, Some(r), &[]);
    let sel = m.reg();
    let posmask = m.imm(0x7fff_ffff);
    m.bin(BinOp::And, sel, r, posmask);
    m.bin(BinOp::Rem, sel, sel, k100);
    // H: the 50/50 diamond.
    m.branch(CmpOp::Lt, sel, k50, d_arm);
    m.jump(e_arm);
    m.bind(d_arm);
    let dv = m.reg();
    m.get_field(dv, s, f_d);
    m.bin(BinOp::Add, dv, dv, one);
    m.put_field(s, f_d, dv);
    m.jump(latch);
    m.bind(e_arm);
    let ev = m.reg();
    m.get_field(ev, s, f_e);
    m.bin(BinOp::Add, ev, ev, sel);
    m.put_field(s, f_e, ev);
    m.jump(latch);
    m.bind(latch);
    let acc = m.reg();
    m.get_field(acc, s, f_acc);
    m.bin(BinOp::Add, acc, acc, sel);
    m.put_field(s, f_acc, acc);
    // I: the <1% cold edge.
    let zero = m.imm(0);
    let k199 = m.imm(199);
    let coldsel = m.reg();
    m.bin(BinOp::Rem, coldsel, r, k199);
    m.bin(BinOp::And, coldsel, coldsel, posmask);
    m.branch(CmpOp::Eq, coldsel, zero, cold);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(cold);
    let cv = m.reg();
    m.get_field(cv, s, f_cold);
    m.bin(BinOp::Add, cv, cv, one);
    m.put_field(s, f_cold, cv);
    m.put_field(s, f_acc, cv); // the cold path clobbers state
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    m.marker(1);
    for f in [f_acc, f_cold, f_d, f_e] {
        let v = m.reg();
        m.get_field(v, s, f);
        m.checksum(v);
    }
    m.ret(None);
    let entry = m.finish(&mut pb);
    Workload {
        name: "figure5",
        description: "the paper's Figure 5 region-formation shape",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 50_000_000,
    }
}

#[test]
fn figure5_formation_structure() {
    let w = figure5_workload();
    let profiled = profile_workload(&w);
    let c = compile_method(
        &w.program,
        &profiled.profile,
        w.program.entry(),
        &CompilerConfig::atomic(),
    );
    let f = &c.func;
    hasp_ir::verify(f).expect("formed function verifies");

    let formation = c.formation.expect("atomic config forms regions");
    assert!(
        !formation.regions.is_empty(),
        "the hot loop must get at least one region:\n{}",
        f.display()
    );

    // Structure: begins exist with abort edges to live original blocks.
    for &rid in &formation.regions {
        let info = &f.regions[rid.0 as usize];
        let begin = f.block(info.begin);
        match begin.term {
            hasp_ir::Term::RegionBegin { body, abort, .. } => {
                assert_eq!(abort, info.abort_target);
                assert_eq!(f.block(body).region, Some(rid), "body tagged");
                assert!(
                    f.block(abort).region.is_none(),
                    "abort path is non-speculative"
                );
            }
            ref other => panic!("begin has {other:?}"),
        }
    }
    // The cold edge was converted: asserts exist inside regions, and the
    // 50/50 diamond was NOT asserted (both arms are warm) — look for a real
    // branch inside a region.
    let mut in_region_asserts = 0;
    let mut in_region_branches = 0;
    for b in f.block_ids() {
        if f.block(b).region.is_none() {
            continue;
        }
        for i in &f.block(b).insts {
            if matches!(i.op, hasp_ir::Op::Assert { .. }) {
                in_region_asserts += 1;
            }
        }
        if matches!(f.block(b).term, hasp_ir::Term::Branch { .. }) {
            in_region_branches += 1;
        }
    }
    assert!(
        in_region_asserts >= 1,
        "cold edge must become an assert:\n{}",
        f.display()
    );
    assert!(
        in_region_branches >= 1,
        "warm 50/50 diamond must stay a branch (regions allow arbitrary \
         internal control flow):\n{}",
        f.display()
    );

    // And it actually runs correctly with aborts happening.
    let run = hasp_experiments::run_workload(
        &w,
        &profiled,
        &CompilerConfig::atomic(),
        &hasp_hw::HwConfig::baseline(),
    );
    assert!(run.stats.commits > 10_000);
    assert!(
        run.stats.total_aborts() > 50,
        "the 0.5% cold path must abort: {:?}",
        run.stats.aborts
    );
}
