//! Suite-level gate for the coherence directory (DESIGN §17): attaching a
//! core link to a *single-core* directory must be architecturally
//! invisible. For every Table 2 workload, on both dispatch engines, a
//! directory-attached run must be *bit-identical* to a plain run — same
//! checksum, same full `RunStats` (uops, cycles, hit mix, abort counts,
//! marker snaps), sample for sample. With no other core there is nobody to
//! signal, so the directory may only ever absorb publishes; the moment the
//! hook perturbs timing, footprints, or abort behaviour, this gate trips.

use std::sync::Arc;

use hasp_experiments::{
    compile_workload, profile_workload, try_execute_compiled, try_execute_compiled_with,
    CompiledWorkload, ProfiledWorkload,
};
use hasp_hw::{CoreLink, Directory, HwConfig};
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

fn run_both(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    hw: &HwConfig,
) -> (u64, u64) {
    let dir = Directory::new(1);
    let plain = try_execute_compiled(w, profiled, compiled, hw)
        .unwrap_or_else(|e| panic!("{}: plain run failed: {e}", w.name));
    let (attached, link) = try_execute_compiled_with(w, profiled, compiled, hw, |m| {
        m.attach_core(CoreLink::new(Arc::clone(&dir), 0, 0));
    })
    .unwrap_or_else(|e| panic!("{}: directory-attached run failed: {e}", w.name));
    assert_eq!(
        attached.stats, plain.stats,
        "{}: directory-attached stats diverged from the plain reference",
        w.name
    );
    assert_eq!(
        attached.samples, plain.samples,
        "{}: samples diverged",
        w.name
    );
    let link = link.expect("link comes back from the attached run");
    assert_eq!(
        link.stats.drained, 0,
        "{}: a single-core directory delivered a message",
        w.name
    );
    assert_eq!(dir.signaled(), 0, "{}: single-core run signaled", w.name);
    assert_eq!(
        dir.invalidations() + dir.downgrades(),
        0,
        "{}: single-core run generated coherence traffic",
        w.name
    );
    (link.stats.published, dir.publishes())
}

/// Every suite workload under the aggressive paper configuration, on the
/// superblock engine (checksum equality is asserted inside the runner
/// against the interpreter for both runs). Also requires the gate to be
/// non-vacuous: the attached run must actually publish intent.
#[test]
fn all_workloads_identical_with_directory_attached() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic_aggressive());
        let (published, publishes) = run_both(&w, &profiled, &compiled, &HwConfig::baseline());
        assert!(
            published > 0 && publishes > 0,
            "{}: attached run never consulted the directory — the gate is vacuous",
            w.name
        );
    }
}

/// The per-uop reference engine reaches the cache model through
/// `Machine::step` rather than the superblock interior loop, so its
/// accesses arrive at the coherence hook via `mem_access_parts` instead of
/// `mem_probe` — gate that leg too.
#[test]
fn per_uop_engine_identical_with_directory_attached() {
    for w in all_workloads() {
        let profiled = profile_workload(&w);
        let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic_aggressive());
        run_both(&w, &profiled, &compiled, &HwConfig::per_uop());
    }
}
