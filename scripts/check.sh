#!/usr/bin/env bash
# Pre-merge gauntlet: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== fault-campaign smoke (checksum equivalence under injected aborts) =="
cargo run --release -p hasp-experiments --bin experiments -- faults --smoke

echo "== knee-sweep smoke (conflict-rate probes, checksums, governor online) =="
cargo run --release -p hasp-experiments --bin experiments -- faults --knee --smoke

echo "== dispatch equivalence (release: chained dispatch vs per-uop oracle) =="
cargo test --release -q --test dispatch_equivalence

echo "== filter equivalence (release: MRU fast path vs unfiltered cache model) =="
cargo test --release -q --test filter_equivalence

echo "== cache property tests (release: filtered vs reference lockstep) =="
cargo test --release -q --test prop_hw

echo "== dispatch-bench smoke (superblock vs per-uop on the CI slice) =="
cargo run --release -p hasp-experiments --bin experiments -- bench-dispatch --smoke
# The chained block engine must never dispatch slower than the per-uop
# reference it replaces — a geomean below 1.0 on the smoke slice means the
# fast path has rotted.
python3 - <<'PY'
import json
g = json.load(open("BENCH_dispatch_smoke.json"))["geomean_speedup"]
assert g >= 1.0, f"superblock dispatch slower than per-uop reference: geomean {g:.2f}x"
print(f"smoke geomean {g:.2f}x >= 1.0 ok")
PY

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --release -q -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
