#!/usr/bin/env bash
# Pre-merge gauntlet: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== fault-campaign smoke (checksum equivalence under injected aborts) =="
cargo run --release -p hasp-experiments --bin experiments -- faults --smoke

echo "== dispatch-bench smoke (superblock vs per-uop on the CI slice) =="
cargo run --release -p hasp-experiments --bin experiments -- bench-dispatch --smoke

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --release -q -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
