#!/usr/bin/env bash
# Pre-merge gauntlet: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== fault-campaign smoke (checksum equivalence under injected aborts) =="
cargo run --release -p hasp-experiments --bin experiments -- faults --smoke
# Governor-ladder gates on the smoke artifact: every cell checksum-clean,
# per-tier accounting balanced (enters == exits + live), and the adaptive
# re-formation loop demonstrably recovers (>=1 row re-forms a region AND
# keeps committing afterwards — the footprint-split adversary guarantees
# the shape exists; this gate catches the ladder or the reform loop rotting).
python3 - <<'PY'
import json
r = json.load(open("BENCH_faults.json"))
assert r["schema"] == "hasp-faults-v2", f"unexpected schema {r['schema']}"
bad = [c for c in r["matrix"] if not c["ok"]]
assert not bad, f"checksum/validator failures: {[(c['workload'], c['fault']) for c in bad]}"
imbal = [c for c in r["matrix"] if not c.get("tier_consistent", False)]
assert not imbal, f"tier-counter imbalance: {[(c['workload'], c['fault']) for c in imbal]}"
assert r["tier_counters_consistent"], "aggregate tier-counter gate failed"
rec = [x for x in r["reforms"] if x["recovered"]]
assert rec, "no reform row recovered (reforms > 0 and post-reform commits > 0)"
assert all(x["ok"] for x in r["reforms"]), "a reform quantum failed"
print(f"ladder gates ok: {len(r['matrix'])} cells tier-balanced, "
      f"{len(rec)} reform row(s) recovered")
PY

echo "== knee-sweep smoke (conflict-rate probes, checksums, governor online) =="
cargo run --release -p hasp-experiments --bin experiments -- faults --knee --smoke

echo "== dispatch equivalence (release: chained dispatch vs per-uop oracle) =="
cargo test --release -q --test dispatch_equivalence

echo "== filter equivalence (release: MRU fast path vs unfiltered cache model) =="
cargo test --release -q --test filter_equivalence

echo "== predictor equivalence (debug: way-predicted path vs unpredicted model) =="
cargo test -q --test predictor_equivalence

echo "== predictor equivalence (release: way-predicted path vs unpredicted model) =="
cargo test --release -q --test predictor_equivalence

echo "== batch equivalence (release: bulk accounting vs per-access reference) =="
cargo test --release -q --test batch_equivalence

echo "== cache property tests (release: filtered vs reference lockstep) =="
cargo test --release -q --test prop_hw

echo "== dispatch-bench smoke (superblock vs per-uop on the CI slice) =="
cargo run --release -p hasp-experiments --bin experiments -- bench-dispatch --smoke
# Two regression gates on the CI slice (fop + pmd). The shipped-geomean
# floor is calibrated from the measured smoke geomean (1.45-1.55x on CI
# hardware; the suite-wide full-run geomean is ~1.55x) with headroom for
# scheduler noise — a drop below 1.40x means the block engine genuinely
# rotted, not that the machine was busy. The cache-off ceiling gate
# catches regressions in the ablation leg itself, which the full run
# would otherwise only surface post-merge.
python3 - <<'PY'
import json
r = json.load(open("BENCH_dispatch_smoke.json"))
assert r["schema"] == "hasp-bench-dispatch-v4", f"unexpected schema {r['schema']}"
g, c = r["geomean_speedup"], r["geomean_cache_off"]
assert g >= 1.40, f"superblock dispatch regressed: smoke geomean {g:.2f}x < 1.40x floor"
assert c >= g, f"cache-off ablation slower than the shipped engine: {c:.2f}x < {g:.2f}x"
# Way-predictor sanity (DESIGN §16): under the shipped config every
# workload's dynamic heap accesses must both consult and sometimes hit the
# seal-site predictor — a zero here means the seal-site plumbing or the
# training path rotted, which the bit-exact equivalence gates cannot see.
cold = [w["workload"] for w in r["per_workload"]
        if w["pred_probes"] == 0 or w["pred_hits"] == 0]
assert not cold, f"way predictor dead on {cold}"
rates = {w["workload"]: w["pred_rate"] for w in r["per_workload"]}
print(f"smoke geomean {g:.2f}x >= 1.40 ok; cache-off ceiling {c:.2f}x >= shipped ok; "
      f"pred hit-rates {rates}")
PY

echo "== service publication test (release: mid-stream cache swap under threads) =="
cargo test --release -q -p hasp-experiments --test service

echo "== service-mode smoke (pooled workers, lock-free published cache) =="
cargo run --release -p hasp-experiments --bin experiments -- serve --smoke
# Service gates on the smoke artifact: schema pinned, the shard-merge
# conservation flag true in every leg, and N-worker throughput at least the
# 1-worker floor (the scaling curve is computed over deterministic modeled
# cycles, so this is host-independent — a violation means the harness or
# the isolation property rotted, not that CI was slow).
python3 - <<'PY'
import json
r = json.load(open("BENCH_service_smoke.json"))
assert r["schema"] == "hasp-service-v1", f"unexpected schema {r['schema']}"
legs = r["legs"]
assert legs, "no service legs"
bad = [l["workers"] for l in legs if not l["conservation"]]
assert not bad, f"shard-merge conservation failed at worker counts {bad}"
fail = [l["workers"] for l in legs if l["failures"]]
assert not fail, f"request failures at worker counts {fail}"
leak = [l["workers"] for l in legs if l["retired_after"]]
assert not leak, f"unreclaimed cache versions at worker counts {leak}"
base = legs[0]["throughput_rps"]
low = [l["workers"] for l in legs if l["throughput_rps"] < base]
assert not low, f"worker scaling below the 1-worker floor at {low}"
assert r["deterministic"], "request timings varied across worker counts"
print(f"service gates ok: {len(legs)} legs conserved, top speedup "
      f"{r['top_speedup']:.2f}x, deterministic")
PY

echo "== coherence equivalence (release: directory-attached vs plain, both engines) =="
cargo test --release -q --test coherence_equivalence

echo "== mt stress (release: antagonist + two-machine conservation) =="
cargo test --release -q --test mt_coherence

echo "== mt smoke (real threads over the sharded coherence directory) =="
cargo run --release -p hasp-experiments --bin experiments -- mt --smoke
# Multi-core gates on the smoke artifact: schema pinned, the directory's
# conservation identity (signaled == sig_aborts + sig_raced) true in every
# leg, emergent conflicts strictly positive with NO FaultPlan anywhere in
# the harness, and — only when the host actually has >= 2 CPUs — a 1.5x
# throughput floor at 2 workers. On a 1-core host the two workers time-slice
# one CPU, so wall-clock scaling is physically capped at ~1.0x and the
# floor is skipped (the artifact records host_cores for exactly this
# decision); the conservation and emergence gates are host-independent and
# always enforced.
python3 - <<'PY'
import json
r = json.load(open("BENCH_mt_smoke.json"))
assert r["schema"] == "hasp-mt-v1", f"unexpected schema {r['schema']}"
assert r["conservation_ok"], "directory conservation identity violated"
legs = r["legs"]
assert legs, "no mt legs"
bad = [l["workers"] for l in legs if not l["conservation"]]
assert not bad, f"conservation failed at worker counts {bad}"
c = r["contention"]
assert c["conservation"], "contention-phase conservation failed"
assert c["emergent"] > 0, "no emergent conflicts under shared-tenant contention"
host = r["host_cores"]
if host >= 2:
    two = next(l for l in legs if l["workers"] == 2)
    assert two["scaling_x"] >= 1.5, \
        f"2-worker scaling {two['scaling_x']:.2f}x < 1.5x floor on a {host}-core host"
    scale_note = f"2-worker scaling {two['scaling_x']:.2f}x >= 1.5x"
else:
    scale_note = "scaling floor skipped (1-core host)"
print(f"mt gates ok: {len(legs)} legs conserved, {c['emergent']} emergent "
      f"conflicts under contention, {scale_note}")
PY

# Optional ThreadSanitizer leg for the directory stress tests: needs a
# nightly toolchain with -Zsanitizer AND the rust-src component (for
# -Zbuild-std, which TSan requires to instrument std); skipped quietly
# when the container lacks either (the stable suite above still runs the
# same tests race-hunting via assertions).
if rustup run nightly rustc -V >/dev/null 2>&1 \
   && [ -f "$(rustup run nightly rustc --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library/Cargo.lock" ]; then
  echo "== mt stress under ThreadSanitizer (nightly) =="
  RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
    rustup run nightly cargo test -q --test mt_coherence \
      -Zbuild-std --target "$(rustc -vV | sed -n 's/host: //p')" \
    || { echo "TSan leg failed"; exit 1; }
else
  echo "== mt stress under ThreadSanitizer: skipped (no nightly toolchain with rust-src) =="
fi

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --release -q -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
