#!/usr/bin/env bash
# Pre-merge gauntlet: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== fault-campaign smoke (checksum equivalence under injected aborts) =="
cargo run --release -p hasp-experiments --bin experiments -- faults --smoke
# Governor-ladder gates on the smoke artifact: every cell checksum-clean,
# per-tier accounting balanced (enters == exits + live), and the adaptive
# re-formation loop demonstrably recovers (>=1 row re-forms a region AND
# keeps committing afterwards — the footprint-split adversary guarantees
# the shape exists; this gate catches the ladder or the reform loop rotting).
python3 - <<'PY'
import json
r = json.load(open("BENCH_faults.json"))
assert r["schema"] == "hasp-faults-v2", f"unexpected schema {r['schema']}"
bad = [c for c in r["matrix"] if not c["ok"]]
assert not bad, f"checksum/validator failures: {[(c['workload'], c['fault']) for c in bad]}"
imbal = [c for c in r["matrix"] if not c.get("tier_consistent", False)]
assert not imbal, f"tier-counter imbalance: {[(c['workload'], c['fault']) for c in imbal]}"
assert r["tier_counters_consistent"], "aggregate tier-counter gate failed"
rec = [x for x in r["reforms"] if x["recovered"]]
assert rec, "no reform row recovered (reforms > 0 and post-reform commits > 0)"
assert all(x["ok"] for x in r["reforms"]), "a reform quantum failed"
print(f"ladder gates ok: {len(r['matrix'])} cells tier-balanced, "
      f"{len(rec)} reform row(s) recovered")
PY

echo "== knee-sweep smoke (conflict-rate probes, checksums, governor online) =="
cargo run --release -p hasp-experiments --bin experiments -- faults --knee --smoke

echo "== dispatch equivalence (release: chained dispatch vs per-uop oracle) =="
cargo test --release -q --test dispatch_equivalence

echo "== filter equivalence (release: MRU fast path vs unfiltered cache model) =="
cargo test --release -q --test filter_equivalence

echo "== batch equivalence (release: bulk accounting vs per-access reference) =="
cargo test --release -q --test batch_equivalence

echo "== cache property tests (release: filtered vs reference lockstep) =="
cargo test --release -q --test prop_hw

echo "== dispatch-bench smoke (superblock vs per-uop on the CI slice) =="
cargo run --release -p hasp-experiments --bin experiments -- bench-dispatch --smoke
# Two regression gates on the CI slice (fop + pmd). The shipped-geomean
# floor is calibrated from the measured smoke geomean (1.45-1.55x on CI
# hardware; the suite-wide full-run geomean is ~1.55x) with headroom for
# scheduler noise — a drop below 1.40x means the block engine genuinely
# rotted, not that the machine was busy. The cache-off ceiling gate
# catches regressions in the ablation leg itself, which the full run
# would otherwise only surface post-merge.
python3 - <<'PY'
import json
r = json.load(open("BENCH_dispatch_smoke.json"))
g, c = r["geomean_speedup"], r["geomean_cache_off"]
assert g >= 1.40, f"superblock dispatch regressed: smoke geomean {g:.2f}x < 1.40x floor"
assert c >= g, f"cache-off ablation slower than the shipped engine: {c:.2f}x < {g:.2f}x"
print(f"smoke geomean {g:.2f}x >= 1.40 ok; cache-off ceiling {c:.2f}x >= shipped ok")
PY

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --release -q -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
