//! Quickstart: the whole pipeline on one hot loop.
//!
//! Builds a small Java-like program with a 99.9%-biased branch, profiles it
//! in the interpreter, compiles it with and without atomic regions, runs
//! both on the simulated checkpoint machine, and prints what the hardware
//! saw — the Figure 4 usage pattern end to end.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hasp_hw::{lower, CodeCache, HwConfig, Machine};
use hasp_opt::{compile_program, CompilerConfig};
use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp};
use hasp_vm::interp::Interp;
use hasp_vm::Program;

fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let cls = pb.add_class(
        "Counter",
        None,
        &["value", "total", "checkmod", "overflows"],
    );
    let f_value = pb.field(cls, "value");
    let f_total = pb.field(cls, "total");
    let f_mod = pb.field(cls, "checkmod");
    let f_over = pb.field(cls, "overflows");

    let mut m = pb.method("main", 0);
    let c = m.reg();
    m.new_obj(c, cls);
    let i = m.imm(0);
    let n = m.imm(100_000);
    let one = m.imm(1);
    let limit = m.imm(99_999); // hit once: the cold path
    let head = m.new_label();
    let exit = m.new_label();
    let cold = m.new_label();
    let join = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    // Hot path: update several fields of the counter object.
    let v = m.reg();
    m.get_field(v, c, f_value);
    m.bin(BinOp::Add, v, v, one);
    m.put_field(c, f_value, v);
    let t = m.reg();
    m.get_field(t, c, f_total);
    m.bin(BinOp::Add, t, t, v);
    m.put_field(c, f_total, t);
    let md = m.reg();
    m.get_field(md, c, f_mod);
    let k7 = m.imm(7);
    m.bin(BinOp::Add, md, md, k7);
    m.put_field(c, f_mod, md);
    m.branch(CmpOp::Ge, v, limit, cold); // 0.001% taken
    m.jump(join);
    m.bind(cold);
    // The overflow handler rewrites the counter state: the join below can
    // no longer assume anything about the fields.
    let zero = m.imm(0);
    m.put_field(c, f_value, zero);
    m.put_field(c, f_total, zero);
    m.put_field(c, f_mod, zero);
    let o = m.reg();
    m.get_field(o, c, f_over);
    m.bin(BinOp::Add, o, o, one);
    m.put_field(c, f_over, o);
    m.jump(join);
    m.bind(join);
    // Post-join digest: reloads everything the hot path just wrote. The
    // baseline must issue these loads (the cold arm may have clobbered
    // them); with the cold branch converted to an assert, value numbering
    // forwards all three.
    let v2 = m.reg();
    m.get_field(v2, c, f_value);
    let t2 = m.reg();
    m.get_field(t2, c, f_total);
    let m2 = m.reg();
    m.get_field(m2, c, f_mod);
    let digest = m.reg();
    m.bin(BinOp::Add, digest, v2, t2);
    m.bin(BinOp::Xor, digest, digest, m2);
    m.checksum(digest);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    let out = m.reg();
    m.get_field(out, c, f_value);
    m.ret(Some(out));
    let entry = m.finish(&mut pb);
    pb.finish(entry)
}

fn main() {
    let program = build_program();

    // 1. Profile with the interpreter (the VM's first tier).
    let mut interp = Interp::new(&program).with_profiling();
    interp.set_fuel(100_000_000);
    let result = interp.run(&[]).expect("interpretation failed");
    let reference = interp.env.checksum();
    println!("interpreted: result = {result:?}, checksum = {reference:#x}");

    // 2. Compile and execute under both configurations.
    for cfg in [CompilerConfig::no_atomic(), CompilerConfig::atomic()] {
        let compiled = compile_program(&program, &interp.profile, &cfg);
        let mut code = CodeCache::new();
        for (mid, c) in &compiled {
            code.install(*mid, lower(&c.func));
        }
        let mut machine = Machine::new(&program, &code, HwConfig::baseline());
        machine.set_fuel(500_000_000);
        let mresult = machine.run(&[]).expect("machine run failed");
        assert_eq!(
            machine.env.checksum(),
            reference,
            "speculation broke semantics!"
        );
        let s = machine.stats();
        println!("\n[{}] result = {mresult:?} (checksum verified)", cfg.name);
        println!("  uops          : {}", s.uops);
        println!("  cycles        : {}", s.cycles);
        println!("  regions commit: {}", s.commits);
        println!("  regions abort : {}", s.total_aborts());
        println!("  coverage      : {:.1}%", s.coverage() * 100.0);
        if s.commits > 0 {
            println!("  avg region    : {:.0} uops", s.avg_region_size());
        }
    }
    println!(
        "\nThe atomic configuration converts the cold overflow branch into an\n\
         aregion_abort assert, so value numbering removes the redundant reload\n\
         across what used to be a control-flow merge (paper §2, Figure 1)."
    );
}
