//! The paper's motivating example (Figures 2–3): Xalan's
//! `SuballocatedIntVector.addElement`, called twice in sequence at its
//! hottest call site.
//!
//! Compares three compilation strategies on the same workload:
//! * the plain baseline (no speculation),
//! * conventional superblock formation (tail duplication, the pre-atomicity
//!   state of the art — compensation-code territory),
//! * atomic regions (hardware atomicity; no compensation code).
//!
//! ```bash
//! cargo run --release --example addelement
//! ```

use hasp_hw::{lower, CodeCache, HwConfig, Machine};
use hasp_opt::{compile_method, compile_program, superblock, CompilerConfig};
use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};
use hasp_vm::interp::Interp;
use hasp_vm::Program;
use hasp_workloads::classlib::int_vector;

fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let vec = int_vector(&mut pb);
    let mut m = pb.method("main", 0);
    let bs = m.imm(4096);
    let data = m.reg();
    m.call(Some(data), vec.new, &[bs]);
    let i = m.imm(0);
    let n = m.imm(20_000);
    let one = m.imm(1);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    // The paper's hottest call site:
    //   m_data.addElement(m_textPendingStart);
    //   m_data.addElement(length);
    let r = m.reg();
    m.intrin(Intrinsic::NextRandom, Some(r), &[]);
    let k255 = m.imm(255);
    let len = m.reg();
    m.bin(BinOp::And, len, r, k255);
    m.call(None, vec.add, &[data, i]);
    m.call(None, vec.add, &[data, len]);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    let sz = m.reg();
    m.call(Some(sz), vec.size, &[data]);
    m.checksum(sz);
    let probe = m.imm(12345);
    let e = m.reg();
    m.call(Some(e), vec.get, &[data, probe]);
    m.checksum(e);
    m.ret(Some(sz));
    let entry = m.finish(&mut pb);
    pb.finish(entry)
}

fn main() {
    let program = build_program();
    let mut interp = Interp::new(&program).with_profiling();
    interp.set_fuel(200_000_000);
    interp.run(&[]).expect("interp");
    let reference = interp.env.checksum();
    let profile = interp.profile;

    let run = |code: &CodeCache, label: &str| {
        let mut machine = Machine::new(&program, code, HwConfig::baseline());
        machine.set_fuel(500_000_000);
        machine.run(&[]).expect("machine");
        assert_eq!(machine.env.checksum(), reference, "{label}: wrong result");
        let s = machine.stats().clone();
        println!(
            "{label:<28} uops {:>9}  cycles {:>9}  regions {:>6}  aborts {}",
            s.uops,
            s.cycles,
            s.commits,
            s.total_aborts()
        );
        s
    };

    // Baseline.
    let cfg = CompilerConfig::no_atomic();
    let compiled = compile_program(&program, &profile, &cfg);
    let mut base_code = CodeCache::new();
    for (mid, c) in &compiled {
        base_code.install(*mid, lower(&c.func));
    }
    let base = run(&base_code, "no-atomic");

    // Superblock formation: tail-duplicate the hot path of every method
    // (Figure 2(c)) on top of the baseline pipeline.
    let mut sb_code = CodeCache::new();
    for mid in program.method_ids() {
        let mut c = compile_method(&program, &profile, mid, &cfg);
        superblock::run(&mut c.func);
        hasp_opt::gvn::run(&mut c.func);
        hasp_opt::constprop::run(&mut c.func);
        hasp_opt::dce::run(&mut c.func);
        hasp_opt::simplify::run(&mut c.func);
        hasp_ir::verify(&c.func).expect("superblock output must verify");
        sb_code.install(mid, lower(&c.func));
    }
    let sb = run(&sb_code, "superblock (tail dup)");

    // Atomic regions.
    let acfg = CompilerConfig::atomic();
    let compiled = compile_program(&program, &profile, &acfg);
    let mut atom_code = CodeCache::new();
    for (mid, c) in &compiled {
        atom_code.install(*mid, lower(&c.func));
    }
    let atom = run(&atom_code, "atomic regions");

    let pct = |new: u64, old: u64| (old as f64 / new as f64 - 1.0) * 100.0;
    println!(
        "\nspeedup vs no-atomic: superblock {:+.1}%, atomic regions {:+.1}%",
        pct(sb.cycles, base.cycles),
        pct(atom.cycles, base.cycles)
    );
    println!(
        "uop reduction        : superblock {:+.1}%, atomic regions {:+.1}%",
        (1.0 - sb.uops as f64 / base.uops as f64) * 100.0,
        (1.0 - atom.uops as f64 / base.uops as f64) * 100.0
    );
    println!(
        "\nSuperblock formation removes side entrances by replication but must\n\
         keep every hot-path exit correct itself; atomic regions let the same\n\
         value-numbering pass speculate across the pruned cold paths with the\n\
         hardware providing recovery (paper Figures 2-3)."
    );
}
