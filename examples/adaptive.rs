//! Adaptive recompilation (paper §7, future work): the hardware's abort
//! reason/PC registers identify regions whose profile went stale; methods
//! above the abort-rate threshold are recompiled without speculation.
//!
//! The workload's hot branch flips bias after the profiling window — cold
//! during warm-up, ~40% taken in the measured phase — so every atomic region
//! formed from the profile keeps aborting, exactly the failure the paper's
//! reactive loop exists for.
//!
//! ```bash
//! cargo run --release --example adaptive
//! ```

use hasp_experiments::adaptive::{run_adaptive, ABORT_RATE_THRESHOLD};
use hasp_experiments::{profile_workload, run_workload};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;
use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};
use hasp_workloads::{Sample, Workload};

fn phase_flip_workload() -> Workload {
    let mut pb = ProgramBuilder::new();
    let st = pb.add_class("Stats", None, &["evens", "odds", "sum"]);
    let f_even = pb.field(st, "evens");
    let f_odd = pb.field(st, "odds");
    let f_sum = pb.field(st, "sum");

    let mut m = pb.method("main", 0);
    let s = m.reg();
    m.new_obj(s, st);
    let one = m.imm(1);
    let k100 = m.imm(100);
    // One loop whose "odd" threshold flips from 0% to 40% at i = 60000 —
    // after the first-pass profiling window closes.
    m.marker(1);
    let i = m.imm(0);
    let n = m.imm(72_000);
    let flip = m.imm(60_000);
    let k40 = m.imm(40);
    let head = m.new_label();
    let exit = m.new_label();
    let odd = m.new_label();
    let join = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    let late = m.reg();
    m.cmp(CmpOp::Ge, late, i, flip);
    let thr = m.reg();
    m.bin(BinOp::Mul, thr, late, k40);
    let r = m.reg();
    m.intrin(Intrinsic::NextRandom, Some(r), &[]);
    let sel = m.reg();
    m.bin(BinOp::Rem, sel, r, k100);
    let sum = m.reg();
    m.get_field(sum, s, f_sum);
    m.bin(BinOp::Add, sum, sum, sel);
    m.put_field(s, f_sum, sum);
    m.branch(CmpOp::Lt, sel, thr, odd); // cold in the profile window
    let e = m.reg();
    m.get_field(e, s, f_even);
    m.bin(BinOp::Add, e, e, one);
    m.put_field(s, f_even, e);
    m.jump(join);
    m.bind(odd);
    let o = m.reg();
    m.get_field(o, s, f_odd);
    m.bin(BinOp::Add, o, o, one);
    m.put_field(s, f_odd, o);
    m.put_field(s, f_sum, o); // clobbers what the digest reloads
    m.jump(join);
    m.bind(join);
    let d = m.reg();
    m.get_field(d, s, f_sum);
    m.checksum(d);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    m.marker(1);
    for f in [f_even, f_odd, f_sum] {
        let v = m.reg();
        m.get_field(v, s, f);
        m.checksum(v);
    }
    m.ret(None);
    let entry = m.finish(&mut pb);
    Workload {
        name: "phase-flip",
        description: "hot branch flips from 0% to 40% after profiling",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 100_000_000,
    }
}

fn main() {
    let w = phase_flip_workload();
    println!("profiling {} ...", w.name);
    let mut profiled = profile_workload(&w);
    // The JVM's first-pass profiler only sees the early execution window —
    // phase 2 has not happened yet when the optimizer runs. Re-profile with
    // a bounded budget covering roughly phase 1.
    {
        use hasp_vm::interp::Interp;
        let mut early = Interp::new(&w.program).with_profiling();
        early.set_fuel(900_000);
        let _ = early.run(&[]); // fuel exhaustion expected
        profiled.profile = early.profile;
    }

    let baseline = run_workload(
        &w,
        &profiled,
        &CompilerConfig::no_atomic(),
        &HwConfig::baseline(),
    );

    println!("running speculative → diagnosing → recompiling → re-running ...");
    let outcome = run_adaptive(
        &w,
        &profiled,
        &CompilerConfig::atomic(),
        &HwConfig::baseline(),
    );

    let f = &outcome.first.stats;
    let s = &outcome.second.stats;
    println!(
        "\nbaseline  (no-atomic) : cycles {:>9}",
        baseline.stats.cycles
    );
    println!(
        "first run (atomic)    : cycles {:>9}  aborts {:>6} ({:.2}% of regions)",
        f.cycles,
        f.total_aborts(),
        f.abort_rate() * 100.0
    );
    println!(
        "methods over the {:.0}% abort threshold: {:?}",
        ABORT_RATE_THRESHOLD * 100.0,
        outcome
            .recompiled
            .iter()
            .map(|m| w.program.method(*m).name.clone())
            .collect::<Vec<_>>()
    );
    println!(
        "second run (adaptive) : cycles {:>9}  aborts {:>6} ({:.2}% of regions)",
        s.cycles,
        s.total_aborts(),
        s.abort_rate() * 100.0
    );

    let d = (f.cycles as f64 / s.cycles as f64 - 1.0) * 100.0;
    println!("\nadaptive recompilation changed execution time by {d:+.1}%");
    println!(
        "(the paper: \"an abort rate of even a few percent can have a\n\
         significant impact on performance\" — reactive recompilation is the\n\
         proposed remedy)"
    );
}
