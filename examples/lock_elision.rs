//! Speculative lock elision (paper §4): synchronized-method-heavy code where
//! monitor pairs inside atomic regions collapse to a single lock-word load
//! plus a held-by-another-thread test — "in the common case, no action is
//! needed at the monitor exit".
//!
//! Also demonstrates the isolation half of the story: injected coherence
//! conflicts on the lock's cache line abort the region, and execution falls
//! back to the non-speculative path that really acquires the monitor.
//!
//! ```bash
//! cargo run --release --example lock_elision
//! ```

use hasp_hw::{lower, AbortReason, CodeCache, HwConfig, Machine};
use hasp_opt::{compile_program, CompilerConfig};
use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp};
use hasp_vm::interp::Interp;
use hasp_vm::Program;

fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let acct = pb.add_class("Account", None, &["balance", "ops"]);
    let f_bal = pb.field(acct, "balance");
    let f_ops = pb.field(acct, "ops");

    // synchronized deposit(acct, amount)
    let mut d = pb.method("Account.deposit", 2);
    d.set_synchronized();
    let v = d.reg();
    d.get_field(v, d.arg(0), f_bal);
    d.bin(BinOp::Add, v, v, d.arg(1));
    d.put_field(d.arg(0), f_bal, v);
    let o = d.reg();
    d.get_field(o, d.arg(0), f_ops);
    let one = d.imm(1);
    d.bin(BinOp::Add, o, o, one);
    d.put_field(d.arg(0), f_ops, o);
    d.ret(None);
    let deposit = d.finish(&mut pb);

    let mut m = pb.method("main", 0);
    let a = m.reg();
    m.new_obj(a, acct);
    let i = m.imm(0);
    let n = m.imm(30_000);
    let one = m.imm(1);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    m.call(None, deposit, &[a, i]);
    m.call(None, deposit, &[a, one]);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    let out = m.reg();
    m.get_field(out, a, f_bal);
    m.checksum(out);
    m.ret(Some(out));
    let entry = m.finish(&mut pb);
    pb.finish(entry)
}

fn main() {
    let program = build_program();
    let mut interp = Interp::new(&program).with_profiling();
    interp.set_fuel(100_000_000);
    interp.run(&[]).expect("interp");
    let reference = interp.env.checksum();

    let mut no_sle = CompilerConfig::atomic();
    no_sle.sle = false;
    no_sle.name = "atomic (SLE off)";

    for (cfg, hw) in [
        (CompilerConfig::no_atomic(), HwConfig::baseline()),
        (no_sle, HwConfig::baseline()),
        (CompilerConfig::atomic(), HwConfig::baseline()),
        (CompilerConfig::atomic(), {
            // Contention scenario: other agents hammer the cache.
            let mut hw = HwConfig::baseline();
            hw.name = "chkpt+conflicts";
            hw.faults.conflict_per_miljon = 200;
            hw
        }),
    ] {
        let compiled = compile_program(&program, &interp.profile, &cfg);
        let mut code = CodeCache::new();
        for (mid, c) in &compiled {
            code.install(*mid, lower(&c.func));
        }
        let mut machine = Machine::new(&program, &code, hw.clone());
        machine.set_fuel(500_000_000);
        machine.run(&[]).expect("machine");
        assert_eq!(machine.env.checksum(), reference, "semantics must hold");
        let s = machine.stats();
        println!(
            "{:<18} on {:<16} uops {:>8}  cycles {:>8}  commits {:>6}  sle-aborts {:>3}  conflict-aborts {:>3}",
            cfg.name,
            hw.name,
            s.uops,
            s.cycles,
            s.commits,
            s.aborts.get(AbortReason::Sle),
            s.aborts.get(AbortReason::Conflict),
        );
    }
    println!(
        "\nSLE replaces each monitor enter/exit pair (two lock-word round trips)\n\
         with one load+branch; injected conflicts show the fallback path keeps\n\
         the program correct when the optimism fails."
    );
}
