/root/repo/target/release/deps/debug_stats-7cd59153b847d100.d: crates/experiments/src/bin/debug_stats.rs Cargo.toml

/root/repo/target/release/deps/libdebug_stats-7cd59153b847d100.rmeta: crates/experiments/src/bin/debug_stats.rs Cargo.toml

crates/experiments/src/bin/debug_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
