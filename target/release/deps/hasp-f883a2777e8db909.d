/root/repo/target/release/deps/hasp-f883a2777e8db909.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libhasp-f883a2777e8db909.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
