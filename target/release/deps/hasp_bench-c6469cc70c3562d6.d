/root/repo/target/release/deps/hasp_bench-c6469cc70c3562d6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libhasp_bench-c6469cc70c3562d6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
