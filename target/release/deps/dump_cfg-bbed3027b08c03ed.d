/root/repo/target/release/deps/dump_cfg-bbed3027b08c03ed.d: crates/experiments/src/bin/dump_cfg.rs Cargo.toml

/root/repo/target/release/deps/libdump_cfg-bbed3027b08c03ed.rmeta: crates/experiments/src/bin/dump_cfg.rs Cargo.toml

crates/experiments/src/bin/dump_cfg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
