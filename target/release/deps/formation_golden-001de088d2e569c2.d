/root/repo/target/release/deps/formation_golden-001de088d2e569c2.d: tests/formation_golden.rs Cargo.toml

/root/repo/target/release/deps/libformation_golden-001de088d2e569c2.rmeta: tests/formation_golden.rs Cargo.toml

tests/formation_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
