/root/repo/target/release/deps/hasp_bench-75b48cbd932fd478.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/hasp_bench-75b48cbd932fd478: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
