/root/repo/target/release/deps/determinism-37dce2a58971e70a.d: crates/experiments/tests/determinism.rs

/root/repo/target/release/deps/determinism-37dce2a58971e70a: crates/experiments/tests/determinism.rs

crates/experiments/tests/determinism.rs:
