/root/repo/target/release/deps/prop_equivalence-453665de3265a1ad.d: tests/prop_equivalence.rs

/root/repo/target/release/deps/prop_equivalence-453665de3265a1ad: tests/prop_equivalence.rs

tests/prop_equivalence.rs:
