/root/repo/target/release/deps/prop_hw-c83d0772bed1eaf3.d: tests/prop_hw.rs

/root/repo/target/release/deps/prop_hw-c83d0772bed1eaf3: tests/prop_hw.rs

tests/prop_hw.rs:
