/root/repo/target/release/deps/debug_inline-bea90b9e67e1e805.d: crates/experiments/src/bin/debug_inline.rs Cargo.toml

/root/repo/target/release/deps/libdebug_inline-bea90b9e67e1e805.rmeta: crates/experiments/src/bin/debug_inline.rs Cargo.toml

crates/experiments/src/bin/debug_inline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
