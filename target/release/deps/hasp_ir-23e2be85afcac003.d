/root/repo/target/release/deps/hasp_ir-23e2be85afcac003.d: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs Cargo.toml

/root/repo/target/release/deps/libhasp_ir-23e2be85afcac003.rmeta: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/dom.rs:
crates/ir/src/dot.rs:
crates/ir/src/func.rs:
crates/ir/src/instr.rs:
crates/ir/src/liveness.rs:
crates/ir/src/loops.rs:
crates/ir/src/ssa.rs:
crates/ir/src/ssa_repair.rs:
crates/ir/src/translate.rs:
crates/ir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
