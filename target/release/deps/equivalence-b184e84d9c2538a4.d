/root/repo/target/release/deps/equivalence-b184e84d9c2538a4.d: tests/equivalence.rs

/root/repo/target/release/deps/equivalence-b184e84d9c2538a4: tests/equivalence.rs

tests/equivalence.rs:
