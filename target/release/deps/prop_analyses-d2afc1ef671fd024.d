/root/repo/target/release/deps/prop_analyses-d2afc1ef671fd024.d: tests/prop_analyses.rs Cargo.toml

/root/repo/target/release/deps/libprop_analyses-d2afc1ef671fd024.rmeta: tests/prop_analyses.rs Cargo.toml

tests/prop_analyses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
