/root/repo/target/release/deps/criterion-de80eb840f059c11.d: third_party/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-de80eb840f059c11.rmeta: third_party/criterion/src/lib.rs Cargo.toml

third_party/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
