/root/repo/target/release/deps/hasp_hw-1a04f96f3556ebc6.d: crates/hw/src/lib.rs crates/hw/src/bpred.rs crates/hw/src/cache.rs crates/hw/src/config.rs crates/hw/src/lineset.rs crates/hw/src/lower.rs crates/hw/src/machine.rs crates/hw/src/stats.rs crates/hw/src/uop.rs Cargo.toml

/root/repo/target/release/deps/libhasp_hw-1a04f96f3556ebc6.rmeta: crates/hw/src/lib.rs crates/hw/src/bpred.rs crates/hw/src/cache.rs crates/hw/src/config.rs crates/hw/src/lineset.rs crates/hw/src/lower.rs crates/hw/src/machine.rs crates/hw/src/stats.rs crates/hw/src/uop.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/bpred.rs:
crates/hw/src/cache.rs:
crates/hw/src/config.rs:
crates/hw/src/lineset.rs:
crates/hw/src/lower.rs:
crates/hw/src/machine.rs:
crates/hw/src/stats.rs:
crates/hw/src/uop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
