/root/repo/target/release/deps/dump_cfg-88038fd29666d89e.d: crates/experiments/src/bin/dump_cfg.rs Cargo.toml

/root/repo/target/release/deps/libdump_cfg-88038fd29666d89e.rmeta: crates/experiments/src/bin/dump_cfg.rs Cargo.toml

crates/experiments/src/bin/dump_cfg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
