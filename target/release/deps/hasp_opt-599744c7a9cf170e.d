/root/repo/target/release/deps/hasp_opt-599744c7a9cf170e.d: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs

/root/repo/target/release/deps/hasp_opt-599744c7a9cf170e: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs

crates/opt/src/lib.rs:
crates/opt/src/checkelim.rs:
crates/opt/src/constprop.rs:
crates/opt/src/dce.rs:
crates/opt/src/gvn.rs:
crates/opt/src/inline.rs:
crates/opt/src/pipeline.rs:
crates/opt/src/safepoint.rs:
crates/opt/src/simplify.rs:
crates/opt/src/sle.rs:
crates/opt/src/superblock.rs:
crates/opt/src/unroll.rs:
