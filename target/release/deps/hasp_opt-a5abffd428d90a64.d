/root/repo/target/release/deps/hasp_opt-a5abffd428d90a64.d: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs Cargo.toml

/root/repo/target/release/deps/libhasp_opt-a5abffd428d90a64.rmeta: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs Cargo.toml

crates/opt/src/lib.rs:
crates/opt/src/checkelim.rs:
crates/opt/src/constprop.rs:
crates/opt/src/dce.rs:
crates/opt/src/gvn.rs:
crates/opt/src/inline.rs:
crates/opt/src/pipeline.rs:
crates/opt/src/safepoint.rs:
crates/opt/src/simplify.rs:
crates/opt/src/sle.rs:
crates/opt/src/superblock.rs:
crates/opt/src/unroll.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
