/root/repo/target/release/deps/workload_smoke-9c7ebb1e9521f40b.d: tests/workload_smoke.rs

/root/repo/target/release/deps/workload_smoke-9c7ebb1e9521f40b: tests/workload_smoke.rs

tests/workload_smoke.rs:
