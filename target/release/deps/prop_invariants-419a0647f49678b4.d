/root/repo/target/release/deps/prop_invariants-419a0647f49678b4.d: tests/prop_invariants.rs

/root/repo/target/release/deps/prop_invariants-419a0647f49678b4: tests/prop_invariants.rs

tests/prop_invariants.rs:
