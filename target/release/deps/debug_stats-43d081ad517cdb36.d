/root/repo/target/release/deps/debug_stats-43d081ad517cdb36.d: crates/experiments/src/bin/debug_stats.rs Cargo.toml

/root/repo/target/release/deps/libdebug_stats-43d081ad517cdb36.rmeta: crates/experiments/src/bin/debug_stats.rs Cargo.toml

crates/experiments/src/bin/debug_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
