/root/repo/target/release/deps/hasp_experiments-13a369a615d14c3c.d: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

/root/repo/target/release/deps/hasp_experiments-13a369a615d14c3c: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

crates/experiments/src/lib.rs:
crates/experiments/src/adaptive.rs:
crates/experiments/src/faults.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/suite.rs:
