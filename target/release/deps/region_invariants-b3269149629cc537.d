/root/repo/target/release/deps/region_invariants-b3269149629cc537.d: tests/region_invariants.rs Cargo.toml

/root/repo/target/release/deps/libregion_invariants-b3269149629cc537.rmeta: tests/region_invariants.rs Cargo.toml

tests/region_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
