/root/repo/target/release/deps/debug_passes-bac382754ffe6035.d: crates/experiments/src/bin/debug_passes.rs

/root/repo/target/release/deps/debug_passes-bac382754ffe6035: crates/experiments/src/bin/debug_passes.rs

crates/experiments/src/bin/debug_passes.rs:
