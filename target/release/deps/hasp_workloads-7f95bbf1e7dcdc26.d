/root/repo/target/release/deps/hasp_workloads-7f95bbf1e7dcdc26.d: crates/workloads/src/lib.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/classlib.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jython.rs crates/workloads/src/pmd.rs crates/workloads/src/synthetic.rs crates/workloads/src/workload.rs crates/workloads/src/xalan.rs Cargo.toml

/root/repo/target/release/deps/libhasp_workloads-7f95bbf1e7dcdc26.rmeta: crates/workloads/src/lib.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/classlib.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jython.rs crates/workloads/src/pmd.rs crates/workloads/src/synthetic.rs crates/workloads/src/workload.rs crates/workloads/src/xalan.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/antlr.rs:
crates/workloads/src/bloat.rs:
crates/workloads/src/classlib.rs:
crates/workloads/src/fop.rs:
crates/workloads/src/hsqldb.rs:
crates/workloads/src/jython.rs:
crates/workloads/src/pmd.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/workload.rs:
crates/workloads/src/xalan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
