/root/repo/target/release/deps/prop_analyses-2adf153003dc727a.d: tests/prop_analyses.rs

/root/repo/target/release/deps/prop_analyses-2adf153003dc727a: tests/prop_analyses.rs

tests/prop_analyses.rs:
