/root/repo/target/release/deps/determinism-e2e40d4b830b8d10.d: crates/experiments/tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-e2e40d4b830b8d10.rmeta: crates/experiments/tests/determinism.rs Cargo.toml

crates/experiments/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
