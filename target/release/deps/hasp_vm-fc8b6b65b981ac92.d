/root/repo/target/release/deps/hasp_vm-fc8b6b65b981ac92.d: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs Cargo.toml

/root/repo/target/release/deps/libhasp_vm-fc8b6b65b981ac92.rmeta: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/builder.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/class.rs:
crates/vm/src/env.rs:
crates/vm/src/error.rs:
crates/vm/src/heap.rs:
crates/vm/src/interp.rs:
crates/vm/src/profile.rs:
crates/vm/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
