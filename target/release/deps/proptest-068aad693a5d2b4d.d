/root/repo/target/release/deps/proptest-068aad693a5d2b4d.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-068aad693a5d2b4d: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
