/root/repo/target/release/deps/proptest-d47c72186a53c49b.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d47c72186a53c49b.rlib: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d47c72186a53c49b.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
