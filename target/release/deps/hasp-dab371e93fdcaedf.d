/root/repo/target/release/deps/hasp-dab371e93fdcaedf.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libhasp-dab371e93fdcaedf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
