/root/repo/target/release/deps/debug_stats-4e7d917ec639d6ab.d: crates/experiments/src/bin/debug_stats.rs

/root/repo/target/release/deps/debug_stats-4e7d917ec639d6ab: crates/experiments/src/bin/debug_stats.rs

crates/experiments/src/bin/debug_stats.rs:
