/root/repo/target/release/deps/workload_smoke-2defdab9f398f7e0.d: tests/workload_smoke.rs Cargo.toml

/root/repo/target/release/deps/libworkload_smoke-2defdab9f398f7e0.rmeta: tests/workload_smoke.rs Cargo.toml

tests/workload_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
