/root/repo/target/release/deps/experiments-6af7abc58590bb62.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/release/deps/libexperiments-6af7abc58590bb62.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
