/root/repo/target/release/deps/governor-e278cdbffd4ec2b0.d: crates/experiments/tests/governor.rs

/root/repo/target/release/deps/governor-e278cdbffd4ec2b0: crates/experiments/tests/governor.rs

crates/experiments/tests/governor.rs:
