/root/repo/target/release/deps/debug_passes-b036a3cb74286321.d: crates/experiments/src/bin/debug_passes.rs Cargo.toml

/root/repo/target/release/deps/libdebug_passes-b036a3cb74286321.rmeta: crates/experiments/src/bin/debug_passes.rs Cargo.toml

crates/experiments/src/bin/debug_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
