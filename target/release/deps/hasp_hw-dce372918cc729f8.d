/root/repo/target/release/deps/hasp_hw-dce372918cc729f8.d: crates/hw/src/lib.rs crates/hw/src/bpred.rs crates/hw/src/cache.rs crates/hw/src/config.rs crates/hw/src/fault.rs crates/hw/src/lineset.rs crates/hw/src/lower.rs crates/hw/src/machine.rs crates/hw/src/stats.rs crates/hw/src/uop.rs

/root/repo/target/release/deps/libhasp_hw-dce372918cc729f8.rlib: crates/hw/src/lib.rs crates/hw/src/bpred.rs crates/hw/src/cache.rs crates/hw/src/config.rs crates/hw/src/fault.rs crates/hw/src/lineset.rs crates/hw/src/lower.rs crates/hw/src/machine.rs crates/hw/src/stats.rs crates/hw/src/uop.rs

/root/repo/target/release/deps/libhasp_hw-dce372918cc729f8.rmeta: crates/hw/src/lib.rs crates/hw/src/bpred.rs crates/hw/src/cache.rs crates/hw/src/config.rs crates/hw/src/fault.rs crates/hw/src/lineset.rs crates/hw/src/lower.rs crates/hw/src/machine.rs crates/hw/src/stats.rs crates/hw/src/uop.rs

crates/hw/src/lib.rs:
crates/hw/src/bpred.rs:
crates/hw/src/cache.rs:
crates/hw/src/config.rs:
crates/hw/src/fault.rs:
crates/hw/src/lineset.rs:
crates/hw/src/lower.rs:
crates/hw/src/machine.rs:
crates/hw/src/stats.rs:
crates/hw/src/uop.rs:
