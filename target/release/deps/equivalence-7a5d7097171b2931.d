/root/repo/target/release/deps/equivalence-7a5d7097171b2931.d: tests/equivalence.rs Cargo.toml

/root/repo/target/release/deps/libequivalence-7a5d7097171b2931.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
