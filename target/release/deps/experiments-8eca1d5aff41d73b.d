/root/repo/target/release/deps/experiments-8eca1d5aff41d73b.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/experiments-8eca1d5aff41d73b: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
