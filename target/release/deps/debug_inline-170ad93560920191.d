/root/repo/target/release/deps/debug_inline-170ad93560920191.d: crates/experiments/src/bin/debug_inline.rs

/root/repo/target/release/deps/debug_inline-170ad93560920191: crates/experiments/src/bin/debug_inline.rs

crates/experiments/src/bin/debug_inline.rs:
