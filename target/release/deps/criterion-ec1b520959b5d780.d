/root/repo/target/release/deps/criterion-ec1b520959b5d780.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-ec1b520959b5d780: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
