/root/repo/target/release/deps/criterion-2eb9e972e3fcb647.d: third_party/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-2eb9e972e3fcb647.rmeta: third_party/criterion/src/lib.rs Cargo.toml

third_party/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
