/root/repo/target/release/deps/prop_invariants-34eff1c573c12030.d: tests/prop_invariants.rs Cargo.toml

/root/repo/target/release/deps/libprop_invariants-34eff1c573c12030.rmeta: tests/prop_invariants.rs Cargo.toml

tests/prop_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
