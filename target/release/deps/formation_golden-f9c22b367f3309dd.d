/root/repo/target/release/deps/formation_golden-f9c22b367f3309dd.d: tests/formation_golden.rs

/root/repo/target/release/deps/formation_golden-f9c22b367f3309dd: tests/formation_golden.rs

tests/formation_golden.rs:
