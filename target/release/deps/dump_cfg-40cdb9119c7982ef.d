/root/repo/target/release/deps/dump_cfg-40cdb9119c7982ef.d: crates/experiments/src/bin/dump_cfg.rs

/root/repo/target/release/deps/dump_cfg-40cdb9119c7982ef: crates/experiments/src/bin/dump_cfg.rs

crates/experiments/src/bin/dump_cfg.rs:
