/root/repo/target/release/deps/hasp_experiments-c9b9f7294004ffe6.d: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

/root/repo/target/release/deps/libhasp_experiments-c9b9f7294004ffe6.rlib: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

/root/repo/target/release/deps/libhasp_experiments-c9b9f7294004ffe6.rmeta: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

crates/experiments/src/lib.rs:
crates/experiments/src/adaptive.rs:
crates/experiments/src/faults.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/suite.rs:
