/root/repo/target/release/deps/hasp_vm-b7d8684a03a05a18.d: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

/root/repo/target/release/deps/libhasp_vm-b7d8684a03a05a18.rlib: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

/root/repo/target/release/deps/libhasp_vm-b7d8684a03a05a18.rmeta: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/builder.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/class.rs:
crates/vm/src/env.rs:
crates/vm/src/error.rs:
crates/vm/src/heap.rs:
crates/vm/src/interp.rs:
crates/vm/src/profile.rs:
crates/vm/src/value.rs:
