/root/repo/target/release/deps/hasp_bench-4acadccc871825a8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libhasp_bench-4acadccc871825a8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
