/root/repo/target/release/deps/debug_passes-1f65e5a0124d411c.d: crates/experiments/src/bin/debug_passes.rs Cargo.toml

/root/repo/target/release/deps/libdebug_passes-1f65e5a0124d411c.rmeta: crates/experiments/src/bin/debug_passes.rs Cargo.toml

crates/experiments/src/bin/debug_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
