/root/repo/target/release/deps/debug_stats-5a1f1dfb130b6f0f.d: crates/experiments/src/bin/debug_stats.rs

/root/repo/target/release/deps/debug_stats-5a1f1dfb130b6f0f: crates/experiments/src/bin/debug_stats.rs

crates/experiments/src/bin/debug_stats.rs:
