/root/repo/target/release/deps/hasp_ir-7cc7a0e570e9c3de.d: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libhasp_ir-7cc7a0e570e9c3de.rlib: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libhasp_ir-7cc7a0e570e9c3de.rmeta: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/dom.rs:
crates/ir/src/dot.rs:
crates/ir/src/func.rs:
crates/ir/src/instr.rs:
crates/ir/src/liveness.rs:
crates/ir/src/loops.rs:
crates/ir/src/ssa.rs:
crates/ir/src/ssa_repair.rs:
crates/ir/src/translate.rs:
crates/ir/src/verify.rs:
