/root/repo/target/release/deps/hasp-71dec6facadcf6d9.d: src/lib.rs

/root/repo/target/release/deps/libhasp-71dec6facadcf6d9.rlib: src/lib.rs

/root/repo/target/release/deps/libhasp-71dec6facadcf6d9.rmeta: src/lib.rs

src/lib.rs:
