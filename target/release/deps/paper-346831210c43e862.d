/root/repo/target/release/deps/paper-346831210c43e862.d: crates/bench/benches/paper.rs

/root/repo/target/release/deps/paper-346831210c43e862: crates/bench/benches/paper.rs

crates/bench/benches/paper.rs:
