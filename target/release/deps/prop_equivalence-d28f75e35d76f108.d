/root/repo/target/release/deps/prop_equivalence-d28f75e35d76f108.d: tests/prop_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libprop_equivalence-d28f75e35d76f108.rmeta: tests/prop_equivalence.rs Cargo.toml

tests/prop_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
