/root/repo/target/release/deps/hasp_experiments-0ca7a41bcd9149bb.d: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs Cargo.toml

/root/repo/target/release/deps/libhasp_experiments-0ca7a41bcd9149bb.rmeta: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/adaptive.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
