/root/repo/target/release/deps/ablations-69147718cd4684ec.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-69147718cd4684ec: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
