/root/repo/target/release/deps/hasp-b563005bd488f124.d: src/lib.rs

/root/repo/target/release/deps/hasp-b563005bd488f124: src/lib.rs

src/lib.rs:
