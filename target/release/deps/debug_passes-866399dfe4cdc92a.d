/root/repo/target/release/deps/debug_passes-866399dfe4cdc92a.d: crates/experiments/src/bin/debug_passes.rs

/root/repo/target/release/deps/debug_passes-866399dfe4cdc92a: crates/experiments/src/bin/debug_passes.rs

crates/experiments/src/bin/debug_passes.rs:
