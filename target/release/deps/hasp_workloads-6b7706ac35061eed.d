/root/repo/target/release/deps/hasp_workloads-6b7706ac35061eed.d: crates/workloads/src/lib.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/classlib.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jython.rs crates/workloads/src/pmd.rs crates/workloads/src/synthetic.rs crates/workloads/src/workload.rs crates/workloads/src/xalan.rs

/root/repo/target/release/deps/libhasp_workloads-6b7706ac35061eed.rlib: crates/workloads/src/lib.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/classlib.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jython.rs crates/workloads/src/pmd.rs crates/workloads/src/synthetic.rs crates/workloads/src/workload.rs crates/workloads/src/xalan.rs

/root/repo/target/release/deps/libhasp_workloads-6b7706ac35061eed.rmeta: crates/workloads/src/lib.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/classlib.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jython.rs crates/workloads/src/pmd.rs crates/workloads/src/synthetic.rs crates/workloads/src/workload.rs crates/workloads/src/xalan.rs

crates/workloads/src/lib.rs:
crates/workloads/src/antlr.rs:
crates/workloads/src/bloat.rs:
crates/workloads/src/classlib.rs:
crates/workloads/src/fop.rs:
crates/workloads/src/hsqldb.rs:
crates/workloads/src/jython.rs:
crates/workloads/src/pmd.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/workload.rs:
crates/workloads/src/xalan.rs:
