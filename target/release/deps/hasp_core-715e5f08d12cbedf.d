/root/repo/target/release/deps/hasp_core-715e5f08d12cbedf.d: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libhasp_core-715e5f08d12cbedf.rmeta: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/boundaries.rs:
crates/core/src/cold.rs:
crates/core/src/config.rs:
crates/core/src/form.rs:
crates/core/src/normalize.rs:
crates/core/src/partition.rs:
crates/core/src/replicate.rs:
crates/core/src/site.rs:
crates/core/src/stats.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
