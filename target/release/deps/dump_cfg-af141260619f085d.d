/root/repo/target/release/deps/dump_cfg-af141260619f085d.d: crates/experiments/src/bin/dump_cfg.rs

/root/repo/target/release/deps/dump_cfg-af141260619f085d: crates/experiments/src/bin/dump_cfg.rs

crates/experiments/src/bin/dump_cfg.rs:
