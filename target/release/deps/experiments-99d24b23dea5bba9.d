/root/repo/target/release/deps/experiments-99d24b23dea5bba9.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/experiments-99d24b23dea5bba9: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
