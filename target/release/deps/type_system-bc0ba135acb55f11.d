/root/repo/target/release/deps/type_system-bc0ba135acb55f11.d: tests/type_system.rs

/root/repo/target/release/deps/type_system-bc0ba135acb55f11: tests/type_system.rs

tests/type_system.rs:
