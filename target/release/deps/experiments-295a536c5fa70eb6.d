/root/repo/target/release/deps/experiments-295a536c5fa70eb6.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/release/deps/libexperiments-295a536c5fa70eb6.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
