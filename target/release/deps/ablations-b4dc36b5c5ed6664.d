/root/repo/target/release/deps/ablations-b4dc36b5c5ed6664.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-b4dc36b5c5ed6664.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
