/root/repo/target/release/deps/hasp_bench-15748df959b93d15.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhasp_bench-15748df959b93d15.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhasp_bench-15748df959b93d15.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
