/root/repo/target/release/deps/hasp_opt-0b8faab61f0eb74f.d: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs

/root/repo/target/release/deps/libhasp_opt-0b8faab61f0eb74f.rlib: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs

/root/repo/target/release/deps/libhasp_opt-0b8faab61f0eb74f.rmeta: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs

crates/opt/src/lib.rs:
crates/opt/src/checkelim.rs:
crates/opt/src/constprop.rs:
crates/opt/src/dce.rs:
crates/opt/src/gvn.rs:
crates/opt/src/inline.rs:
crates/opt/src/pipeline.rs:
crates/opt/src/safepoint.rs:
crates/opt/src/simplify.rs:
crates/opt/src/sle.rs:
crates/opt/src/superblock.rs:
crates/opt/src/unroll.rs:
