/root/repo/target/release/deps/region_invariants-85cf2846973ca40e.d: tests/region_invariants.rs

/root/repo/target/release/deps/region_invariants-85cf2846973ca40e: tests/region_invariants.rs

tests/region_invariants.rs:
