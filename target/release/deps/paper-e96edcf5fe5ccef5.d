/root/repo/target/release/deps/paper-e96edcf5fe5ccef5.d: crates/bench/benches/paper.rs Cargo.toml

/root/repo/target/release/deps/libpaper-e96edcf5fe5ccef5.rmeta: crates/bench/benches/paper.rs Cargo.toml

crates/bench/benches/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
