/root/repo/target/release/deps/hasp_core-ddb8eb4c7cd1fb92.d: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

/root/repo/target/release/deps/libhasp_core-ddb8eb4c7cd1fb92.rlib: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

/root/repo/target/release/deps/libhasp_core-ddb8eb4c7cd1fb92.rmeta: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/boundaries.rs:
crates/core/src/cold.rs:
crates/core/src/config.rs:
crates/core/src/form.rs:
crates/core/src/normalize.rs:
crates/core/src/partition.rs:
crates/core/src/replicate.rs:
crates/core/src/site.rs:
crates/core/src/stats.rs:
crates/core/src/trace.rs:
