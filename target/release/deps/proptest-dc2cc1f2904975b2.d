/root/repo/target/release/deps/proptest-dc2cc1f2904975b2.d: third_party/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-dc2cc1f2904975b2.rmeta: third_party/proptest/src/lib.rs Cargo.toml

third_party/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
