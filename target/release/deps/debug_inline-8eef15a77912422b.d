/root/repo/target/release/deps/debug_inline-8eef15a77912422b.d: crates/experiments/src/bin/debug_inline.rs Cargo.toml

/root/repo/target/release/deps/libdebug_inline-8eef15a77912422b.rmeta: crates/experiments/src/bin/debug_inline.rs Cargo.toml

crates/experiments/src/bin/debug_inline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
