/root/repo/target/release/deps/proptest-65946cb746a5d43c.d: third_party/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-65946cb746a5d43c.rmeta: third_party/proptest/src/lib.rs Cargo.toml

third_party/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
