/root/repo/target/release/deps/debug_inline-0d2285405d991480.d: crates/experiments/src/bin/debug_inline.rs

/root/repo/target/release/deps/debug_inline-0d2285405d991480: crates/experiments/src/bin/debug_inline.rs

crates/experiments/src/bin/debug_inline.rs:
