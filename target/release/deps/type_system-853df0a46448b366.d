/root/repo/target/release/deps/type_system-853df0a46448b366.d: tests/type_system.rs Cargo.toml

/root/repo/target/release/deps/libtype_system-853df0a46448b366.rmeta: tests/type_system.rs Cargo.toml

tests/type_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
