/root/repo/target/release/examples/adaptive-22f50a9fa3cef5e8.d: examples/adaptive.rs Cargo.toml

/root/repo/target/release/examples/libadaptive-22f50a9fa3cef5e8.rmeta: examples/adaptive.rs Cargo.toml

examples/adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
