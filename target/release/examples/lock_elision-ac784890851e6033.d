/root/repo/target/release/examples/lock_elision-ac784890851e6033.d: examples/lock_elision.rs

/root/repo/target/release/examples/lock_elision-ac784890851e6033: examples/lock_elision.rs

examples/lock_elision.rs:
