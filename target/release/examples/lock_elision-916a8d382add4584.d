/root/repo/target/release/examples/lock_elision-916a8d382add4584.d: examples/lock_elision.rs Cargo.toml

/root/repo/target/release/examples/liblock_elision-916a8d382add4584.rmeta: examples/lock_elision.rs Cargo.toml

examples/lock_elision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
