/root/repo/target/release/examples/adaptive-b606bb4b7372e5ad.d: examples/adaptive.rs

/root/repo/target/release/examples/adaptive-b606bb4b7372e5ad: examples/adaptive.rs

examples/adaptive.rs:
