/root/repo/target/release/examples/addelement-e8e4a832990cac64.d: examples/addelement.rs Cargo.toml

/root/repo/target/release/examples/libaddelement-e8e4a832990cac64.rmeta: examples/addelement.rs Cargo.toml

examples/addelement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
