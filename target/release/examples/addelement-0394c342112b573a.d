/root/repo/target/release/examples/addelement-0394c342112b573a.d: examples/addelement.rs

/root/repo/target/release/examples/addelement-0394c342112b573a: examples/addelement.rs

examples/addelement.rs:
