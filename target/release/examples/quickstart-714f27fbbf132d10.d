/root/repo/target/release/examples/quickstart-714f27fbbf132d10.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-714f27fbbf132d10.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
