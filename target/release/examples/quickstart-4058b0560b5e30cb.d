/root/repo/target/release/examples/quickstart-4058b0560b5e30cb.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4058b0560b5e30cb: examples/quickstart.rs

examples/quickstart.rs:
