/root/repo/target/debug/deps/debug_inline-391c8409b32cdd84.d: crates/experiments/src/bin/debug_inline.rs

/root/repo/target/debug/deps/debug_inline-391c8409b32cdd84: crates/experiments/src/bin/debug_inline.rs

crates/experiments/src/bin/debug_inline.rs:
