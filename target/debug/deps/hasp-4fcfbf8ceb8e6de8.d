/root/repo/target/debug/deps/hasp-4fcfbf8ceb8e6de8.d: src/lib.rs

/root/repo/target/debug/deps/hasp-4fcfbf8ceb8e6de8: src/lib.rs

src/lib.rs:
