/root/repo/target/debug/deps/type_system-a150f7cc9407281e.d: tests/type_system.rs Cargo.toml

/root/repo/target/debug/deps/libtype_system-a150f7cc9407281e.rmeta: tests/type_system.rs Cargo.toml

tests/type_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
