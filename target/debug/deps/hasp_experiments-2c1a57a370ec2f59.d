/root/repo/target/debug/deps/hasp_experiments-2c1a57a370ec2f59.d: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

/root/repo/target/debug/deps/libhasp_experiments-2c1a57a370ec2f59.rlib: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

/root/repo/target/debug/deps/libhasp_experiments-2c1a57a370ec2f59.rmeta: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

crates/experiments/src/lib.rs:
crates/experiments/src/adaptive.rs:
crates/experiments/src/faults.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/suite.rs:
