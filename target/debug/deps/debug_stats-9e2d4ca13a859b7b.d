/root/repo/target/debug/deps/debug_stats-9e2d4ca13a859b7b.d: crates/experiments/src/bin/debug_stats.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_stats-9e2d4ca13a859b7b.rmeta: crates/experiments/src/bin/debug_stats.rs Cargo.toml

crates/experiments/src/bin/debug_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
