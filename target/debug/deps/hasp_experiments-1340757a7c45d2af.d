/root/repo/target/debug/deps/hasp_experiments-1340757a7c45d2af.d: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_experiments-1340757a7c45d2af.rmeta: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/adaptive.rs:
crates/experiments/src/faults.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
