/root/repo/target/debug/deps/equivalence-10796c14e36b917d.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-10796c14e36b917d.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
