/root/repo/target/debug/deps/hasp_vm-4ddf0eada91198d3.d: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/hasp_vm-4ddf0eada91198d3: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/builder.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/class.rs:
crates/vm/src/env.rs:
crates/vm/src/error.rs:
crates/vm/src/heap.rs:
crates/vm/src/interp.rs:
crates/vm/src/profile.rs:
crates/vm/src/value.rs:
