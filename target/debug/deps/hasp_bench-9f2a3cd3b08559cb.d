/root/repo/target/debug/deps/hasp_bench-9f2a3cd3b08559cb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_bench-9f2a3cd3b08559cb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
