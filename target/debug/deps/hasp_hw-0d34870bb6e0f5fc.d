/root/repo/target/debug/deps/hasp_hw-0d34870bb6e0f5fc.d: crates/hw/src/lib.rs crates/hw/src/bpred.rs crates/hw/src/cache.rs crates/hw/src/config.rs crates/hw/src/fault.rs crates/hw/src/lineset.rs crates/hw/src/lower.rs crates/hw/src/machine.rs crates/hw/src/stats.rs crates/hw/src/uop.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_hw-0d34870bb6e0f5fc.rmeta: crates/hw/src/lib.rs crates/hw/src/bpred.rs crates/hw/src/cache.rs crates/hw/src/config.rs crates/hw/src/fault.rs crates/hw/src/lineset.rs crates/hw/src/lower.rs crates/hw/src/machine.rs crates/hw/src/stats.rs crates/hw/src/uop.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/bpred.rs:
crates/hw/src/cache.rs:
crates/hw/src/config.rs:
crates/hw/src/fault.rs:
crates/hw/src/lineset.rs:
crates/hw/src/lower.rs:
crates/hw/src/machine.rs:
crates/hw/src/stats.rs:
crates/hw/src/uop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
