/root/repo/target/debug/deps/dump_cfg-73018462783abbaf.d: crates/experiments/src/bin/dump_cfg.rs Cargo.toml

/root/repo/target/debug/deps/libdump_cfg-73018462783abbaf.rmeta: crates/experiments/src/bin/dump_cfg.rs Cargo.toml

crates/experiments/src/bin/dump_cfg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
