/root/repo/target/debug/deps/prop_hw-0b46065239704e56.d: tests/prop_hw.rs

/root/repo/target/debug/deps/prop_hw-0b46065239704e56: tests/prop_hw.rs

tests/prop_hw.rs:
