/root/repo/target/debug/deps/debug_inline-5910c255996fd946.d: crates/experiments/src/bin/debug_inline.rs

/root/repo/target/debug/deps/debug_inline-5910c255996fd946: crates/experiments/src/bin/debug_inline.rs

crates/experiments/src/bin/debug_inline.rs:
