/root/repo/target/debug/deps/hasp-aa3c88564f8e0a07.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhasp-aa3c88564f8e0a07.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
