/root/repo/target/debug/deps/type_system-e7a5ed7aa963e888.d: tests/type_system.rs

/root/repo/target/debug/deps/type_system-e7a5ed7aa963e888: tests/type_system.rs

tests/type_system.rs:
