/root/repo/target/debug/deps/debug_stats-ddec2e6739ef4055.d: crates/experiments/src/bin/debug_stats.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_stats-ddec2e6739ef4055.rmeta: crates/experiments/src/bin/debug_stats.rs Cargo.toml

crates/experiments/src/bin/debug_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
