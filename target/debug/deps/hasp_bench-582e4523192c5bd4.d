/root/repo/target/debug/deps/hasp_bench-582e4523192c5bd4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_bench-582e4523192c5bd4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
