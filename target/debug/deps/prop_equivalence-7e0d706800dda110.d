/root/repo/target/debug/deps/prop_equivalence-7e0d706800dda110.d: tests/prop_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libprop_equivalence-7e0d706800dda110.rmeta: tests/prop_equivalence.rs Cargo.toml

tests/prop_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
