/root/repo/target/debug/deps/governor-feb75152fbe3899a.d: crates/experiments/tests/governor.rs

/root/repo/target/debug/deps/governor-feb75152fbe3899a: crates/experiments/tests/governor.rs

crates/experiments/tests/governor.rs:
