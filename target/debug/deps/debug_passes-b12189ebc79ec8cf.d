/root/repo/target/debug/deps/debug_passes-b12189ebc79ec8cf.d: crates/experiments/src/bin/debug_passes.rs

/root/repo/target/debug/deps/debug_passes-b12189ebc79ec8cf: crates/experiments/src/bin/debug_passes.rs

crates/experiments/src/bin/debug_passes.rs:
