/root/repo/target/debug/deps/prop_invariants-a6fbf1fdc33d68ab.d: tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-a6fbf1fdc33d68ab: tests/prop_invariants.rs

tests/prop_invariants.rs:
