/root/repo/target/debug/deps/hasp_bench-2fe037912d3dcb55.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hasp_bench-2fe037912d3dcb55: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
