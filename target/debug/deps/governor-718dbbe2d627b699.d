/root/repo/target/debug/deps/governor-718dbbe2d627b699.d: crates/experiments/tests/governor.rs Cargo.toml

/root/repo/target/debug/deps/libgovernor-718dbbe2d627b699.rmeta: crates/experiments/tests/governor.rs Cargo.toml

crates/experiments/tests/governor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
