/root/repo/target/debug/deps/equivalence-9b8c818eac5a009f.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-9b8c818eac5a009f: tests/equivalence.rs

tests/equivalence.rs:
