/root/repo/target/debug/deps/prop_analyses-296c6d0ec1be6a17.d: tests/prop_analyses.rs Cargo.toml

/root/repo/target/debug/deps/libprop_analyses-296c6d0ec1be6a17.rmeta: tests/prop_analyses.rs Cargo.toml

tests/prop_analyses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
