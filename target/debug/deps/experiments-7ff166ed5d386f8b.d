/root/repo/target/debug/deps/experiments-7ff166ed5d386f8b.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/experiments-7ff166ed5d386f8b: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
