/root/repo/target/debug/deps/dump_cfg-ed594e1214431244.d: crates/experiments/src/bin/dump_cfg.rs

/root/repo/target/debug/deps/dump_cfg-ed594e1214431244: crates/experiments/src/bin/dump_cfg.rs

crates/experiments/src/bin/dump_cfg.rs:
