/root/repo/target/debug/deps/hasp-30ee6d5992c36046.d: src/lib.rs

/root/repo/target/debug/deps/libhasp-30ee6d5992c36046.rlib: src/lib.rs

/root/repo/target/debug/deps/libhasp-30ee6d5992c36046.rmeta: src/lib.rs

src/lib.rs:
