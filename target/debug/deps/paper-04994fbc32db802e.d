/root/repo/target/debug/deps/paper-04994fbc32db802e.d: crates/bench/benches/paper.rs Cargo.toml

/root/repo/target/debug/deps/libpaper-04994fbc32db802e.rmeta: crates/bench/benches/paper.rs Cargo.toml

crates/bench/benches/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
