/root/repo/target/debug/deps/hasp_ir-c115ff849e0f799c.d: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/libhasp_ir-c115ff849e0f799c.rlib: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/libhasp_ir-c115ff849e0f799c.rmeta: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/dom.rs:
crates/ir/src/dot.rs:
crates/ir/src/func.rs:
crates/ir/src/instr.rs:
crates/ir/src/liveness.rs:
crates/ir/src/loops.rs:
crates/ir/src/ssa.rs:
crates/ir/src/ssa_repair.rs:
crates/ir/src/translate.rs:
crates/ir/src/verify.rs:
