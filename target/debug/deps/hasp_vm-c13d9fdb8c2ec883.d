/root/repo/target/debug/deps/hasp_vm-c13d9fdb8c2ec883.d: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_vm-c13d9fdb8c2ec883.rmeta: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/builder.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/class.rs:
crates/vm/src/env.rs:
crates/vm/src/error.rs:
crates/vm/src/heap.rs:
crates/vm/src/interp.rs:
crates/vm/src/profile.rs:
crates/vm/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
