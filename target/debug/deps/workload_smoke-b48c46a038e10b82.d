/root/repo/target/debug/deps/workload_smoke-b48c46a038e10b82.d: tests/workload_smoke.rs

/root/repo/target/debug/deps/workload_smoke-b48c46a038e10b82: tests/workload_smoke.rs

tests/workload_smoke.rs:
