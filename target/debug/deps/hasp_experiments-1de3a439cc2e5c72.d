/root/repo/target/debug/deps/hasp_experiments-1de3a439cc2e5c72.d: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

/root/repo/target/debug/deps/hasp_experiments-1de3a439cc2e5c72: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs

crates/experiments/src/lib.rs:
crates/experiments/src/adaptive.rs:
crates/experiments/src/faults.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/suite.rs:
