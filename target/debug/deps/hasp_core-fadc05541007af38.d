/root/repo/target/debug/deps/hasp_core-fadc05541007af38.d: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_core-fadc05541007af38.rmeta: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/boundaries.rs:
crates/core/src/cold.rs:
crates/core/src/config.rs:
crates/core/src/form.rs:
crates/core/src/normalize.rs:
crates/core/src/partition.rs:
crates/core/src/replicate.rs:
crates/core/src/site.rs:
crates/core/src/stats.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
