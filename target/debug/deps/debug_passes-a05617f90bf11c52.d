/root/repo/target/debug/deps/debug_passes-a05617f90bf11c52.d: crates/experiments/src/bin/debug_passes.rs

/root/repo/target/debug/deps/debug_passes-a05617f90bf11c52: crates/experiments/src/bin/debug_passes.rs

crates/experiments/src/bin/debug_passes.rs:
