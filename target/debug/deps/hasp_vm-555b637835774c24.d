/root/repo/target/debug/deps/hasp_vm-555b637835774c24.d: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libhasp_vm-555b637835774c24.rlib: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libhasp_vm-555b637835774c24.rmeta: crates/vm/src/lib.rs crates/vm/src/builder.rs crates/vm/src/bytecode.rs crates/vm/src/class.rs crates/vm/src/env.rs crates/vm/src/error.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/profile.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/builder.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/class.rs:
crates/vm/src/env.rs:
crates/vm/src/error.rs:
crates/vm/src/heap.rs:
crates/vm/src/interp.rs:
crates/vm/src/profile.rs:
crates/vm/src/value.rs:
