/root/repo/target/debug/deps/formation_golden-eccead70299102d5.d: tests/formation_golden.rs

/root/repo/target/debug/deps/formation_golden-eccead70299102d5: tests/formation_golden.rs

tests/formation_golden.rs:
