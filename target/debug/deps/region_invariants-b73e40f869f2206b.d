/root/repo/target/debug/deps/region_invariants-b73e40f869f2206b.d: tests/region_invariants.rs

/root/repo/target/debug/deps/region_invariants-b73e40f869f2206b: tests/region_invariants.rs

tests/region_invariants.rs:
