/root/repo/target/debug/deps/hasp-5f01a37c6d2f0e93.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhasp-5f01a37c6d2f0e93.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
