/root/repo/target/debug/deps/determinism-f821869c5c9fe6ca.d: crates/experiments/tests/determinism.rs

/root/repo/target/debug/deps/determinism-f821869c5c9fe6ca: crates/experiments/tests/determinism.rs

crates/experiments/tests/determinism.rs:
