/root/repo/target/debug/deps/prop_equivalence-51749bdafd4c4672.d: tests/prop_equivalence.rs

/root/repo/target/debug/deps/prop_equivalence-51749bdafd4c4672: tests/prop_equivalence.rs

tests/prop_equivalence.rs:
