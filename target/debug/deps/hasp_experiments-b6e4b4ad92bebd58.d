/root/repo/target/debug/deps/hasp_experiments-b6e4b4ad92bebd58.d: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_experiments-b6e4b4ad92bebd58.rmeta: crates/experiments/src/lib.rs crates/experiments/src/adaptive.rs crates/experiments/src/faults.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/suite.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/adaptive.rs:
crates/experiments/src/faults.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
