/root/repo/target/debug/deps/hasp_workloads-e0370e635701cda2.d: crates/workloads/src/lib.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/classlib.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jython.rs crates/workloads/src/pmd.rs crates/workloads/src/synthetic.rs crates/workloads/src/workload.rs crates/workloads/src/xalan.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_workloads-e0370e635701cda2.rmeta: crates/workloads/src/lib.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/classlib.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jython.rs crates/workloads/src/pmd.rs crates/workloads/src/synthetic.rs crates/workloads/src/workload.rs crates/workloads/src/xalan.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/antlr.rs:
crates/workloads/src/bloat.rs:
crates/workloads/src/classlib.rs:
crates/workloads/src/fop.rs:
crates/workloads/src/hsqldb.rs:
crates/workloads/src/jython.rs:
crates/workloads/src/pmd.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/workload.rs:
crates/workloads/src/xalan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
