/root/repo/target/debug/deps/prop_analyses-342af5ed487b4205.d: tests/prop_analyses.rs

/root/repo/target/debug/deps/prop_analyses-342af5ed487b4205: tests/prop_analyses.rs

tests/prop_analyses.rs:
