/root/repo/target/debug/deps/hasp_opt-7e3c2981cdbcee4d.d: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs

/root/repo/target/debug/deps/hasp_opt-7e3c2981cdbcee4d: crates/opt/src/lib.rs crates/opt/src/checkelim.rs crates/opt/src/constprop.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/inline.rs crates/opt/src/pipeline.rs crates/opt/src/safepoint.rs crates/opt/src/simplify.rs crates/opt/src/sle.rs crates/opt/src/superblock.rs crates/opt/src/unroll.rs

crates/opt/src/lib.rs:
crates/opt/src/checkelim.rs:
crates/opt/src/constprop.rs:
crates/opt/src/dce.rs:
crates/opt/src/gvn.rs:
crates/opt/src/inline.rs:
crates/opt/src/pipeline.rs:
crates/opt/src/safepoint.rs:
crates/opt/src/simplify.rs:
crates/opt/src/sle.rs:
crates/opt/src/superblock.rs:
crates/opt/src/unroll.rs:
