/root/repo/target/debug/deps/hasp_ir-5b7dd9fb11cf6cb4.d: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libhasp_ir-5b7dd9fb11cf6cb4.rmeta: crates/ir/src/lib.rs crates/ir/src/dom.rs crates/ir/src/dot.rs crates/ir/src/func.rs crates/ir/src/instr.rs crates/ir/src/liveness.rs crates/ir/src/loops.rs crates/ir/src/ssa.rs crates/ir/src/ssa_repair.rs crates/ir/src/translate.rs crates/ir/src/verify.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/dom.rs:
crates/ir/src/dot.rs:
crates/ir/src/func.rs:
crates/ir/src/instr.rs:
crates/ir/src/liveness.rs:
crates/ir/src/loops.rs:
crates/ir/src/ssa.rs:
crates/ir/src/ssa_repair.rs:
crates/ir/src/translate.rs:
crates/ir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
