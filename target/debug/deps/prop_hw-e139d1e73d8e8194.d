/root/repo/target/debug/deps/prop_hw-e139d1e73d8e8194.d: tests/prop_hw.rs Cargo.toml

/root/repo/target/debug/deps/libprop_hw-e139d1e73d8e8194.rmeta: tests/prop_hw.rs Cargo.toml

tests/prop_hw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
