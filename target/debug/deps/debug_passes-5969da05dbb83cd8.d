/root/repo/target/debug/deps/debug_passes-5969da05dbb83cd8.d: crates/experiments/src/bin/debug_passes.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_passes-5969da05dbb83cd8.rmeta: crates/experiments/src/bin/debug_passes.rs Cargo.toml

crates/experiments/src/bin/debug_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
