/root/repo/target/debug/deps/region_invariants-c717c3b03652f8c3.d: tests/region_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libregion_invariants-c717c3b03652f8c3.rmeta: tests/region_invariants.rs Cargo.toml

tests/region_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
