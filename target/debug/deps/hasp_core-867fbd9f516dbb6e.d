/root/repo/target/debug/deps/hasp_core-867fbd9f516dbb6e.d: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libhasp_core-867fbd9f516dbb6e.rlib: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libhasp_core-867fbd9f516dbb6e.rmeta: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/boundaries.rs:
crates/core/src/cold.rs:
crates/core/src/config.rs:
crates/core/src/form.rs:
crates/core/src/normalize.rs:
crates/core/src/partition.rs:
crates/core/src/replicate.rs:
crates/core/src/site.rs:
crates/core/src/stats.rs:
crates/core/src/trace.rs:
