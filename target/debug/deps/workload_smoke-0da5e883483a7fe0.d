/root/repo/target/debug/deps/workload_smoke-0da5e883483a7fe0.d: tests/workload_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_smoke-0da5e883483a7fe0.rmeta: tests/workload_smoke.rs Cargo.toml

tests/workload_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
