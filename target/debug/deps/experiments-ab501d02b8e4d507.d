/root/repo/target/debug/deps/experiments-ab501d02b8e4d507.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/experiments-ab501d02b8e4d507: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
