/root/repo/target/debug/deps/hasp_bench-3177709fa3107cbb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhasp_bench-3177709fa3107cbb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhasp_bench-3177709fa3107cbb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
