/root/repo/target/debug/deps/dump_cfg-cdd4928f148d54fe.d: crates/experiments/src/bin/dump_cfg.rs

/root/repo/target/debug/deps/dump_cfg-cdd4928f148d54fe: crates/experiments/src/bin/dump_cfg.rs

crates/experiments/src/bin/dump_cfg.rs:
