/root/repo/target/debug/deps/debug_stats-b09eaf266bcd0767.d: crates/experiments/src/bin/debug_stats.rs

/root/repo/target/debug/deps/debug_stats-b09eaf266bcd0767: crates/experiments/src/bin/debug_stats.rs

crates/experiments/src/bin/debug_stats.rs:
