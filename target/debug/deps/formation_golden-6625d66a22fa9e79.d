/root/repo/target/debug/deps/formation_golden-6625d66a22fa9e79.d: tests/formation_golden.rs Cargo.toml

/root/repo/target/debug/deps/libformation_golden-6625d66a22fa9e79.rmeta: tests/formation_golden.rs Cargo.toml

tests/formation_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
