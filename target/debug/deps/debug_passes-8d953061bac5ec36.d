/root/repo/target/debug/deps/debug_passes-8d953061bac5ec36.d: crates/experiments/src/bin/debug_passes.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_passes-8d953061bac5ec36.rmeta: crates/experiments/src/bin/debug_passes.rs Cargo.toml

crates/experiments/src/bin/debug_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
