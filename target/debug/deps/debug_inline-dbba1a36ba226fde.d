/root/repo/target/debug/deps/debug_inline-dbba1a36ba226fde.d: crates/experiments/src/bin/debug_inline.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_inline-dbba1a36ba226fde.rmeta: crates/experiments/src/bin/debug_inline.rs Cargo.toml

crates/experiments/src/bin/debug_inline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
