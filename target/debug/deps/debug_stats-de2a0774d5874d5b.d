/root/repo/target/debug/deps/debug_stats-de2a0774d5874d5b.d: crates/experiments/src/bin/debug_stats.rs

/root/repo/target/debug/deps/debug_stats-de2a0774d5874d5b: crates/experiments/src/bin/debug_stats.rs

crates/experiments/src/bin/debug_stats.rs:
