/root/repo/target/debug/deps/hasp_core-6f5f731e55b817ff.d: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/hasp_core-6f5f731e55b817ff: crates/core/src/lib.rs crates/core/src/boundaries.rs crates/core/src/cold.rs crates/core/src/config.rs crates/core/src/form.rs crates/core/src/normalize.rs crates/core/src/partition.rs crates/core/src/replicate.rs crates/core/src/site.rs crates/core/src/stats.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/boundaries.rs:
crates/core/src/cold.rs:
crates/core/src/config.rs:
crates/core/src/form.rs:
crates/core/src/normalize.rs:
crates/core/src/partition.rs:
crates/core/src/replicate.rs:
crates/core/src/site.rs:
crates/core/src/stats.rs:
crates/core/src/trace.rs:
