/root/repo/target/debug/deps/determinism-0be9634b81b98bcd.d: crates/experiments/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-0be9634b81b98bcd.rmeta: crates/experiments/tests/determinism.rs Cargo.toml

crates/experiments/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
