/root/repo/target/debug/deps/debug_inline-c904ef8f5bd01946.d: crates/experiments/src/bin/debug_inline.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_inline-c904ef8f5bd01946.rmeta: crates/experiments/src/bin/debug_inline.rs Cargo.toml

crates/experiments/src/bin/debug_inline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
