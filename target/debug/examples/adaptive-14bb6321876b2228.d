/root/repo/target/debug/examples/adaptive-14bb6321876b2228.d: examples/adaptive.rs

/root/repo/target/debug/examples/adaptive-14bb6321876b2228: examples/adaptive.rs

examples/adaptive.rs:
