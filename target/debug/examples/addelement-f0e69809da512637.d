/root/repo/target/debug/examples/addelement-f0e69809da512637.d: examples/addelement.rs

/root/repo/target/debug/examples/addelement-f0e69809da512637: examples/addelement.rs

examples/addelement.rs:
