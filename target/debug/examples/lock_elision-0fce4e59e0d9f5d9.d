/root/repo/target/debug/examples/lock_elision-0fce4e59e0d9f5d9.d: examples/lock_elision.rs

/root/repo/target/debug/examples/lock_elision-0fce4e59e0d9f5d9: examples/lock_elision.rs

examples/lock_elision.rs:
