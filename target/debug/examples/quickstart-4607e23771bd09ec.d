/root/repo/target/debug/examples/quickstart-4607e23771bd09ec.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4607e23771bd09ec.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
