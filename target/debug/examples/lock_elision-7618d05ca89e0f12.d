/root/repo/target/debug/examples/lock_elision-7618d05ca89e0f12.d: examples/lock_elision.rs Cargo.toml

/root/repo/target/debug/examples/liblock_elision-7618d05ca89e0f12.rmeta: examples/lock_elision.rs Cargo.toml

examples/lock_elision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
