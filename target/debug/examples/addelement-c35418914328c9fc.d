/root/repo/target/debug/examples/addelement-c35418914328c9fc.d: examples/addelement.rs Cargo.toml

/root/repo/target/debug/examples/libaddelement-c35418914328c9fc.rmeta: examples/addelement.rs Cargo.toml

examples/addelement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
