/root/repo/target/debug/examples/adaptive-057ec802f42d0178.d: examples/adaptive.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive-057ec802f42d0178.rmeta: examples/adaptive.rs Cargo.toml

examples/adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
