/root/repo/target/debug/examples/quickstart-18e231c08a05143d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-18e231c08a05143d: examples/quickstart.rs

examples/quickstart.rs:
