//! # hasp-core — atomic-region formation (the paper's primary contribution)
//!
//! Implements the compiler side of *Hardware Atomicity for Reliable Software
//! Speculation* (Neelakantam et al., ISCA 2007): forming single-entry,
//! non-nested atomic regions around a program's hot paths so that ordinary
//! non-speculative optimization passes perform speculative optimizations,
//! with hardware (see `hasp-hw`) providing all-or-nothing execution and the
//! recovery path.
//!
//! * [`config`] — the paper's parameters (1% cold threshold,
//!   `LOOPPATHTHRESHOLD` = `R` = 200 HIR ops).
//! * [`cold`] — cold-path classification and `HASCALLONWARMPATH`.
//! * [`trace`] — Algorithm 2 (`TRACEDOMINANTPATH`, `LOOPWEIGHT`).
//! * [`partition`] — Equation 1 boundary-subset selection.
//! * [`boundaries`] — Algorithm 1 (`SELECTBOUNDARIES`).
//! * [`replicate`] — Steps 3–4: flowgraph replication, `aregion_begin` /
//!   `aregion_end` insertion, cold-edge → assert conversion.
//! * [`site`] — inline-site records and `UNINLINEMETHOD` (Steps 2 & 5; the
//!   heart of partial inlining).
//! * [`form`] — the whole pipeline.
//! * [`stats`] — static region statistics.

#![warn(missing_docs)]

pub mod boundaries;
pub mod cold;
pub mod config;
pub mod form;
pub mod normalize;
pub mod partition;
pub mod replicate;
pub mod site;
pub mod stats;
pub mod trace;

pub use boundaries::{select_boundaries, BoundarySelection};
pub use config::RegionConfig;
pub use form::{form_atomic_regions, FormationResult};
pub use site::{uninline, InlineBudget, InlineSite, SiteDispatch};
pub use stats::StaticRegionStats;
