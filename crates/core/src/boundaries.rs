//! Algorithm 1: `SELECTBOUNDARIES` — choosing the blocks that become atomic
//! region entries.
//!
//! Three phases, exactly as in the paper:
//! 1. loop headers of "large" loops (long iterations, high trip counts, or a
//!    call reachable along non-cold paths) become per-iteration boundaries;
//! 2. inlined methods containing selected loops or warm calls are un-inlined
//!    (limits code bloat — part of partial inlining);
//! 3. boundaries are placed along acyclic dominant paths, choosing the
//!    candidate subset that minimizes Equation 1.

use std::collections::{BTreeSet, HashSet};

use hasp_ir::{BlockId, DomTree, Func, LoopForest, Term};

use crate::cold::{block_is_cold, has_call_on_warm_path};
use crate::config::RegionConfig;
use crate::normalize::is_call_block;
use crate::partition::{select_boundaries as partition_select, Candidate};
use crate::site::{uninline_checked, InlineSite};
use crate::trace::{loop_weight, trace_dominant_path};

/// The outcome of boundary selection.
#[derive(Debug, Clone)]
pub struct BoundarySelection {
    /// Blocks that will become atomic region entries.
    pub boundaries: BTreeSet<BlockId>,
    /// Indices into the sites vector of methods un-inlined during step 2.
    pub pruned_sites: Vec<usize>,
}

/// Runs `SELECTBOUNDARIES` on `f`, un-inlining pruned sites in place.
pub fn select_boundaries(
    f: &mut Func,
    sites: &[InlineSite],
    cfg: &RegionConfig,
) -> BoundarySelection {
    let mut selected: BTreeSet<BlockId> = BTreeSet::new();

    // ---- Phase 1: loop boundaries (innermost to outermost). ----
    {
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let preds = f.preds();
        let max_freq = f
            .block_ids()
            .iter()
            .map(|b| f.block(*b).freq)
            .max()
            .unwrap_or(0);
        for l in forest.post_order() {
            let header = l.header;
            // Formation is profile-driven: loops that barely execute are not
            // worth speculating on (same 1% hotness rule as acyclic seeds).
            if f.block(header).freq < max_freq / cfg.seed_fraction {
                continue;
            }
            // Entries into the loop = executions of outside->header edges.
            let entries: u64 = preds
                .get(&header)
                .into_iter()
                .flatten()
                .filter(|p| !l.blocks.contains(p))
                .map(|p| f.edge_count(*p, header))
                .sum();
            if entries == 0 {
                continue; // never-entered (cold) loop
            }
            let weight = loop_weight(f, l);
            let path_len = weight as f64 / entries as f64;
            let trip_count = f.block(header).freq as f64 / entries as f64;
            let has_warm_call = has_call_on_warm_path(f, cfg, header, &l.blocks);
            if (path_len >= cfg.loop_path_threshold
                || has_warm_call
                || trip_count > cfg.max_encapsulated_trip_count)
                && !cfg.is_excluded(header)
            {
                selected.insert(header);
            }
        }
    }

    // ---- Phase 2: prune inlined methods containing boundaries/warm calls. ----
    let mut pruned_sites = Vec::new();
    for (i, site) in sites.iter().enumerate() {
        if !site.is_live(f) {
            continue;
        }
        let has_warm_call = has_call_on_warm_path(f, cfg, site.entry, &site.blocks);
        let selected_set: HashSet<BlockId> = selected.iter().copied().collect();
        let has_selected_loop = site.contains_any(&selected_set);
        if (has_warm_call || has_selected_loop) && std::env::var("HASP_TRACE_PRUNE").is_ok() {
            eprintln!(
                "prune candidate {i}: callee {:?} warm_call={has_warm_call} sel_loop={has_selected_loop}",
                site.callee
            );
        }
        if (has_warm_call || has_selected_loop) && uninline_checked(f, site) {
            pruned_sites.push(i);
            // Boundaries inside the removed body are gone.
            selected.retain(|b| !site.blocks.contains(b) || !f.block(*b).dead);
            selected.retain(|b| !f.block(*b).dead);
        }
    }

    // ---- Phase 3: boundaries along acyclic dominant paths. ----
    {
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let preds = f.preds();

        // Candidate-kind blocks: loop pre-header-ish blocks (outside preds of
        // headers) and loop-exit targets.
        let mut structural: HashSet<BlockId> = HashSet::new();
        for l in forest.post_order() {
            for p in preds.get(&l.header).into_iter().flatten() {
                if !l.blocks.contains(p) {
                    structural.insert(*p);
                }
            }
            for t in l.exit_targets(f) {
                structural.insert(t);
            }
        }

        // Trace boundaries: method entry, exits, call blocks, and already
        // selected region boundaries.
        let mut trace_bounds: HashSet<BlockId> = selected.iter().copied().collect();
        trace_bounds.insert(f.entry);
        for b in f.block_ids() {
            if matches!(f.block(b).term, Term::Return(_)) || is_call_block(f, b) {
                trace_bounds.insert(b);
            }
        }

        let mut blocks_by_freq: Vec<BlockId> = f.block_ids();
        blocks_by_freq.sort_by_key(|b| std::cmp::Reverse((f.block(*b).freq, u32::MAX - b.0)));
        let max_freq = blocks_by_freq
            .first()
            .map(|b| f.block(*b).freq)
            .unwrap_or(0);
        if max_freq == 0 {
            return BoundarySelection {
                boundaries: selected,
                pruned_sites,
            };
        }

        let mut visited: HashSet<BlockId> = HashSet::new();
        for seed in blocks_by_freq {
            if visited.contains(&seed)
                || f.block(seed).freq < max_freq / cfg.seed_fraction
                || block_is_cold(f, cfg, seed, max_freq)
            {
                continue;
            }
            let path = trace_dominant_path(f, &preds, &forest, seed, &trace_bounds);
            visited.extend(path.iter().copied());
            if path.len() < 2 {
                continue;
            }
            // Candidates: path start & end plus structural blocks on the path.
            // A block that heads a hopped-over loop contributes the loop's
            // average dynamic path length, not just its own ops.
            let mut prefix = 0u64;
            let mut candidates: Vec<Candidate> = Vec::new();
            for (i, &b) in path.iter().enumerate() {
                let is_candidate = i == 0 || i == path.len() - 1 || structural.contains(&b);
                if is_candidate {
                    candidates.push(Candidate {
                        path_index: i,
                        prefix_ops: prefix,
                    });
                }
                let hopped_loop = forest
                    .post_order()
                    .iter()
                    .find(|l| l.header == b)
                    .filter(|l| i + 1 >= path.len() || !l.blocks.contains(&path[i + 1]));
                prefix += match hopped_loop {
                    Some(l) => {
                        let entries: u64 = preds
                            .get(&b)
                            .into_iter()
                            .flatten()
                            .filter(|p| !l.blocks.contains(*p))
                            .map(|p| f.edge_count(*p, b))
                            .sum();
                        loop_weight(f, l)
                            .checked_div(entries)
                            .map_or_else(|| f.block(b).insts.len() as u64 + 1, |w| w.max(1))
                    }
                    None => f.block(b).insts.len() as u64 + 1,
                };
            }
            let chosen = partition_select(cfg.target_region_size, &candidates);
            for ci in chosen {
                let mut b = path[candidates[ci].path_index];
                // A call cannot host an aregion_begin; the region the paper
                // wants "often begin[s] immediately after the call returns"
                // — use the continuation.
                if is_call_block(f, b) {
                    if let [succ] = f.succs(b)[..] {
                        b = succ;
                    }
                }
                // A block whose dominant predecessor is already a region
                // boundary is covered by that region; a second begin here
                // would only fragment it.
                let covered =
                    crate::cold::dominant_pred(f, &preds, b).is_some_and(|p| selected.contains(&p));
                if !covered && usable_boundary(f, b) && !cfg.is_excluded(b) {
                    selected.insert(b);
                    trace_bounds.insert(b);
                }
            }
        }
    }

    BoundarySelection {
        boundaries: selected,
        pruned_sites,
    }
}

/// A block can host an `aregion_begin` unless it is a call block or an
/// empty return block (a region containing only `return` is useless).
fn usable_boundary(f: &Func, b: BlockId) -> bool {
    if is_call_block(f, b) {
        return false;
    }
    if matches!(f.block(b).term, Term::Return(_))
        && f.block(b).insts.len() <= f.block(b).phi_count()
    {
        return false;
    }
    if matches!(f.block(b).term, Term::RegionBegin { .. }) {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{Inst, Op};
    use hasp_vm::bytecode::{BinOp, CmpOp, MethodId};

    /// A hot loop whose body is `body_ops` ops long, iterating `iters` times
    /// per entry, entered `entries` times.
    fn loopy(body_ops: usize, iters: u64, entries: u64) -> Func {
        let mut f = Func::new("l", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let x = f.vreg();
        let y = f.vreg();
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: body,
            f: exit,
            t_count: iters * entries,
            f_count: entries,
        };
        for _ in 0..body_ops {
            let d = f.vreg();
            f.block_mut(body)
                .insts
                .push(Inst::with_dst(d, Op::Bin(BinOp::Add, x, y)));
        }
        f.block_mut(f.entry).term = Term::Jump(head);
        f.block_mut(f.entry).freq = entries;
        f.block_mut(head).freq = entries * (iters + 1);
        f.block_mut(body).freq = entries * iters;
        f.block_mut(exit).freq = entries;
        f
    }

    #[test]
    fn long_iteration_loop_gets_per_iteration_boundary() {
        // 300 ops per iteration * 10 iterations per entry >> 200.
        let mut f = loopy(300, 10, 5);
        let sel = select_boundaries(&mut f, &[], &RegionConfig::default());
        assert!(sel.boundaries.contains(&BlockId(2)), "{:?}", sel.boundaries);
    }

    #[test]
    fn short_small_loop_not_selected_per_iteration() {
        // 5 ops per iteration, 4 iterations per entry: whole loop fits in a
        // region, so the header is not selected by the loop phase. The
        // acyclic phase may still select boundaries elsewhere.
        let mut f = loopy(5, 4, 1000);
        let sel = select_boundaries(&mut f, &[], &RegionConfig::default());
        // Header may appear only via acyclic selection of structural blocks;
        // the pre-header (entry) is the expected boundary.
        assert!(
            sel.boundaries.contains(&f.entry) || !sel.boundaries.contains(&BlockId(2)),
            "small hot loop should be encapsulated whole: {:?}",
            sel.boundaries
        );
    }

    #[test]
    fn high_trip_count_forces_per_iteration() {
        // Tiny body but 10_000 iterations per entry: footprint risk.
        let mut f = loopy(5, 10_000, 2);
        let sel = select_boundaries(&mut f, &[], &RegionConfig::default());
        assert!(sel.boundaries.contains(&BlockId(2)), "{:?}", sel.boundaries);
    }

    #[test]
    fn loop_with_warm_call_selected() {
        let mut f = loopy(5, 4, 1000);
        f.block_mut(BlockId(3)).insts.push(Inst::effect(Op::Call {
            method: MethodId(1),
            args: vec![],
        }));
        let sel = select_boundaries(&mut f, &[], &RegionConfig::default());
        assert!(sel.boundaries.contains(&BlockId(2)), "{:?}", sel.boundaries);
    }

    #[test]
    fn excluded_boundary_is_never_selected() {
        // The same hot loop that `long_iteration_loop_gets_per_iteration_
        // boundary` proves selects BlockId(2) — excluding that block must
        // suppress it in both the loop phase and the acyclic phase.
        let mut f = loopy(300, 10, 5);
        let cfg = RegionConfig::default().with_excluded([2]);
        let sel = select_boundaries(&mut f, &[], &cfg);
        assert!(
            !sel.boundaries.contains(&BlockId(2)),
            "excluded boundary reappeared: {:?}",
            sel.boundaries
        );
    }

    #[test]
    fn cold_function_selects_nothing() {
        let mut f = loopy(300, 10, 5);
        for b in f.block_ids() {
            f.block_mut(b).freq = 0;
            if let Term::Branch {
                t_count, f_count, ..
            } = &mut f.block_mut(b).term
            {
                *t_count = 0;
                *f_count = 0;
            }
        }
        let sel = select_boundaries(&mut f, &[], &RegionConfig::default());
        assert!(sel.boundaries.is_empty());
    }
}
