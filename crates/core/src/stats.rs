//! Static statistics over formed regions (the dynamic counterparts — Table 3
//! coverage/size/abort rate — come from the hardware simulator).

use hasp_ir::{Func, Op, Term};

/// Static per-function region statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StaticRegionStats {
    /// Number of atomic regions formed.
    pub regions: usize,
    /// Total asserts across regions.
    pub asserts: usize,
    /// Total HIR ops inside region copies.
    pub region_ops: u64,
    /// Total HIR ops in the function.
    pub total_ops: u64,
    /// Conditional branches remaining inside regions.
    pub region_branches: usize,
    /// `aregion_end` commit points.
    pub commits: usize,
}

impl StaticRegionStats {
    /// Collects statistics from a formed function.
    pub fn collect(f: &Func) -> Self {
        let mut s = StaticRegionStats {
            regions: f.regions.len(),
            ..Default::default()
        };
        for b in f.block_ids() {
            let blk = f.block(b);
            let ops = blk.insts.len() as u64 + 1;
            s.total_ops += ops;
            if blk.region.is_some() {
                s.region_ops += ops;
                if matches!(blk.term, Term::Branch { .. } | Term::Switch { .. }) {
                    s.region_branches += 1;
                }
                for i in &blk.insts {
                    match i.op {
                        Op::Assert { .. } => s.asserts += 1,
                        Op::RegionEnd(_) => s.commits += 1,
                        _ => {}
                    }
                }
            }
        }
        s
    }

    /// Fraction of static ops living inside regions.
    pub fn static_coverage(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.region_ops as f64 / self.total_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_vm::bytecode::MethodId;

    #[test]
    fn empty_function_zero_stats() {
        let f = Func::new("t", MethodId(0), 0);
        let s = StaticRegionStats::collect(&f);
        assert_eq!(s.regions, 0);
        assert_eq!(s.static_coverage(), 0.0);
        assert!(s.total_ops > 0);
    }
}
