//! Inline-site records and un-inlining.
//!
//! The inliner (in `hasp-opt`) records one [`InlineSite`] per splice. Region
//! formation consumes them twice (paper §4, Algorithm 1):
//!
//! * Step 2 *prunes* inlined methods that contain selected loop boundaries or
//!   calls reachable on warm paths — `uninline` restores the original call.
//! * Step 5 removes aggressively-inlined methods from *non-speculative*
//!   paths: the speculative region copies keep the (partially) inlined hot
//!   body, while the original blocks are replaced by the call — this is what
//!   makes partial inlining almost trivial with atomic regions.

use std::collections::HashSet;

use hasp_ir::{BlockId, Func, Inst, Op, Term, VReg};
use hasp_vm::bytecode::{MethodId, SlotId};

/// How the call site dispatches when restored by un-inlining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteDispatch {
    /// A direct call.
    Direct,
    /// A devirtualized virtual call: un-inlining re-emits `CallVirtual`
    /// through `slot` (the class guard is discarded).
    Virtual {
        /// Original vtable slot.
        slot: SlotId,
    },
}

/// The class of budget the inliner charged a site to. Baseline sites are
/// retained on all paths; aggressive sites exist only to enlarge atomic
/// regions and are removed from non-speculative paths in Step 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineBudget {
    /// Within the baseline inliner's budget: kept everywhere.
    Baseline,
    /// Beyond the baseline budget: kept only inside atomic regions.
    Aggressive,
}

/// One inlined call site.
#[derive(Debug, Clone)]
pub struct InlineSite {
    /// Callee method.
    pub callee: MethodId,
    /// The block ending with the edge into the inlined body (for guarded
    /// virtual inlines this block also evaluates the class guard).
    pub pre: BlockId,
    /// Entry block of the inlined body.
    pub entry: BlockId,
    /// Continuation block (created by splitting at the call).
    pub cont: BlockId,
    /// All body blocks (including `entry` and any guard-miss call block).
    pub blocks: HashSet<BlockId>,
    /// The SSA value holding the call result — always defined by a phi in
    /// `cont` (possibly single-input), so un-inlining can redirect it.
    pub dst: Option<VReg>,
    /// Argument values (for virtual sites, `args[0]` is the receiver).
    pub args: Vec<VReg>,
    /// Dispatch kind for restoration.
    pub dispatch: SiteDispatch,
    /// Budget class.
    pub budget: InlineBudget,
}

impl InlineSite {
    /// True if any of the given boundary blocks falls inside this site's
    /// body (`hasSelectedLoop` in Algorithm 1 and the Step-5 safety check).
    pub fn contains_any(&self, blocks: &HashSet<BlockId>) -> bool {
        !self.blocks.is_disjoint(blocks)
    }

    /// True if the site's body is still wired into the CFG (its entry is
    /// reachable); outer un-inlines can strand inner sites.
    pub fn is_live(&self, f: &Func) -> bool {
        let reach: HashSet<BlockId> = f.rpo().into_iter().collect();
        reach.contains(&self.entry) && reach.contains(&self.pre)
    }
}

/// Transactional `UNINLINEMETHOD`: attempts [`uninline`] on a scratch copy
/// and commits only if the result verifies. Un-inlining is unsafe when a
/// region copy's exit or abort edge keeps part of the original body alive
/// (its internal values would dangle); such sites simply stay fully inlined
/// — correct, at some code-size cost. Returns whether the un-inline
/// committed.
pub fn uninline_checked(f: &mut Func, site: &InlineSite) -> bool {
    let mut trial = f.clone();
    uninline(&mut trial, site);
    if hasp_ir::verify(&trial).is_err() {
        return false;
    }
    *f = trial;
    true
}

/// `UNINLINEMETHOD`: replaces the inlined body with the original call on the
/// current (non-speculative) path. Speculative copies of the body made by
/// region replication are untouched. The body blocks become unreachable and
/// are tombstoned. Prefer [`uninline_checked`] unless the caller knows the
/// body is exclusively reachable through `site.pre`.
pub fn uninline(f: &mut Func, site: &InlineSite) {
    // Result slot and where body exits currently land (cont, or the begin
    // block of cont if cont became a region boundary).
    let cont_target = find_body_exit_target(f, site);

    // Fresh call block.
    let res = site.dst.map(|_| f.vreg());
    let call_inst = match &site.dispatch {
        SiteDispatch::Direct => Inst {
            dst: res,
            op: Op::Call {
                method: site.callee,
                args: site.args.clone(),
            },
        },
        SiteDispatch::Virtual { slot } => Inst {
            dst: res,
            op: Op::CallVirtual {
                slot: *slot,
                recv: site.args[0],
                args: site.args[1..].to_vec(),
                // Restored calls have no bytecode pc; profiles no longer apply.
                site: u32::MAX,
            },
        },
    };
    let cb = f.add_block(Term::Jump(cont_target));
    f.block_mut(cb).insts.push(call_inst);
    f.block_mut(cb).freq = f.block(site.pre).freq;

    // The pre block now flows straight to the call (discarding any guard
    // branch into the body).
    match f.block(site.pre).term.clone() {
        Term::Jump(_) | Term::Branch { .. } => {
            f.block_mut(site.pre).term = Term::Jump(cb);
        }
        other => panic!("unexpected pre-block terminator {other:?}"),
    }

    // Rewire the result phi: the restored call contributes its result. Body
    // exits that die become unreachable and `remove_unreachable` prunes their
    // phi inputs; exits that survive (a region copy may commit into the
    // middle of the original body) keep theirs.
    if let (Some(dst), Some(res)) = (site.dst, res) {
        let def = find_def(f, dst).expect("result value must have a definition");
        let (db, di) = def;
        match &mut f.block_mut(db).insts[di].op {
            Op::Phi(ins) => ins.push((cb, res)),
            other => panic!("result of inlined site defined by {other:?}, expected phi"),
        }
    }

    f.remove_unreachable();
    // A single-input result phi degenerates to a copy.
    if let Some(dst) = site.dst {
        if let Some((db, di)) = find_def(f, dst) {
            let single = match &f.block(db).insts[di].op {
                Op::Phi(ins) if ins.len() == 1 => Some(ins[0].1),
                _ => None,
            };
            if let Some(v) = single {
                f.block_mut(db).insts[di].op = Op::Copy(v);
            }
        }
    }
}

/// Where the inlined body's exit edges currently land: `cont` itself, or the
/// region-begin block that took over `cont`'s incoming edges.
fn find_body_exit_target(f: &Func, site: &InlineSite) -> BlockId {
    for &b in &site.blocks {
        if f.block(b).dead {
            continue;
        }
        for s in f.succs(b) {
            if !site.blocks.contains(&s) {
                return s;
            }
        }
    }
    site.cont
}

fn find_def(f: &Func, v: VReg) -> Option<(BlockId, usize)> {
    for b in f.block_ids() {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if inst.dst == Some(v) {
                return Some((b, i));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::verify;
    use hasp_vm::bytecode::BinOp;

    /// Hand-builds the CFG an inliner would produce for
    /// `x = callee(a); return x + a` where callee is `return arg * 2`.
    fn inlined_func() -> (Func, InlineSite) {
        let mut f = Func::new("caller", MethodId(0), 1);
        let a = VReg(0);
        // pre (entry) -> body -> cont
        let cont = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(cont));
        f.block_mut(f.entry).term = Term::Jump(body);
        let two = f.vreg();
        let r = f.vreg();
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(two, Op::Const(2)));
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(r, Op::Bin(BinOp::Mul, a, two)));
        let x = f.vreg();
        let out = f.vreg();
        f.block_mut(cont)
            .insts
            .push(Inst::with_dst(x, Op::Phi(vec![(body, r)])));
        f.block_mut(cont)
            .insts
            .push(Inst::with_dst(out, Op::Bin(BinOp::Add, x, a)));
        f.block_mut(cont).term = Term::Return(Some(out));
        f.block_mut(f.entry).freq = 100;
        f.block_mut(body).freq = 100;
        f.block_mut(cont).freq = 100;
        let site = InlineSite {
            callee: MethodId(7),
            pre: f.entry,
            entry: body,
            cont,
            blocks: [body].into_iter().collect(),
            dst: Some(x),
            args: vec![a],
            dispatch: SiteDispatch::Direct,
            budget: InlineBudget::Aggressive,
        };
        (f, site)
    }

    #[test]
    fn uninline_restores_direct_call() {
        let (mut f, site) = inlined_func();
        verify(&f).unwrap();
        uninline(&mut f, &site);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        // The body block is gone; a call block exists.
        assert!(f.block(site.entry).dead);
        let has_call = f.block_ids().iter().any(|b| {
            f.block(*b)
                .insts
                .iter()
                .any(|i| matches!(i.op, Op::Call { method, .. } if method == MethodId(7)))
        });
        assert!(has_call, "{}", f.display());
        // The result phi degenerated to a copy of the call's result.
        let x_def_is_copy = f
            .block_ids()
            .iter()
            .flat_map(|b| f.block(*b).insts.clone())
            .any(|i| i.dst == site.dst && matches!(i.op, Op::Copy(_)));
        assert!(x_def_is_copy, "{}", f.display());
    }

    #[test]
    fn uninline_virtual_reemits_virtual_call() {
        let (mut f, mut site) = inlined_func();
        site.dispatch = SiteDispatch::Virtual { slot: SlotId(3) };
        uninline(&mut f, &site);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        let has_vcall = f.block_ids().iter().any(|b| {
            f.block(*b).insts.iter().any(|i| {
                matches!(
                    i.op,
                    Op::CallVirtual {
                        slot: SlotId(3),
                        ..
                    }
                )
            })
        });
        assert!(has_vcall, "{}", f.display());
    }

    #[test]
    fn contains_any_detects_boundaries() {
        let (_, site) = inlined_func();
        let inside: HashSet<BlockId> = [site.entry].into_iter().collect();
        let outside: HashSet<BlockId> = [site.cont].into_iter().collect();
        assert!(site.contains_any(&inside));
        assert!(!site.contains_any(&outside));
    }
}
