//! `SELECTACYCLICBOUNDARIES` — choosing the boundary subset that minimizes
//! Equation 1 of the paper:
//!
//! ```text
//! Π = Σ_{n=1..N} (R − r_n)² / (R · r_n)
//! ```
//!
//! where `R` is the desired region size and `r_n` the size of the n-th
//! candidate region (the equation originates in MSSP's task selection). The
//! first and last candidates are forced; an O(k²) dynamic program picks the
//! interior subset.

/// One candidate boundary along a dominant path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index of the block within the path.
    pub path_index: usize,
    /// Cumulative op count from the start of the path up to (exclusive)
    /// this candidate.
    pub prefix_ops: u64,
}

/// Equation 1 penalty for a single region of size `r` against target `R`.
pub fn pi_term(r_target: u64, r: u64) -> f64 {
    if r == 0 {
        return f64::INFINITY;
    }
    let rt = r_target as f64;
    let rf = r as f64;
    (rt - rf) * (rt - rf) / (rt * rf)
}

/// Total Π over the regions induced by consecutive chosen candidates.
pub fn pi_total(r_target: u64, sizes: &[u64]) -> f64 {
    sizes.iter().map(|&r| pi_term(r_target, r)).sum()
}

/// Selects the subset of `candidates` (which must be sorted by
/// `path_index`) minimizing Π, always retaining the first and last.
/// Returns indices into `candidates`.
pub fn select_boundaries(r_target: u64, candidates: &[Candidate]) -> Vec<usize> {
    let k = candidates.len();
    if k <= 2 {
        return (0..k).collect();
    }
    // best[j] = (min Π of partition of candidates[0..=j] ending with j chosen,
    //            predecessor index)
    let mut best: Vec<(f64, usize)> = vec![(f64::INFINITY, 0); k];
    best[0] = (0.0, 0);
    for j in 1..k {
        for i in 0..j {
            if best[i].0.is_infinite() {
                continue;
            }
            let r = candidates[j].prefix_ops - candidates[i].prefix_ops;
            let cost = best[i].0 + pi_term(r_target, r);
            if cost < best[j].0 {
                best[j] = (cost, i);
            }
        }
    }
    // Backtrack from the forced last candidate.
    let mut chosen = vec![k - 1];
    let mut cur = k - 1;
    while cur != 0 {
        cur = best[cur].1;
        chosen.push(cur);
    }
    chosen.reverse();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(prefixes: &[u64]) -> Vec<Candidate> {
        prefixes
            .iter()
            .enumerate()
            .map(|(i, &p)| Candidate {
                path_index: i,
                prefix_ops: p,
            })
            .collect()
    }

    #[test]
    fn pi_prefers_target_size() {
        assert_eq!(pi_term(200, 200), 0.0);
        assert!(pi_term(200, 100) > 0.0);
        assert!(pi_term(200, 400) > pi_term(200, 200));
        assert!(pi_term(200, 0).is_infinite());
    }

    #[test]
    fn splits_long_path_near_target() {
        // Candidates every 100 ops along a 600-op path; R = 200 should pick
        // every other candidate: segments of exactly 200.
        let c = cands(&[0, 100, 200, 300, 400, 500, 600]);
        let chosen = select_boundaries(200, &c);
        assert_eq!(chosen, vec![0, 2, 4, 6]);
    }

    #[test]
    fn keeps_endpoints_when_path_small() {
        let c = cands(&[0, 30, 60]);
        let chosen = select_boundaries(200, &c);
        // A single 60-op region beats two 30-op regions.
        assert_eq!(chosen, vec![0, 2]);
    }

    #[test]
    fn two_candidates_trivially_kept() {
        let c = cands(&[0, 500]);
        assert_eq!(select_boundaries(200, &c), vec![0, 1]);
        assert_eq!(select_boundaries(200, &c[..1]), vec![0]);
        assert!(select_boundaries(200, &[]).is_empty());
    }

    #[test]
    fn brute_force_agreement() {
        // Exhaustively check the DP against brute force on small inputs.
        let prefixes = [0u64, 70, 130, 260, 340, 410, 600];
        let c = cands(&prefixes);
        let chosen = select_boundaries(200, &c);
        let dp_cost: f64 = chosen
            .windows(2)
            .map(|w| pi_term(200, prefixes[w[1]] - prefixes[w[0]]))
            .sum();
        // Brute force over all subsets containing first & last.
        let k = prefixes.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << (k - 2)) {
            let mut idx = vec![0usize];
            for bit in 0..(k - 2) {
                if mask & (1 << bit) != 0 {
                    idx.push(bit + 1);
                }
            }
            idx.push(k - 1);
            let cost: f64 = idx
                .windows(2)
                .map(|w| pi_term(200, prefixes[w[1]] - prefixes[w[0]]))
                .sum();
            best = best.min(cost);
        }
        assert!(
            (dp_cost - best).abs() < 1e-9,
            "dp {dp_cost} vs brute {best}"
        );
    }
}
