//! Cold-path classification and warm-reachability queries over profiled CFGs.

use std::collections::HashSet;

use hasp_ir::{BlockId, Func};

use crate::config::RegionConfig;

/// True if the edge `from -> to` is cold: the source block never executed,
/// or the edge's share of the source's outgoing executions is below the
/// configured bias threshold (paper: 1%).
pub fn edge_is_cold(f: &Func, cfg: &RegionConfig, from: BlockId, to: BlockId) -> bool {
    let total = f.block(from).freq;
    if total == 0 {
        return true;
    }
    let count = f.edge_count(from, to);
    (count as f64) < cfg.cold_threshold * (total as f64)
}

/// True if `b` itself is cold relative to the hottest block of the function
/// (never-executed blocks are always cold).
pub fn block_is_cold(f: &Func, cfg: &RegionConfig, b: BlockId, max_freq: u64) -> bool {
    let freq = f.block(b).freq;
    if freq == 0 {
        return true;
    }
    (freq as f64) < cfg.cold_threshold * (max_freq as f64)
}

/// Warm successors of `b` (edges that are not cold), deduplicated.
pub fn warm_succs(f: &Func, cfg: &RegionConfig, b: BlockId) -> Vec<BlockId> {
    let mut out = Vec::new();
    for s in f.succs(b) {
        if !edge_is_cold(f, cfg, b, s) && !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// `HASCALLONWARMPATH` from Algorithm 1: is a (non-inlined) call reachable
/// from `start` along non-cold edges while staying within `blocks`?
pub fn has_call_on_warm_path(
    f: &Func,
    cfg: &RegionConfig,
    start: BlockId,
    blocks: &HashSet<BlockId>,
) -> bool {
    let mut seen = HashSet::new();
    let mut stack = vec![start];
    while let Some(b) = stack.pop() {
        if !blocks.contains(&b) || !seen.insert(b) {
            continue;
        }
        if f.block(b).insts.iter().any(|i| i.op.is_call()) {
            return true;
        }
        for s in warm_succs(f, cfg, b) {
            stack.push(s);
        }
    }
    false
}

/// The dominant (hottest) successor of `b`, if any edge executed.
pub fn dominant_succ(f: &Func, b: BlockId) -> Option<BlockId> {
    f.succs(b)
        .into_iter()
        .map(|s| (s, f.edge_count(b, s)))
        .max_by_key(|(s, c)| (*c, u32::MAX - s.0))
        .filter(|(_, c)| *c > 0)
        .map(|(s, _)| s)
}

/// The dominant (hottest) predecessor of `b`, if any edge executed.
pub fn dominant_pred(
    f: &Func,
    preds: &std::collections::HashMap<BlockId, Vec<BlockId>>,
    b: BlockId,
) -> Option<BlockId> {
    preds
        .get(&b)?
        .iter()
        .map(|p| (*p, f.edge_count(*p, b)))
        .max_by_key(|(p, c)| (*c, u32::MAX - p.0))
        .filter(|(_, c)| *c > 0)
        .map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::Term;
    use hasp_vm::bytecode::{CmpOp, MethodId};
    use hasp_vm::MethodId as _MID;

    fn biased_branch(t_count: u64, f_count: u64) -> Func {
        let mut f = Func::new("b", MethodId(0), 0);
        let hot = f.add_block(Term::Return(None));
        let cold = f.add_block(Term::Return(None));
        let a = f.vreg();
        let b = f.vreg();
        f.block_mut(f.entry).term = Term::Branch {
            op: CmpOp::Eq,
            a,
            b,
            t: cold,
            f: hot,
            t_count,
            f_count,
        };
        f.block_mut(f.entry).freq = t_count + f_count;
        f.block_mut(hot).freq = f_count;
        f.block_mut(cold).freq = t_count;
        f
    }

    #[test]
    fn cold_edges_below_one_percent() {
        let cfg = RegionConfig::default();
        let f = biased_branch(1, 999);
        assert!(edge_is_cold(&f, &cfg, f.entry, BlockId(2)));
        assert!(!edge_is_cold(&f, &cfg, f.entry, BlockId(1)));

        let even = biased_branch(500, 500);
        assert!(!edge_is_cold(&even, &cfg, even.entry, BlockId(1)));
        assert!(!edge_is_cold(&even, &cfg, even.entry, BlockId(2)));
    }

    #[test]
    fn unexecuted_block_edges_cold() {
        let cfg = RegionConfig::default();
        let f = biased_branch(0, 0);
        assert!(edge_is_cold(&f, &cfg, f.entry, BlockId(1)));
        assert!(block_is_cold(&f, &cfg, BlockId(1), 100));
    }

    #[test]
    fn dominant_succ_picks_hottest() {
        let f = biased_branch(10, 90);
        assert_eq!(dominant_succ(&f, f.entry), Some(BlockId(1)));
        let g = biased_branch(90, 10);
        assert_eq!(dominant_succ(&g, g.entry), Some(BlockId(2)));
        let z = biased_branch(0, 0);
        assert_eq!(dominant_succ(&z, z.entry), None);
    }

    #[test]
    fn warm_call_reachability() {
        let cfg = RegionConfig::default();
        let mut f = biased_branch(1, 999);
        // Put a call in the cold target: not reachable on warm paths.
        f.block_mut(BlockId(2))
            .insts
            .push(hasp_ir::Inst::effect(hasp_ir::Op::Call {
                method: _MID(1),
                args: vec![],
            }));
        let blocks: HashSet<BlockId> = f.block_ids().into_iter().collect();
        assert!(!has_call_on_warm_path(&f, &cfg, f.entry, &blocks));
        // Put one in the hot target: reachable.
        f.block_mut(BlockId(1))
            .insts
            .push(hasp_ir::Inst::effect(hasp_ir::Op::Call {
                method: _MID(1),
                args: vec![],
            }));
        assert!(has_call_on_warm_path(&f, &cfg, f.entry, &blocks));
    }
}
