//! Region-formation parameters (paper §4).

use std::collections::BTreeSet;

use hasp_ir::BlockId;

/// Tunables for atomic-region formation. Defaults are the paper's: cold
/// paths are those with branch bias below 1%, and both the loop-path
/// threshold and the target region size `R` are 200 high-level IR operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionConfig {
    /// Edge bias below which a path is considered cold (paper: 1%).
    pub cold_threshold: f64,
    /// `LOOPPATHTHRESHOLD`: loops whose average dynamic path length per entry
    /// meets this run one atomic region per iteration (paper: 200).
    pub loop_path_threshold: f64,
    /// `R` in Equation 1: the desired region size in HIR ops (paper: 200).
    pub target_region_size: u64,
    /// Seed blocks for acyclic tracing must execute at least
    /// `max_block_count / seed_fraction` times (Algorithm 1 uses 100).
    pub seed_fraction: u64,
    /// Safety cap on the number of HIR ops replicated into one region, so a
    /// warm-diamond explosion cannot blow up compile time or the hardware's
    /// buffering (the paper relies on boundary spacing for the same effect).
    pub max_region_ops: u64,
    /// Loops with an average trip count above this are given per-iteration
    /// regions even when each iteration is short, so the footprint of a whole
    /// encapsulated loop cannot overflow the cache (paper §4: "or if the
    /// average number of iterations executed is high enough that the region
    /// might overflow the cache").
    pub max_encapsulated_trip_count: f64,
    /// Boundaries whose region body would be smaller than this many HIR ops
    /// are dropped: a region that cannot amortize its `aregion_begin` /
    /// `aregion_end` pair only costs (the paper's jython analysis shows
    /// exactly this failure mode for "a large number of small atomic
    /// regions").
    pub min_region_ops: u64,
    /// Boundary blocks (original, pre-replication ids) that must *not* seed
    /// a region in this formation run — the adaptive re-formation exclusion
    /// set. A region that keeps aborting on its footprint or a failed
    /// assert names its boundary in a `ReformRequest`; re-running formation
    /// with that boundary excluded either merges the blocks into a
    /// neighboring (differently shaped) region or leaves them
    /// non-speculative, instead of demoting the region forever.
    pub excluded_boundaries: BTreeSet<u32>,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            cold_threshold: 0.01,
            loop_path_threshold: 200.0,
            target_region_size: 200,
            seed_fraction: 100,
            max_region_ops: 1200,
            max_encapsulated_trip_count: 64.0,
            min_region_ops: 10,
            excluded_boundaries: BTreeSet::new(),
        }
    }
}

impl RegionConfig {
    /// A configuration scaled to favor smaller regions (used by ablation
    /// benches sweeping `R`).
    pub fn with_target_size(mut self, r: u64) -> Self {
        self.target_region_size = r;
        self.loop_path_threshold = r as f64;
        self
    }

    /// Overrides the cold-path bias threshold.
    pub fn with_cold_threshold(mut self, t: f64) -> Self {
        self.cold_threshold = t;
        self
    }

    /// Adds boundary blocks to the re-formation exclusion set.
    pub fn with_excluded(mut self, boundaries: impl IntoIterator<Item = u32>) -> Self {
        self.excluded_boundaries.extend(boundaries);
        self
    }

    /// True when `b` must not seed a region in this formation run.
    pub fn is_excluded(&self, b: BlockId) -> bool {
        self.excluded_boundaries.contains(&b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RegionConfig::default();
        assert_eq!(c.cold_threshold, 0.01);
        assert_eq!(c.loop_path_threshold, 200.0);
        assert_eq!(c.target_region_size, 200);
    }

    #[test]
    fn builders() {
        let c = RegionConfig::default()
            .with_target_size(50)
            .with_cold_threshold(0.05);
        assert_eq!(c.target_region_size, 50);
        assert_eq!(c.loop_path_threshold, 50.0);
        assert_eq!(c.cold_threshold, 0.05);
    }

    #[test]
    fn exclusion_set() {
        let c = RegionConfig::default();
        assert!(!c.is_excluded(BlockId(3)), "default excludes nothing");
        let c = c.with_excluded([3, 7]).with_excluded([9]);
        assert!(c.is_excluded(BlockId(3)));
        assert!(c.is_excluded(BlockId(9)));
        assert!(!c.is_excluded(BlockId(4)));
    }
}
