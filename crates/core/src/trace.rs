//! Algorithm 2: `TRACEDOMINANTPATH` and `LOOPWEIGHT`.

use std::collections::{HashMap, HashSet};

use hasp_ir::{BlockId, Func, Loop};

use crate::cold::{dominant_pred, dominant_succ};

/// `LOOPWEIGHT(loop)`: Σ over loop blocks of `execCount(block) × ops(block)`
/// — the total dynamic operation count attributable to the loop.
pub fn loop_weight(f: &Func, l: &Loop) -> u64 {
    l.blocks
        .iter()
        .map(|&b| {
            let blk = f.block(b);
            blk.freq * (blk.insts.len() as u64 + 1)
        })
        .sum()
}

/// `TRACEDOMINANTPATH(seedBlock, traceBoundaries)`: the most frequently
/// executed path through `seed`, traced forward along dominant out-edges and
/// backward along dominant in-edges, terminating when a boundary block is
/// appended/prepended (the boundary is included in the path).
///
/// Loops that were *not* selected for per-iteration regions are traversed as
/// a unit: a forward step that would re-enter the path (a back edge) jumps to
/// the loop's dominant exit instead, and a backward step from a loop header
/// takes the dominant *outside* predecessor. This keeps small hot loops
/// encapsulated whole (their pre-headers and exits become the candidates,
/// per Algorithm 1) instead of degenerating into per-iteration boundaries.
pub fn trace_dominant_path(
    f: &Func,
    preds: &HashMap<BlockId, Vec<BlockId>>,
    forest: &hasp_ir::LoopForest,
    seed: BlockId,
    boundaries: &HashSet<BlockId>,
) -> Vec<BlockId> {
    let mut path = vec![seed];
    let mut on_path: HashSet<BlockId> = [seed].into_iter().collect();

    if boundaries.contains(&seed) {
        return path;
    }
    // Forward along dominant out-edges, hopping over unselected loops.
    let mut cur = seed;
    while let Some(mut next) = dominant_succ(f, cur) {
        if on_path.contains(&next) {
            // Back edge: leave the loop through its dominant exit.
            let Some(l) = forest
                .post_order()
                .iter()
                .find(|l| l.header == next && l.blocks.contains(&cur))
            else {
                break;
            };
            let exit = l
                .exiting_blocks(f)
                .into_iter()
                .flat_map(|e| {
                    f.succs(e)
                        .into_iter()
                        .filter(|t| !l.blocks.contains(t))
                        .map(move |t| (t, f.edge_count(e, t)))
                })
                .max_by_key(|(t, c)| (*c, u32::MAX - t.0));
            match exit {
                Some((t, c)) if c > 0 && !on_path.contains(&t) => next = t,
                _ => break,
            }
        }
        on_path.insert(next);
        path.push(next);
        if boundaries.contains(&next) {
            break;
        }
        cur = next;
    }
    // Backward along dominant in-edges; from a loop header, only outside
    // predecessors count (the latch belongs to the encapsulated loop).
    let mut cur = seed;
    loop {
        let enclosing = forest.post_order().iter().find(|l| l.header == cur);
        let prev = match enclosing {
            Some(l) => preds
                .get(&cur)
                .into_iter()
                .flatten()
                .filter(|p| !l.blocks.contains(*p))
                .map(|p| (*p, f.edge_count(*p, cur)))
                .max_by_key(|(p, c)| (*c, u32::MAX - p.0))
                .filter(|(_, c)| *c > 0)
                .map(|(p, _)| p),
            None => dominant_pred(f, preds, cur),
        };
        let Some(prev) = prev else { break };
        if !on_path.insert(prev) {
            break;
        }
        path.insert(0, prev);
        if boundaries.contains(&prev) {
            break;
        }
        cur = prev;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{DomTree, LoopForest, Term};
    use hasp_vm::bytecode::{CmpOp, MethodId};

    /// entry(100) -> a(100) -> b(100) -> c(100) -> ret(100), with a cold
    /// side-exit from b.
    fn chain() -> Func {
        let mut f = Func::new("c", MethodId(0), 0);
        let ret = f.add_block(Term::Return(None)); // b1
        let cold = f.add_block(Term::Return(None)); // b2
        let c = f.add_block(Term::Jump(ret)); // b3
        let x = f.vreg();
        let y = f.vreg();
        let b = f.add_block(Term::Branch {
            op: CmpOp::Eq,
            a: x,
            b: y,
            t: cold,
            f: c,
            t_count: 0,
            f_count: 100,
        }); // b4
        let a = f.add_block(Term::Jump(b)); // b5
        f.block_mut(f.entry).term = Term::Jump(a);
        for (blk, fr) in [
            (f.entry, 100),
            (a, 100),
            (b, 100),
            (c, 100),
            (ret, 100),
            (cold, 0),
        ] {
            f.block_mut(blk).freq = fr;
        }
        f
    }

    #[test]
    fn traces_hot_chain_between_boundaries() {
        let f = chain();
        let preds = f.preds();
        let forest = LoopForest::compute(&f, &DomTree::compute(&f));
        let boundaries: HashSet<BlockId> = [f.entry, BlockId(1)].into_iter().collect();
        let path = trace_dominant_path(&f, &preds, &forest, BlockId(4), &boundaries);
        assert_eq!(
            path,
            vec![f.entry, BlockId(5), BlockId(4), BlockId(3), BlockId(1)],
            "path should span entry..ret through the hot chain"
        );
    }

    #[test]
    fn seed_on_boundary_is_trivial() {
        let f = chain();
        let preds = f.preds();
        let forest = LoopForest::compute(&f, &DomTree::compute(&f));
        let boundaries: HashSet<BlockId> = [BlockId(4)].into_iter().collect();
        let path = trace_dominant_path(&f, &preds, &forest, BlockId(4), &boundaries);
        assert_eq!(path, vec![BlockId(4)]);
    }

    #[test]
    fn cycle_guard_terminates_in_loop() {
        // entry -> head <-> body (hot loop, no boundaries anywhere).
        let mut f = Func::new("l", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let x = f.vreg();
        let y = f.vreg();
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: body,
            f: exit,
            t_count: 1000,
            f_count: 10,
        };
        f.block_mut(f.entry).term = Term::Jump(head);
        f.block_mut(f.entry).freq = 10;
        f.block_mut(head).freq = 1010;
        f.block_mut(body).freq = 1000;
        f.block_mut(exit).freq = 10;
        let preds = f.preds();
        let forest = LoopForest::compute(&f, &DomTree::compute(&f));
        let path = trace_dominant_path(&f, &preds, &forest, body, &HashSet::new());
        // Must terminate and contain each block at most once.
        let unique: HashSet<_> = path.iter().collect();
        assert_eq!(unique.len(), path.len());
        assert!(path.contains(&body));
    }

    #[test]
    fn loop_weight_counts_ops_times_freq() {
        let mut f = Func::new("w", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let x = f.vreg();
        let y = f.vreg();
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: body,
            f: exit,
            t_count: 100,
            f_count: 10,
        };
        f.block_mut(f.entry).term = Term::Jump(head);
        f.block_mut(head).freq = 110;
        f.block_mut(body).freq = 100;
        // head has 0 insts (1 op for the terminator), body has 0 insts + 1.
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        let l = &lf.post_order()[0];
        assert_eq!(loop_weight(&f, l), 110 + 100);
    }
}
