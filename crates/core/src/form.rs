//! The five-step region-formation pipeline (paper §4):
//!
//! 1. Aggressively inline methods — done by the caller (`hasp-opt`'s
//!    inliner), which hands the [`InlineSite`] records here.
//! 2. Select region boundaries (Algorithm 1), un-inlining pruned methods.
//! 3. Replicate flowgraphs for selected regions.
//! 4. Convert cold edges into asserts.
//! 5. Remove all (aggressively) inlined methods from non-speculative paths.

use std::collections::{BTreeSet, HashSet};

use hasp_ir::{BlockId, Func, RegionId};

use crate::boundaries::select_boundaries;
use crate::config::RegionConfig;
use crate::normalize::split_at_calls;
use crate::replicate::form_regions;
use crate::site::{uninline_checked, InlineBudget, InlineSite};

/// Outcome of region formation on one function.
#[derive(Debug, Clone)]
pub struct FormationResult {
    /// Regions created (indices into `Func::regions`).
    pub regions: Vec<RegionId>,
    /// The boundary blocks chosen by Algorithm 1 (original block ids; they
    /// are the abort targets after formation).
    pub boundaries: BTreeSet<BlockId>,
    /// Sites un-inlined during pruning (step 2).
    pub pruned_sites: Vec<usize>,
    /// Sites un-inlined from non-speculative paths (step 5).
    pub despeculated_sites: Vec<usize>,
}

/// Runs steps 2–5 on an already-inlined function.
pub fn form_atomic_regions(
    f: &mut Func,
    sites: &[InlineSite],
    cfg: &RegionConfig,
) -> FormationResult {
    split_at_calls(f);
    let sel = select_boundaries(f, sites, cfg);
    let pruned: HashSet<usize> = sel.pruned_sites.iter().copied().collect();
    let regions = form_regions(f, &sel.boundaries, cfg);

    // Step 5: aggressively-inlined methods are retained only along
    // speculative paths (inside the region copies); the originals revert to
    // calls. Sites that ended up containing a region boundary stay fully
    // inlined — their middle is an abort target and cannot be collapsed.
    let mut guard: HashSet<BlockId> = sel.boundaries.iter().copied().collect();
    for ri in &regions {
        guard.insert(f.regions[ri.0 as usize].begin);
    }
    let mut despeculated = Vec::new();
    for (i, site) in sites.iter().enumerate() {
        if pruned.contains(&i)
            || site.budget == InlineBudget::Baseline
            || site.contains_any(&guard)
            || !site.is_live(f)
        {
            continue;
        }
        if uninline_checked(f, site) {
            despeculated.push(i);
        }
    }

    FormationResult {
        regions,
        boundaries: sel.boundaries,
        pruned_sites: sel.pruned_sites,
        despeculated_sites: despeculated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{translate, verify};
    use hasp_vm::builder::ProgramBuilder;
    use hasp_vm::bytecode::{BinOp, CmpOp};
    use hasp_vm::interp::Interp;

    /// Builds the Figure 2 `addElement`-style hot/cold method and a caller
    /// loop, runs it for a profile, and returns the translated caller.
    fn profiled_hot_loop() -> Func {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Vec", None, &["cached", "i", "chunk_size"]);
        let f_cached = pb.field(c, "cached");
        let f_i = pb.field(c, "i");
        let f_cs = pb.field(c, "chunk_size");

        // main: builds a Vec with a big cached chunk, loops addElement-like
        // body inline (the hot path with a cold overflow branch).
        let mut m = pb.method("main", 0);
        let v = m.reg();
        m.new_obj(v, c);
        let cap = m.imm(1 << 20);
        let arr = m.reg();
        m.new_array(arr, cap);
        m.put_field(v, f_cached, arr);
        m.put_field(v, f_cs, cap);
        let zero = m.imm(0);
        m.put_field(v, f_i, zero);
        let n = m.imm(5000);
        let k = m.imm(0);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        let cold = m.new_label();
        let join = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, k, n, exit);
        // hot body: i = v.i; if i >= chunk_size goto cold; cached[i] = k; ++i
        let i = m.reg();
        m.get_field(i, v, f_i);
        let cs = m.reg();
        m.get_field(cs, v, f_cs);
        m.branch(CmpOp::Ge, i, cs, cold);
        let cached = m.reg();
        m.get_field(cached, v, f_cached);
        m.astore(cached, i, k);
        let i2 = m.reg();
        m.bin(BinOp::Add, i2, i, one);
        m.put_field(v, f_i, i2);
        m.jump(join);
        m.bind(cold);
        // cold path: reset i (never executed in this run)
        m.put_field(v, f_i, zero);
        m.jump(join);
        m.bind(join);
        m.bin(BinOp::Add, k, k, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);

        let mut interp = Interp::new(&p).with_profiling();
        interp.set_fuel(100_000_000);
        interp.run(&[]).unwrap();
        let prof = interp.profile.method(entry).cloned();
        translate(&p, entry, prof.as_ref())
    }

    #[test]
    fn full_pipeline_on_hot_loop() {
        let mut f = profiled_hot_loop();
        verify(&f).unwrap();
        let cfg = RegionConfig::default();
        let result = form_atomic_regions(&mut f, &[], &cfg);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        assert!(
            !result.regions.is_empty(),
            "hot loop must get at least one region"
        );
        // The cold overflow branch inside the region became an assert.
        let n_asserts: usize = f
            .block_ids()
            .iter()
            .map(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .filter(|i| matches!(i.op, hasp_ir::Op::Assert { .. }))
                    .count()
            })
            .sum();
        assert!(n_asserts >= 1, "{}", f.display());
        // Assert provenance recorded.
        assert_eq!(f.asserts.len(), n_asserts);
    }

    #[test]
    fn formation_is_idempotent_on_cold_code() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let r = m.imm(7);
        m.ret(Some(r));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut f = translate(&p, entry, None);
        let result = form_atomic_regions(&mut f, &[], &RegionConfig::default());
        assert!(result.regions.is_empty());
        verify(&f).unwrap();
    }
}
