//! Steps 3 and 4 of region formation: replicate the flowgraph reachable from
//! each selected boundary along non-cold edges, wrap the copy in
//! `aregion_begin`/`aregion_end`, and convert cold edges into asserts.
//!
//! The originals remain in place as the non-speculative version: every edge
//! that used to enter a boundary block now enters its `aregion_begin` block,
//! and the begin's abort edge points back at the original block — exactly the
//! paper's "all edges into the block that the region entry was copied from
//! are moved to the aregion begin and an exception edge is added from the
//! atomic begin to the source block".

use std::collections::{BTreeSet, HashMap, HashSet};

use hasp_ir::{AssertKind, BlockId, Func, Inst, Op, RegionId, RegionInfo, Term, VReg};
use hasp_vm::bytecode::CmpOp;

use crate::config::RegionConfig;
use crate::normalize::is_call_block;

/// Forms one atomic region at every boundary block. Returns the new regions.
pub fn form_regions(
    f: &mut Func,
    boundaries: &BTreeSet<BlockId>,
    cfg: &RegionConfig,
) -> Vec<RegionId> {
    let live: HashSet<BlockId> = f.rpo().into_iter().collect();
    let mut bounds: Vec<BlockId> = boundaries
        .iter()
        .copied()
        .filter(|b| live.contains(b) && !f.block(*b).dead)
        .collect();

    // Drop boundaries whose region would be too small to amortize the
    // begin/commit pair (estimated against the full boundary set).
    let bound_set: HashSet<BlockId> = bounds.iter().copied().collect();
    bounds.retain(|&s| {
        let mut ops = 0u64;
        let mut seen: HashSet<BlockId> = [s].into_iter().collect();
        let mut stack = vec![s];
        while let Some(c) = stack.pop() {
            ops += f.block(c).insts.len() as u64 + 1;
            if ops >= cfg.min_region_ops {
                return true;
            }
            for t in f.succs(c) {
                if !seen.contains(&t)
                    && !bound_set.contains(&t)
                    && !is_call_block(f, t)
                    && !edge_cold(f, cfg, c, t)
                {
                    seen.insert(t);
                    stack.push(t);
                }
            }
        }
        ops >= cfg.min_region_ops
    });

    // ---- Phase A: create begin blocks and reroute all incoming edges. ----
    let mut begin_of: HashMap<BlockId, BlockId> = HashMap::new();
    for &s in &bounds {
        let b = f.add_block(Term::Jump(s));
        // Move the boundary's phis into the begin block: merged values are
        // computed before speculation begins, and both the speculative copy
        // and the abort path consume them.
        let phi_count = f.block(s).phi_count();
        let phis: Vec<Inst> = f.block_mut(s).insts.drain(..phi_count).collect();
        f.block_mut(b).insts = phis;
        f.block_mut(b).freq = f.block(s).freq;
        for pb in f.block_ids() {
            if pb != b {
                f.block_mut(pb).term.retarget(s, b);
            }
        }
        if f.entry == s {
            f.entry = b;
        }
        begin_of.insert(s, b);
    }
    let begin_set: HashSet<BlockId> = begin_of.values().copied().collect();

    // ---- Phase B1: compute each region's body over the original graph. ----
    // A body block reached over a back edge to a block that *dominates* part
    // of the body would invert definition order in the copy; such edges are
    // region exits instead (the dominator tree is computed after the begin
    // blocks rerouted all boundary edges).
    let dt = hasp_ir::DomTree::compute(f);
    let mut bodies: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for &s in &bounds {
        let mut body: Vec<BlockId> = Vec::new();
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut ops = 0u64;
        let mut stack = vec![s];
        seen.insert(s);
        while let Some(c) = stack.pop() {
            body.push(c);
            ops += f.block(c).insts.len() as u64 + 1;
            if ops > cfg.max_region_ops {
                continue; // stop expanding; remaining successors become exits
            }
            for t in f.succs(c) {
                if seen.contains(&t)
                    || begin_set.contains(&t)
                    || is_call_block(f, t)
                    || edge_cold(f, cfg, c, t)
                    || dt.dominates(t, c)
                {
                    continue;
                }
                seen.insert(t);
                stack.push(t);
            }
        }
        bodies.push((s, body));
    }

    // ---- Phase B2: copy bodies, convert cold edges, insert commits. ----
    let mut regions = Vec::new();
    for (s, body) in &bodies {
        let watermark = f.block_count() as u32;
        let (r, vmap) = replicate_one(f, cfg, *s, body, begin_of[s]);
        regions.push(r);
        // SSA repair: every value defined in the body now has two
        // definitions (original + copy), and region exits can re-enter the
        // original blocks downstream — so every pair gets a reaching-def
        // rewrite with join phis. One dominator computation serves them all
        // (phi insertion does not change the CFG).
        let _ = watermark;
        let rdt = hasp_ir::DomTree::compute(f);
        let rfronts = rdt.frontiers(f);
        let mut pairs: Vec<(VReg, VReg)> = vmap.into_iter().collect();
        pairs.sort();
        for (d, d2) in pairs {
            hasp_ir::ssa_repair::repair_with(f, &[d, d2], &rdt, &rfronts);
        }
        hasp_ir::ssa_repair::materialize_undef_inputs(f);
    }

    // Originals are abort paths now: their profile weight moves to the
    // copies (which inherited the counts verbatim).
    let mut originals: HashSet<BlockId> = HashSet::new();
    for (_, body) in &bodies {
        originals.extend(body.iter().copied());
    }
    for b in originals {
        f.block_mut(b).freq = 0;
        zero_counts(&mut f.block_mut(b).term);
    }
    f.remove_unreachable();
    regions
}

fn zero_counts(t: &mut Term) {
    match t {
        Term::Branch {
            t_count, f_count, ..
        } => {
            *t_count = 0;
            *f_count = 0;
        }
        Term::Switch {
            targets, default, ..
        } => {
            for (_, c) in targets.iter_mut() {
                *c = 0;
            }
            default.1 = 0;
        }
        _ => {}
    }
}

fn edge_cold(f: &Func, cfg: &RegionConfig, from: BlockId, to: BlockId) -> bool {
    crate::cold::edge_is_cold(f, cfg, from, to)
}

/// Copies one region body and rewires it.
fn replicate_one(
    f: &mut Func,
    cfg: &RegionConfig,
    s: BlockId,
    body: &[BlockId],
    begin: BlockId,
) -> (RegionId, HashMap<VReg, VReg>) {
    let body_set: HashSet<BlockId> = body.iter().copied().collect();
    let size_estimate: u64 = body
        .iter()
        .map(|&b| f.block(b).insts.len() as u64 + 1)
        .sum();
    let r = f.new_region(RegionInfo {
        begin,
        abort_target: s,
        size_estimate,
    });

    // Rename every value defined inside the body.
    let mut vmap: HashMap<VReg, VReg> = HashMap::new();
    for &c in body {
        let defs: Vec<VReg> = f.block(c).insts.iter().filter_map(|i| i.dst).collect();
        for d in defs {
            let fresh = f.vreg();
            vmap.insert(d, fresh);
        }
    }
    // Allocate copies.
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    for &c in body {
        let c2 = f.add_block(Term::Return(None));
        bmap.insert(c, c2);
    }

    // Copy instructions and rewrite terminators.
    for &c in body {
        let c2 = bmap[&c];
        let mut insts = f.block(c).insts.clone();
        for inst in &mut insts {
            if let Some(d) = inst.dst {
                inst.dst = Some(vmap[&d]);
            }
            for a in inst.op.args_mut() {
                if let Some(n) = vmap.get(a) {
                    *a = *n;
                }
            }
        }
        let mut term = f.block(c).term.clone();
        for a in term.args_mut() {
            if let Some(n) = vmap.get(a) {
                *a = *n;
            }
        }
        let freq = f.block(c).freq;
        f.block_mut(c2).insts = insts;
        f.block_mut(c2).freq = freq;
        f.block_mut(c2).region = Some(r);
        rewrite_copy_term(f, cfg, r, c, c2, term, &body_set, &bmap, &vmap);
    }

    // Fix phis inside copies: keep only inputs arriving over surviving
    // in-copy edges (this is where superblock-style entry-edge removal
    // happens), relabeled to the copied predecessors.
    let mut copy_preds: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    for &c in body {
        for t in f.succs(bmap[&c]) {
            copy_preds.entry(t).or_default().insert(bmap[&c]);
        }
    }
    for &c in body {
        let c2 = bmap[&c];
        let preds_here: HashSet<BlockId> = copy_preds.get(&c2).cloned().unwrap_or_default();
        let mut degenerate: Vec<(usize, VReg)> = Vec::new();
        for (idx, inst) in f.block_mut(c2).insts.iter_mut().enumerate() {
            if let Op::Phi(ins) = &mut inst.op {
                let mut new_ins: Vec<(BlockId, VReg)> = Vec::new();
                for (p, v) in ins.iter() {
                    if let Some(&p2) = bmap.get(p) {
                        if preds_here.contains(&p2) {
                            new_ins.push((p2, *v));
                        }
                    }
                }
                assert!(
                    !new_ins.is_empty(),
                    "region copy of {c} has a phi with no surviving inputs"
                );
                if new_ins.len() == 1 && preds_here.len() <= 1 {
                    degenerate.push((idx, new_ins[0].1));
                } else {
                    *ins = new_ins;
                }
            }
        }
        for (idx, v) in degenerate {
            f.block_mut(c2).insts[idx].op = Op::Copy(v);
        }
        // Copies of blocks that return from the function commit first.
        if matches!(f.block(c2).term, Term::Return(_)) {
            f.block_mut(c2).insts.push(Inst::effect(Op::RegionEnd(r)));
        }
    }

    // Arm the begin block.
    f.block_mut(begin).term = Term::RegionBegin {
        region: r,
        body: bmap[&s],
        abort: s,
    };
    (r, vmap)
}

/// Rewrites the terminator of copy `c2` (of original `c`): in-body edges go
/// to copies, warm exits go through `aregion_end` helper blocks, cold edges
/// become asserts (Step 4).
#[allow(clippy::too_many_arguments)]
fn rewrite_copy_term(
    f: &mut Func,
    cfg: &RegionConfig,
    r: RegionId,
    c: BlockId,
    c2: BlockId,
    term: Term,
    body: &HashSet<BlockId>,
    bmap: &HashMap<BlockId, BlockId>,
    vmap: &HashMap<VReg, VReg>,
) {
    match term {
        Term::Jump(t) => {
            let nt = map_target(f, r, c, t, body, bmap, vmap);
            f.block_mut(c2).term = Term::Jump(nt);
        }
        Term::Return(v) => {
            f.block_mut(c2).term = Term::Return(v);
        }
        Term::Branch {
            op,
            a,
            b,
            t,
            f: fb,
            t_count,
            f_count,
        } => {
            let total = f.block(c).freq.max(t_count + f_count);
            let t_cold = is_cold_count(cfg, t_count, total);
            let f_cold = is_cold_count(cfg, f_count, total);
            match (t_cold, f_cold) {
                (false, false) => {
                    let nt = map_target(f, r, c, t, body, bmap, vmap);
                    let nf = map_target(f, r, c, fb, body, bmap, vmap);
                    f.block_mut(c2).term = Term::Branch {
                        op,
                        a,
                        b,
                        t: nt,
                        f: nf,
                        t_count,
                        f_count,
                    };
                }
                (true, false) => {
                    // Taken side is cold: abort if the condition holds.
                    let id = f.new_assert(r, format!("cold-branch {c} taken"));
                    f.block_mut(c2).insts.push(Inst::effect(Op::Assert {
                        kind: AssertKind::Cmp { op, a, b },
                        id,
                    }));
                    let nf = map_target(f, r, c, fb, body, bmap, vmap);
                    f.block_mut(c2).term = Term::Jump(nf);
                }
                (false, true) => {
                    let id = f.new_assert(r, format!("cold-branch {c} fallthrough"));
                    f.block_mut(c2).insts.push(Inst::effect(Op::Assert {
                        kind: AssertKind::Cmp {
                            op: op.negate(),
                            a,
                            b,
                        },
                        id,
                    }));
                    let nt = map_target(f, r, c, t, body, bmap, vmap);
                    f.block_mut(c2).term = Term::Jump(nt);
                }
                (true, true) => {
                    // Stale profile: keep the hotter side as the path.
                    let (warm, cold_op) = if t_count >= f_count {
                        (t, op.negate())
                    } else {
                        (fb, op)
                    };
                    let id = f.new_assert(r, format!("stale-branch {c}"));
                    f.block_mut(c2).insts.push(Inst::effect(Op::Assert {
                        kind: AssertKind::Cmp { op: cold_op, a, b },
                        id,
                    }));
                    let nw = map_target(f, r, c, warm, body, bmap, vmap);
                    f.block_mut(c2).term = Term::Jump(nw);
                }
            }
        }
        Term::Switch {
            sel,
            targets,
            default,
        } => {
            rewrite_switch(f, cfg, r, c, c2, sel, targets, default, body, bmap, vmap);
        }
        Term::RegionBegin { .. } => unreachable!("no nested regions in a body"),
    }
}

fn is_cold_count(cfg: &RegionConfig, count: u64, total: u64) -> bool {
    if total == 0 {
        return true;
    }
    (count as f64) < cfg.cold_threshold * (total as f64)
}

/// Converts a switch in a region copy: warm cases become compare/branch
/// chains; cold cases become asserts ("simplify an indirect branch to a
/// conditional branch", paper §6).
#[allow(clippy::too_many_arguments)]
fn rewrite_switch(
    f: &mut Func,
    cfg: &RegionConfig,
    r: RegionId,
    c: BlockId,
    c2: BlockId,
    sel: VReg,
    targets: Vec<(BlockId, u64)>,
    default: (BlockId, u64),
    body: &HashSet<BlockId>,
    bmap: &HashMap<BlockId, BlockId>,
    vmap: &HashMap<VReg, VReg>,
) {
    let total: u64 = targets.iter().map(|(_, n)| *n).sum::<u64>() + default.1;
    let warm_cases: Vec<(i64, BlockId, u64)> = targets
        .iter()
        .enumerate()
        .filter(|(_, (_, n))| !is_cold_count(cfg, *n, total))
        .map(|(k, (t, n))| (k as i64, *t, *n))
        .collect();
    let default_warm = !is_cold_count(cfg, default.1, total);

    if warm_cases.is_empty() && !default_warm {
        // Entirely stale: keep the hottest target unconditionally behind an
        // assert on the hottest case value.
        let (k, t, _) = targets
            .iter()
            .enumerate()
            .map(|(k, (t, n))| (k as i64, *t, *n))
            .max_by_key(|(_, _, n)| *n)
            .unwrap_or((-1, default.0, default.1));
        let id = f.new_assert(r, format!("stale-switch {c}"));
        f.block_mut(c2).insts.push(Inst::effect(Op::Assert {
            kind: AssertKind::IntNe { sel, expected: k },
            id,
        }));
        let nt = map_target(f, r, c, t, body, bmap, vmap);
        f.block_mut(c2).term = Term::Jump(nt);
        return;
    }

    if warm_cases.len() == 1 && !default_warm {
        // The common shape: exactly one hot case.
        let (k, t, _) = warm_cases[0];
        let id = f.new_assert(r, format!("cold-switch {c} (1 warm case)"));
        f.block_mut(c2).insts.push(Inst::effect(Op::Assert {
            kind: AssertKind::IntNe { sel, expected: k },
            id,
        }));
        let nt = map_target(f, r, c, t, body, bmap, vmap);
        f.block_mut(c2).term = Term::Jump(nt);
        return;
    }

    // General chain. Each comparison needs its case constant materialized.
    let mut cur = c2;
    let n_warm = warm_cases.len();
    for (i, (k, t, n)) in warm_cases.iter().enumerate() {
        let is_last = i == n_warm - 1;
        let nt = map_target(f, r, c, *t, body, bmap, vmap);
        if is_last && !default_warm {
            // Assert it is this case, then jump.
            let id = f.new_assert(r, format!("cold-switch {c} tail"));
            f.block_mut(cur).insts.push(Inst::effect(Op::Assert {
                kind: AssertKind::IntNe { sel, expected: *k },
                id,
            }));
            f.block_mut(cur).term = Term::Jump(nt);
            return;
        }
        let kc = f.vreg();
        f.block_mut(cur)
            .insts
            .push(Inst::with_dst(kc, Op::Const(*k)));
        let next = f.add_block(Term::Return(None));
        f.block_mut(next).region = Some(r);
        f.block_mut(next).freq = f.block(cur).freq.saturating_sub(*n);
        f.block_mut(cur).term = Term::Branch {
            op: CmpOp::Eq,
            a: sel,
            b: kc,
            t: nt,
            f: next,
            t_count: *n,
            f_count: f.block(cur).freq.saturating_sub(*n),
        };
        cur = next;
    }
    // Remaining: warm default; assert away each cold case value.
    for (k, (_, n)) in targets.iter().enumerate() {
        if is_cold_count(cfg, *n, total) {
            let kc = f.vreg();
            f.block_mut(cur)
                .insts
                .push(Inst::with_dst(kc, Op::Const(k as i64)));
            let id = f.new_assert(r, format!("cold-switch {c} case {k}"));
            f.block_mut(cur).insts.push(Inst::effect(Op::Assert {
                kind: AssertKind::Cmp {
                    op: CmpOp::Eq,
                    a: sel,
                    b: kc,
                },
                id,
            }));
        }
    }
    let nd = map_target(f, r, c, default.0, body, bmap, vmap);
    f.block_mut(cur).term = Term::Jump(nd);
}

/// Maps an edge target from a region copy: in-body targets go to the copy;
/// anything else exits the region through a fresh `aregion_end` block. The
/// exit block also registers itself with the target's phis.
fn map_target(
    f: &mut Func,
    r: RegionId,
    c_orig: BlockId,
    t: BlockId,
    body: &HashSet<BlockId>,
    bmap: &HashMap<BlockId, BlockId>,
    vmap: &HashMap<VReg, VReg>,
) -> BlockId {
    if body.contains(&t) {
        return bmap[&t];
    }
    // Exit: commit and continue in normal code at `t`.
    let e = f.add_block(Term::Jump(t));
    f.block_mut(e).insts.push(Inst::effect(Op::RegionEnd(r)));
    f.block_mut(e).region = Some(r);
    f.block_mut(e).freq = f.edge_count(c_orig, t);
    // The target's phis gain an input from the exit block, mirroring the
    // value they receive from the original (non-speculative) predecessor.
    let mut additions: Vec<(usize, VReg)> = Vec::new();
    for (idx, inst) in f.block(t).insts.iter().enumerate() {
        if let Op::Phi(ins) = &inst.op {
            let v = ins
                .iter()
                .find(|(p, _)| *p == c_orig)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("phi at {t} lacks input for pred {c_orig}"));
            additions.push((idx, *vmap.get(&v).unwrap_or(&v)));
        }
    }
    for (idx, v) in additions {
        if let Op::Phi(ins) = &mut f.block_mut(t).insts[idx].op {
            ins.push((e, v));
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::verify;
    use hasp_vm::bytecode::{BinOp, MethodId};

    /// Straight-line hot path with one cold side exit:
    /// entry -> a -> (cold | b) -> ret
    fn hot_with_cold_exit() -> Func {
        let mut f = Func::new("h", MethodId(0), 1);
        let x = VReg(0);
        let ret = f.add_block(Term::Return(Some(x)));
        let cold = f.add_block(Term::Jump(ret));
        let b = f.add_block(Term::Jump(ret));
        let y = f.vreg();
        let a = f.add_block(Term::Branch {
            op: CmpOp::Eq,
            a: x,
            b: y,
            t: cold,
            f: b,
            t_count: 1,
            f_count: 999,
        });
        f.block_mut(a).insts.push(Inst::with_dst(y, Op::Const(7)));
        f.block_mut(f.entry).term = Term::Jump(a);
        f.block_mut(f.entry).freq = 1000;
        f.block_mut(a).freq = 1000;
        f.block_mut(b).freq = 999;
        f.block_mut(cold).freq = 1;
        f.block_mut(ret).freq = 1000;
        f
    }

    fn test_cfg() -> RegionConfig {
        RegionConfig {
            min_region_ops: 1,
            ..RegionConfig::default()
        }
    }

    #[test]
    fn forms_region_with_assert_and_commit() {
        let mut f = hot_with_cold_exit();
        let cfg = test_cfg();
        let a = BlockId(4);
        let boundaries: BTreeSet<BlockId> = [a].into_iter().collect();
        let regions = form_regions(&mut f, &boundaries, &cfg);
        assert_eq!(regions.len(), 1);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));

        // A RegionBegin exists with the original block as abort target.
        let begin = f.regions[0].begin;
        match f.block(begin).term {
            Term::RegionBegin { abort, .. } => assert_eq!(abort, a),
            ref other => panic!("unexpected {other:?}"),
        }
        // The copy contains an assert (cold branch converted) and a commit.
        let mut has_assert = false;
        let mut has_end = false;
        for b in f.block_ids() {
            if f.block(b).region.is_some() {
                for i in &f.block(b).insts {
                    has_assert |= matches!(i.op, Op::Assert { .. });
                    has_end |= matches!(i.op, Op::RegionEnd(_));
                }
            }
        }
        assert!(has_assert, "{}", f.display());
        assert!(has_end, "{}", f.display());
        // The original cold block is still reachable (via the abort path).
        let reach: HashSet<BlockId> = f.rpo().into_iter().collect();
        assert!(
            reach.contains(&BlockId(2)),
            "cold path must survive for aborts"
        );
    }

    #[test]
    fn per_iteration_region_on_loop() {
        // entry -> head; head: i<n -> body | exit; body -> head
        let mut f = Func::new("l", MethodId(0), 1);
        let n = VReg(0);
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let i0 = f.vreg();
        let i1 = f.vreg();
        let iphi = f.vreg();
        let one = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(i0, Op::Const(0)));
        f.block_mut(f.entry).term = Term::Jump(head);
        let entry = f.entry;
        f.block_mut(head)
            .insts
            .push(Inst::with_dst(iphi, Op::Phi(vec![(entry, i0), (body, i1)])));
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: iphi,
            b: n,
            t: body,
            f: exit,
            t_count: 10_000,
            f_count: 10,
        };
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(one, Op::Const(1)));
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(i1, Op::Bin(BinOp::Add, iphi, one)));
        f.block_mut(f.entry).freq = 10;
        f.block_mut(head).freq = 10_010;
        f.block_mut(body).freq = 10_000;
        f.block_mut(exit).freq = 10;

        let cfg = test_cfg();
        let boundaries: BTreeSet<BlockId> = [head].into_iter().collect();
        let regions = form_regions(&mut f, &boundaries, &cfg);
        assert_eq!(regions.len(), 1);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));

        // The begin block must carry the loop phi (plus any join phis the
        // SSA repair placed for replicated values).
        let begin = f.regions[0].begin;
        assert!(f.block(begin).phi_count() >= 1, "{}", f.display());
        // The copied latch must re-enter through the begin (commit, then new
        // region per iteration).
        let phi_preds: Vec<BlockId> = match &f.block(begin).insts[0].op {
            Op::Phi(ins) => ins.iter().map(|(p, _)| *p).collect(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(phi_preds.len() >= 2, "{}", f.display());
    }

    #[test]
    fn region_at_entry_moves_function_entry() {
        let mut f = hot_with_cold_exit();
        let cfg = test_cfg();
        let old_entry = f.entry;
        let boundaries: BTreeSet<BlockId> = [old_entry].into_iter().collect();
        form_regions(&mut f, &boundaries, &cfg);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        assert_ne!(f.entry, old_entry);
        assert!(matches!(f.block(f.entry).term, Term::RegionBegin { .. }));
    }
}
