//! CFG normalization before boundary selection: every call gets its own
//! block, because atomic regions terminate at non-inlined calls and "often
//! begin new ones immediately after the call returns" (paper §4). Isolating
//! calls makes call blocks usable as trace boundaries and region stop points.

use hasp_ir::{BlockId, Func, Op, Term};

/// Splits blocks so that each `Call`/`CallVirtual` instruction is the only
/// non-phi instruction of its block. Returns the number of splits performed.
pub fn split_at_calls(f: &mut Func) -> usize {
    let mut splits = 0;
    let mut work: Vec<BlockId> = f.block_ids();
    while let Some(b) = work.pop() {
        if f.block(b).dead {
            continue;
        }
        let insts = &f.block(b).insts;
        let phi_count = f.block(b).phi_count();
        let call_pos = insts.iter().position(|i| i.op.is_call());
        let Some(pos) = call_pos else { continue };

        if pos > phi_count {
            // Split before the call; the tail (starting at the call) moves to
            // a new block, which we revisit.
            let tail = split_after(f, b, pos);
            splits += 1;
            work.push(tail);
        } else if insts.len() > pos + 1 {
            // Call leads the block but has trailing instructions: split after.
            let tail = split_after(f, b, pos + 1);
            splits += 1;
            work.push(tail);
        }
        // else: the call is alone (modulo leading phis) — done.
    }
    splits
}

/// Moves `insts[at..]` and the terminator of `b` into a fresh block, leaving
/// `b` to jump to it. Successor phis are re-pointed at the new block.
fn split_after(f: &mut Func, b: BlockId, at: usize) -> BlockId {
    let tail_insts: Vec<_> = f.block_mut(b).insts.split_off(at);
    let term = std::mem::replace(&mut f.block_mut(b).term, Term::Return(None));
    let freq = f.block(b).freq;
    let region = f.block(b).region;
    let tail = f.add_block(term);
    f.block_mut(tail).insts = tail_insts;
    f.block_mut(tail).freq = freq;
    f.block_mut(tail).region = region;
    f.block_mut(b).term = Term::Jump(tail);
    // Successors' phis must name the new predecessor.
    for s in f.succs(tail) {
        let insts = &mut f.block_mut(s).insts;
        for inst in insts {
            if let Op::Phi(ins) = &mut inst.op {
                for (p, _) in ins.iter_mut() {
                    if *p == b {
                        *p = tail;
                    }
                }
            }
        }
    }
    tail
}

/// True if `b` holds a (non-inlined) call.
pub fn is_call_block(f: &Func, b: BlockId) -> bool {
    f.block(b).insts.iter().any(|i| i.op.is_call())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst};
    use hasp_vm::bytecode::{BinOp, MethodId};

    #[test]
    fn isolates_calls() {
        let mut f = Func::new("t", MethodId(0), 0);
        let a = f.vreg();
        let b = f.vreg();
        let c = f.vreg();
        let d = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::with_dst(a, Op::Const(1)));
        e.insts.push(Inst::with_dst(
            b,
            Op::Call {
                method: MethodId(1),
                args: vec![a],
            },
        ));
        e.insts.push(Inst::with_dst(c, Op::Bin(BinOp::Add, a, b)));
        e.insts.push(Inst::with_dst(
            d,
            Op::Call {
                method: MethodId(1),
                args: vec![c],
            },
        ));
        e.term = Term::Return(Some(d));

        let n = split_at_calls(&mut f);
        assert!(n >= 2, "expected at least two splits, got {n}");
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        // Every call block contains exactly one call and nothing else but phis.
        for bid in f.block_ids() {
            let blk = f.block(bid);
            let calls = blk.insts.iter().filter(|i| i.op.is_call()).count();
            if calls > 0 {
                assert_eq!(calls, 1);
                assert_eq!(blk.insts.len() - blk.phi_count(), 1, "{}", f.display());
            }
        }
    }

    #[test]
    fn call_free_function_untouched() {
        let mut f = Func::new("t", MethodId(0), 0);
        let a = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(a, Op::Const(1)));
        f.block_mut(f.entry).term = Term::Return(Some(a));
        assert_eq!(split_at_calls(&mut f), 0);
        assert_eq!(f.block_ids().len(), 1);
    }
}
