//! Backward liveness analysis (used by lowering/register allocation and by
//! dead-code elimination's treatment of phis).

use std::collections::{HashMap, HashSet};

use crate::func::Func;
use crate::instr::{BlockId, Op, VReg};

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    /// Values live at block entry (phi results included).
    pub live_in: HashMap<BlockId, HashSet<VReg>>,
    /// Values live at block exit.
    pub live_out: HashMap<BlockId, HashSet<VReg>>,
}

impl Liveness {
    /// Computes liveness for all reachable blocks.
    ///
    /// Phi semantics: a phi's operands are live-out of the corresponding
    /// predecessor (not live-in of the phi's block); phi results are defined
    /// at block entry.
    pub fn compute(f: &Func) -> Liveness {
        let blocks = f.rpo();
        let preds = f.preds();

        // Per-block upward-exposed uses and defs (phis excluded from uses).
        let mut gen_: HashMap<BlockId, HashSet<VReg>> = HashMap::new();
        let mut kill: HashMap<BlockId, HashSet<VReg>> = HashMap::new();
        for &b in &blocks {
            let mut g = HashSet::new();
            let mut k = HashSet::new();
            for inst in &f.block(b).insts {
                if !matches!(inst.op, Op::Phi(_)) {
                    for a in inst.op.args() {
                        if !k.contains(&a) {
                            g.insert(a);
                        }
                    }
                }
                if let Some(d) = inst.dst {
                    k.insert(d);
                }
            }
            for a in f.block(b).term.args() {
                if !k.contains(&a) {
                    g.insert(a);
                }
            }
            gen_.insert(b, g);
            kill.insert(b, k);
        }

        // Phi uses attach to predecessor ends.
        let mut phi_uses: HashMap<BlockId, HashSet<VReg>> = HashMap::new();
        for &b in &blocks {
            for inst in f.block(b).phis() {
                if let Op::Phi(ins) = &inst.op {
                    for (p, v) in ins {
                        phi_uses.entry(*p).or_default().insert(*v);
                    }
                }
            }
        }

        let mut live_in: HashMap<BlockId, HashSet<VReg>> =
            blocks.iter().map(|b| (*b, HashSet::new())).collect();
        let mut live_out: HashMap<BlockId, HashSet<VReg>> =
            blocks.iter().map(|b| (*b, HashSet::new())).collect();

        let mut changed = true;
        while changed {
            changed = false;
            // Reverse order converges faster for backward problems.
            for &b in blocks.iter().rev() {
                let mut out: HashSet<VReg> = phi_uses.get(&b).cloned().unwrap_or_default();
                for s in f.succs(b) {
                    if let Some(li) = live_in.get(&s) {
                        out.extend(li.iter().copied());
                    }
                }
                let mut inn: HashSet<VReg> = gen_[&b].clone();
                for v in &out {
                    if !kill[&b].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[&b] {
                    live_out.insert(b, out);
                    changed = true;
                }
                if inn != live_in[&b] {
                    live_in.insert(b, inn);
                    changed = true;
                }
            }
        }
        let _ = preds;
        Liveness { live_in, live_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Inst, Term};
    use hasp_vm::bytecode::{BinOp, CmpOp, MethodId};

    #[test]
    fn loop_carried_value_live_around_loop() {
        // entry: x0=0 -> head: x=phi(entry x0, body x1); branch -> body|exit
        // body: x1 = x + p0 -> head; exit: return x
        let mut f = Func::new("l", MethodId(0), 1);
        let p = VReg(0);
        let x0 = f.vreg();
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let x = f.vreg();
        let x1 = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(x0, Op::Const(0)));
        f.block_mut(f.entry).term = Term::Jump(head);
        let entry = f.entry;
        f.block_mut(head)
            .insts
            .push(Inst::with_dst(x, Op::Phi(vec![(entry, x0), (body, x1)])));
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: p,
            t: body,
            f: exit,
            t_count: 5,
            f_count: 1,
        };
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(x1, Op::Bin(BinOp::Add, x, p)));
        f.block_mut(exit).term = Term::Return(Some(x));

        let lv = Liveness::compute(&f);
        // x1 is live out of body (consumed by head's phi).
        assert!(lv.live_out[&body].contains(&x1));
        // x is live into body and exit.
        assert!(lv.live_in[&body].contains(&x));
        assert!(lv.live_in[&exit].contains(&x));
        // p (parameter) is live into head.
        assert!(lv.live_in[&head].contains(&p));
        // x0 is live out of entry (phi input) but not into body.
        assert!(lv.live_out[&f.entry].contains(&x0));
        assert!(!lv.live_in[&body].contains(&x0));
    }
}
