//! IR instructions, terminators, and operand utilities.
//!
//! The IR is an SSA, CFG-based high-level representation modeled on a JVM
//! JIT's HIR (DRLVM Jitrino in the paper). Two properties matter for the
//! reproduction:
//!
//! * Safety checks are *decomposed*: `GetField` in bytecode becomes
//!   `NullCheck` + `LoadField` here, so redundancy elimination can remove the
//!   check while keeping the access (paper §2).
//! * Asserts (conditional aborts) are plain instructions with source operands
//!   and no control-flow successors — unlike branches they "can be completely
//!   ignored when optimizing other instructions" and can be freely scheduled
//!   and value-numbered (paper §4).

use std::fmt;

use hasp_vm::bytecode::{BinOp, ClassId, CmpOp, FieldId, Intrinsic, MethodId, SlotId};

/// An SSA value (virtual register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic block id within a [`Func`](crate::func::Func).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifies an atomic region within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// Identifies an assertion; the hardware reports the failing assert's id so
/// the runtime can diagnose aborts and recompile (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssertId(pub u32);

/// The condition of an [`Op::Assert`]: the region aborts if the condition
/// holds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AssertKind {
    /// Abort if `a <op> b`.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Abort if `v` is null (speculation: expected non-null).
    Null(VReg),
    /// Abort if the dynamic class of `obj` is not exactly `class`
    /// (devirtualization guard for partially-inlined virtual calls).
    ClassNe {
        /// Receiver.
        obj: VReg,
        /// Expected exact class.
        class: ClassId,
    },
    /// Abort if the lock word of `obj` is held by another thread
    /// (speculative lock elision, paper §4).
    LockHeld(VReg),
    /// Abort if `sel != expected` (residue of converting a cold-heavy switch
    /// into compares, paper §6: "simplify an indirect branch to a
    /// conditional branch").
    IntNe {
        /// Selector value.
        sel: VReg,
        /// The only expected value.
        expected: i64,
    },
}

impl AssertKind {
    /// Operands read by the assertion.
    pub fn args(&self) -> Vec<VReg> {
        match self {
            AssertKind::Cmp { a, b, .. } => vec![*a, *b],
            AssertKind::Null(v) | AssertKind::LockHeld(v) => vec![*v],
            AssertKind::ClassNe { obj, .. } => vec![*obj],
            AssertKind::IntNe { sel, .. } => vec![*sel],
        }
    }

    fn args_mut(&mut self) -> Vec<&mut VReg> {
        match self {
            AssertKind::Cmp { a, b, .. } => vec![a, b],
            AssertKind::Null(v) | AssertKind::LockHeld(v) => vec![v],
            AssertKind::ClassNe { obj, .. } => vec![obj],
            AssertKind::IntNe { sel, .. } => vec![sel],
        }
    }
}

/// An IR operation. Instructions that produce a value carry their
/// destination in [`Inst::dst`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Integer constant.
    Const(i64),
    /// The null reference.
    ConstNull,
    /// SSA phi: one incoming value per predecessor block.
    Phi(Vec<(BlockId, VReg)>),
    /// Copy (inserted when leaving SSA or by pass bookkeeping).
    Copy(VReg),
    /// Binary ALU op. `Div`/`Rem` require a preceding [`Op::DivCheck`].
    Bin(BinOp, VReg, VReg),
    /// Comparison producing 0/1.
    Cmp(CmpOp, VReg, VReg),
    /// Trap (or in-region abort) if the operand is null.
    NullCheck(VReg),
    /// Trap (or in-region abort) unless `0 <= idx < len`.
    BoundsCheck {
        /// Array length operand.
        len: VReg,
        /// Index operand.
        idx: VReg,
    },
    /// Trap (or in-region abort) if the divisor is zero.
    DivCheck(VReg),
    /// Trap (or in-region abort) unless `obj` is null or an instance of
    /// `class` (checked cast).
    CastCheck {
        /// Reference being cast.
        obj: VReg,
        /// Target class.
        class: ClassId,
    },
    /// Allocate an instance.
    New(ClassId),
    /// Allocate an array of the given length.
    NewArray(VReg),
    /// Field load (null check already done separately).
    LoadField {
        /// Base object.
        obj: VReg,
        /// Field.
        field: FieldId,
    },
    /// Field store.
    StoreField {
        /// Base object.
        obj: VReg,
        /// Field.
        field: FieldId,
        /// Value stored.
        val: VReg,
    },
    /// Array element load (checks already done separately).
    LoadElem {
        /// Array object.
        arr: VReg,
        /// Element index.
        idx: VReg,
    },
    /// Array element store.
    StoreElem {
        /// Array object.
        arr: VReg,
        /// Element index.
        idx: VReg,
        /// Value stored.
        val: VReg,
    },
    /// Array length load (null check already done separately).
    ArrayLen(VReg),
    /// Direct call. Never inside an atomic region.
    Call {
        /// Callee.
        method: MethodId,
        /// Arguments.
        args: Vec<VReg>,
    },
    /// Virtual call through a vtable slot. Never inside an atomic region.
    CallVirtual {
        /// Vtable slot.
        slot: SlotId,
        /// Receiver (also passed as first argument).
        recv: VReg,
        /// Remaining arguments.
        args: Vec<VReg>,
        /// Bytecode pc of the original call site — the key into the
        /// interpreter's receiver-class histogram, which drives
        /// devirtualization decisions in the inliner.
        site: u32,
    },
    /// Monitor acquire.
    MonitorEnter(VReg),
    /// Monitor release.
    MonitorExit(VReg),
    /// SLE-elided monitor pair entry: loads the lock word and aborts the
    /// region if it is held by another thread; no store is performed.
    SleCheck(VReg),
    /// `instanceof` producing 0/1.
    InstanceOf {
        /// Reference tested.
        obj: VReg,
        /// Class tested against.
        class: ClassId,
    },
    /// Loads the dynamic class id of a non-null object (used by
    /// devirtualization guards on non-speculative paths).
    LoadClass(VReg),
    /// GC safepoint poll.
    Safepoint,
    /// Host intrinsic.
    Intrin {
        /// Which intrinsic.
        kind: Intrinsic,
        /// Arguments.
        args: Vec<VReg>,
    },
    /// Simulation marker.
    Marker(u32),
    /// Conditional abort of the enclosing atomic region.
    Assert {
        /// Abort condition.
        kind: AssertKind,
        /// Stable id reported by hardware on abort.
        id: AssertId,
    },
    /// Commit the enclosing atomic region (`aregion_end`).
    RegionEnd(RegionId),
}

impl Op {
    /// Operand values read by this op.
    pub fn args(&self) -> Vec<VReg> {
        match self {
            Op::Const(_)
            | Op::ConstNull
            | Op::New(_)
            | Op::Safepoint
            | Op::Marker(_)
            | Op::RegionEnd(_) => vec![],
            Op::Phi(ins) => ins.iter().map(|(_, v)| *v).collect(),
            Op::Copy(v)
            | Op::NullCheck(v)
            | Op::DivCheck(v)
            | Op::NewArray(v)
            | Op::ArrayLen(v)
            | Op::MonitorEnter(v)
            | Op::MonitorExit(v)
            | Op::SleCheck(v)
            | Op::LoadClass(v) => vec![*v],
            Op::Bin(_, a, b) | Op::Cmp(_, a, b) => vec![*a, *b],
            Op::BoundsCheck { len, idx } => vec![*len, *idx],
            Op::CastCheck { obj, .. } | Op::InstanceOf { obj, .. } => vec![*obj],
            Op::LoadField { obj, .. } => vec![*obj],
            Op::StoreField { obj, val, .. } => vec![*obj, *val],
            Op::LoadElem { arr, idx } => vec![*arr, *idx],
            Op::StoreElem { arr, idx, val } => vec![*arr, *idx, *val],
            Op::Call { args, .. } => args.clone(),
            Op::CallVirtual { recv, args, .. } => {
                let mut v = vec![*recv];
                v.extend_from_slice(args);
                v
            }
            Op::Intrin { args, .. } => args.clone(),
            Op::Assert { kind, .. } => kind.args(),
        }
    }

    /// Mutable references to every operand (for renaming).
    pub fn args_mut(&mut self) -> Vec<&mut VReg> {
        match self {
            Op::Const(_)
            | Op::ConstNull
            | Op::New(_)
            | Op::Safepoint
            | Op::Marker(_)
            | Op::RegionEnd(_) => vec![],
            Op::Phi(ins) => ins.iter_mut().map(|(_, v)| v).collect(),
            Op::Copy(v)
            | Op::NullCheck(v)
            | Op::DivCheck(v)
            | Op::NewArray(v)
            | Op::ArrayLen(v)
            | Op::MonitorEnter(v)
            | Op::MonitorExit(v)
            | Op::SleCheck(v)
            | Op::LoadClass(v) => vec![v],
            Op::Bin(_, a, b) | Op::Cmp(_, a, b) => vec![a, b],
            Op::BoundsCheck { len, idx } => vec![len, idx],
            Op::CastCheck { obj, .. } | Op::InstanceOf { obj, .. } => vec![obj],
            Op::LoadField { obj, .. } => vec![obj],
            Op::StoreField { obj, val, .. } => vec![obj, val],
            Op::LoadElem { arr, idx } => vec![arr, idx],
            Op::StoreElem { arr, idx, val } => vec![arr, idx, val],
            Op::Call { args, .. } => args.iter_mut().collect(),
            Op::CallVirtual { recv, args, .. } => {
                let mut v = vec![recv];
                v.extend(args.iter_mut());
                v
            }
            Op::Intrin { args, .. } => args.iter_mut().collect(),
            Op::Assert { kind, .. } => kind.args_mut(),
        }
    }

    /// True for operations with observable effects or control relevance that
    /// dead-code elimination must preserve even when the result is unused.
    ///
    /// Per the paper, asserts "are essential and should not be removed" by
    /// DCE; checks trap; stores, calls, monitors, allocation, safepoints,
    /// markers, and region ops all have effects.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Op::Const(_)
            | Op::ConstNull
            | Op::Phi(_)
            | Op::Copy(_)
            | Op::Bin(_, _, _)
            | Op::Cmp(_, _, _)
            | Op::LoadField { .. }
            | Op::LoadElem { .. }
            | Op::ArrayLen(_)
            | Op::InstanceOf { .. }
            | Op::LoadClass(_) => false,
            // Allocation is pure-ish but its identity is observable (object
            // ids feed the checksum); treat as effectful.
            _ => true,
        }
    }

    /// True for the decomposed safety checks (removable when subsumed by a
    /// dominating equivalent check).
    pub fn is_check(&self) -> bool {
        matches!(
            self,
            Op::NullCheck(_) | Op::BoundsCheck { .. } | Op::DivCheck(_) | Op::CastCheck { .. }
        )
    }

    /// True if this op reads mutable memory (its value can be invalidated by
    /// stores/calls/monitor operations).
    pub fn is_memory_read(&self) -> bool {
        matches!(self, Op::LoadField { .. } | Op::LoadElem { .. })
    }

    /// True if this op can invalidate prior memory reads.
    pub fn is_memory_write(&self) -> bool {
        matches!(
            self,
            Op::StoreField { .. }
                | Op::StoreElem { .. }
                | Op::Call { .. }
                | Op::CallVirtual { .. }
                | Op::MonitorEnter(_)
                | Op::MonitorExit(_)
        )
    }

    /// True for calls (which end atomic regions and act as full barriers).
    pub fn is_call(&self) -> bool {
        matches!(self, Op::Call { .. } | Op::CallVirtual { .. })
    }
}

/// One IR instruction: an optional destination and an operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Result value, if the op produces one.
    pub dst: Option<VReg>,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// Creates an instruction with a destination.
    pub fn with_dst(dst: VReg, op: Op) -> Self {
        Inst { dst: Some(dst), op }
    }

    /// Creates an effect-only instruction.
    pub fn effect(op: Op) -> Self {
        Inst { dst: None, op }
    }
}

/// Block terminators. Conditional terminators carry the observed execution
/// counts of each outgoing edge — region formation is profile-driven.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch: to `t` if `a <op> b`, else to `f`.
    Branch {
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Taken target.
        t: BlockId,
        /// Fall-through target.
        f: BlockId,
        /// Profiled taken count.
        t_count: u64,
        /// Profiled not-taken count.
        f_count: u64,
    },
    /// Multi-way dispatch on `sel` (0-based); last resort is `default`.
    Switch {
        /// Selector.
        sel: VReg,
        /// Per-case (target, profiled count).
        targets: Vec<(BlockId, u64)>,
        /// (default target, profiled count).
        default: (BlockId, u64),
    },
    /// Return from the function.
    Return(Option<VReg>),
    /// Enter an atomic region: control goes to `body` speculatively; on any
    /// abort the hardware restores state and transfers to `abort` (the
    /// non-speculative version). Corresponds to `aregion_begin <alt PC>`.
    RegionBegin {
        /// Which region.
        region: RegionId,
        /// Speculative body entry.
        body: BlockId,
        /// Non-speculative alternate entry (`<alt PC>`).
        abort: BlockId,
    },
}

impl Term {
    /// All successor blocks, in edge order.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Term::Jump(b) => vec![*b],
            Term::Branch { t, f, .. } => vec![*t, *f],
            Term::Switch {
                targets, default, ..
            } => {
                let mut v: Vec<BlockId> = targets.iter().map(|(b, _)| *b).collect();
                v.push(default.0);
                v
            }
            Term::Return(_) => vec![],
            Term::RegionBegin { body, abort, .. } => vec![*body, *abort],
        }
    }

    /// Rewrites every successor equal to `from` into `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        let patch = |b: &mut BlockId| {
            if *b == from {
                *b = to;
            }
        };
        match self {
            Term::Jump(b) => patch(b),
            Term::Branch { t, f, .. } => {
                patch(t);
                patch(f);
            }
            Term::Switch {
                targets, default, ..
            } => {
                for (b, _) in targets.iter_mut() {
                    patch(b);
                }
                patch(&mut default.0);
            }
            Term::Return(_) => {}
            Term::RegionBegin { body, abort, .. } => {
                patch(body);
                patch(abort);
            }
        }
    }

    /// Operand values read by the terminator.
    pub fn args(&self) -> Vec<VReg> {
        match self {
            Term::Branch { a, b, .. } => vec![*a, *b],
            Term::Switch { sel, .. } => vec![*sel],
            Term::Return(Some(v)) => vec![*v],
            _ => vec![],
        }
    }

    /// Mutable references to operand values (for renaming).
    pub fn args_mut(&mut self) -> Vec<&mut VReg> {
        match self {
            Term::Branch { a, b, .. } => vec![a, b],
            Term::Switch { sel, .. } => vec![sel],
            Term::Return(Some(v)) => vec![v],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_args_roundtrip() {
        let mut op = Op::Bin(BinOp::Add, VReg(1), VReg(2));
        assert_eq!(op.args(), vec![VReg(1), VReg(2)]);
        for a in op.args_mut() {
            a.0 += 10;
        }
        assert_eq!(op.args(), vec![VReg(11), VReg(12)]);
    }

    #[test]
    fn side_effects() {
        assert!(!Op::Const(3).has_side_effect());
        assert!(!Op::LoadField {
            obj: VReg(0),
            field: FieldId(0)
        }
        .has_side_effect());
        assert!(Op::StoreField {
            obj: VReg(0),
            field: FieldId(0),
            val: VReg(1)
        }
        .has_side_effect());
        assert!(Op::NullCheck(VReg(0)).has_side_effect());
        assert!(Op::Assert {
            kind: AssertKind::Null(VReg(0)),
            id: AssertId(0)
        }
        .has_side_effect());
        assert!(Op::RegionEnd(RegionId(0)).has_side_effect());
    }

    #[test]
    fn term_retarget_and_succs() {
        let mut t = Term::Branch {
            op: CmpOp::Lt,
            a: VReg(0),
            b: VReg(1),
            t: BlockId(2),
            f: BlockId(3),
            t_count: 10,
            f_count: 90,
        };
        assert_eq!(t.succs(), vec![BlockId(2), BlockId(3)]);
        t.retarget(BlockId(3), BlockId(7));
        assert_eq!(t.succs(), vec![BlockId(2), BlockId(7)]);
    }

    #[test]
    fn region_begin_has_two_succs() {
        let t = Term::RegionBegin {
            region: RegionId(0),
            body: BlockId(1),
            abort: BlockId(2),
        };
        assert_eq!(t.succs(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn assert_kinds_args() {
        let k = AssertKind::Cmp {
            op: CmpOp::Ge,
            a: VReg(4),
            b: VReg(5),
        };
        assert_eq!(k.args(), vec![VReg(4), VReg(5)]);
        assert_eq!(AssertKind::LockHeld(VReg(9)).args(), vec![VReg(9)]);
    }
}
