//! Graphviz export of a function's CFG (atomic regions rendered as clusters).

use std::fmt::Write as _;

use crate::func::Func;
use crate::instr::{Op, Term};

/// Renders `f` as a Graphviz `digraph`. Speculative region blocks are grouped
/// into clusters, mirroring the paper's Figure 1(d)/5(b) drawings.
pub fn to_dot(f: &Func) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", f.name);
    let _ = writeln!(s, "  node [shape=box fontname=monospace];");

    // Group blocks by region.
    let mut regions: Vec<(u32, Vec<_>)> = Vec::new();
    for b in f.block_ids() {
        if let Some(r) = f.block(b).region {
            match regions.iter_mut().find(|(id, _)| *id == r.0) {
                Some((_, v)) => v.push(b),
                None => regions.push((r.0, vec![b])),
            }
        }
    }
    for (r, blocks) in &regions {
        let _ = writeln!(s, "  subgraph cluster_r{r} {{");
        let _ = writeln!(s, "    label=\"atomic region {r}\"; style=dashed;");
        for b in blocks {
            let _ = writeln!(s, "    {b};");
        }
        let _ = writeln!(s, "  }}");
    }

    for b in f.block_ids() {
        let blk = f.block(b);
        let mut label = format!("{b} (freq {})\\l", blk.freq);
        for inst in blk.insts.iter().take(12) {
            let line = match inst.dst {
                Some(d) => format!("{d} = {:?}", short(&inst.op)),
                None => format!("{:?}", short(&inst.op)),
            };
            let _ = write!(label, "{}\\l", line.replace('"', "'"));
        }
        if blk.insts.len() > 12 {
            let _ = write!(label, "... ({} more)\\l", blk.insts.len() - 12);
        }
        let _ = writeln!(s, "  {b} [label=\"{label}\"];");
        match &blk.term {
            Term::Branch {
                t,
                f: fb,
                t_count,
                f_count,
                ..
            } => {
                let _ = writeln!(s, "  {b} -> {t} [label=\"T {t_count}\"];");
                let _ = writeln!(s, "  {b} -> {fb} [label=\"F {f_count}\"];");
            }
            Term::RegionBegin { body, abort, .. } => {
                let _ = writeln!(s, "  {b} -> {body} [label=\"speculate\"];");
                let _ = writeln!(s, "  {b} -> {abort} [label=\"abort\" style=dotted];");
            }
            _ => {
                for t in blk.term.succs() {
                    let _ = writeln!(s, "  {b} -> {t};");
                }
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Trims verbose op debug output for labels.
fn short(op: &Op) -> String {
    let d = format!("{op:?}");
    if d.len() > 60 {
        format!("{}…", &d[..60])
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_vm::bytecode::MethodId;

    #[test]
    fn emits_digraph() {
        let f = Func::new("t", MethodId(0), 0);
        let dot = to_dot(&f);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("b0"));
        assert!(dot.ends_with("}\n"));
    }
}
