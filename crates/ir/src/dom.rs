//! Dominators, post-dominators, and dominance frontiers
//! (Cooper–Harvey–Kennedy iterative algorithm).

use std::collections::{HashMap, HashSet};

use crate::func::Func;
use crate::instr::BlockId;

/// Computes immediate dominators over an abstract graph.
///
/// `nodes` must be a reverse postorder starting at the root; `preds` gives
/// predecessors restricted to `nodes`.
fn compute_idoms(
    nodes: &[BlockId],
    preds: &HashMap<BlockId, Vec<BlockId>>,
) -> HashMap<BlockId, BlockId> {
    let index: HashMap<BlockId, usize> = nodes.iter().enumerate().map(|(i, b)| (*b, i)).collect();
    let root = nodes[0];
    let mut idom: Vec<Option<usize>> = vec![None; nodes.len()];
    idom[0] = Some(0);
    let mut changed = true;
    while changed {
        changed = false;
        for (i, b) in nodes.iter().enumerate().skip(1) {
            let mut new_idom: Option<usize> = None;
            for p in preds.get(b).into_iter().flatten() {
                let Some(&pi) = index.get(p) else { continue };
                if idom[pi].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => pi,
                    Some(cur) => intersect(&idom, pi, cur),
                });
            }
            if let Some(n) = new_idom {
                if idom[i] != Some(n) {
                    idom[i] = Some(n);
                    changed = true;
                }
            }
        }
    }
    nodes
        .iter()
        .enumerate()
        .filter(|(_, b)| **b != root)
        .filter_map(|(i, b)| idom[i].map(|d| (*b, nodes[d])))
        .collect()
}

fn intersect(idom: &[Option<usize>], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while a > b {
            a = idom[a].expect("processed");
        }
        while b > a {
            b = idom[b].expect("processed");
        }
    }
    a
}

/// The dominator tree of a function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: HashMap<BlockId, BlockId>,
    children: HashMap<BlockId, Vec<BlockId>>,
    root: BlockId,
    /// Depth of each node in the tree (root = 0); used for fast
    /// `dominates` queries via ancestor walking.
    depth: HashMap<BlockId, usize>,
}

impl DomTree {
    /// Computes dominators for `f` over reachable blocks.
    pub fn compute(f: &Func) -> Self {
        let rpo = f.rpo();
        let preds = f.preds();
        Self::build(f.entry, &rpo, &preds)
    }

    fn build(root: BlockId, rpo: &[BlockId], preds: &HashMap<BlockId, Vec<BlockId>>) -> Self {
        let idom = compute_idoms(rpo, preds);
        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&b, &d) in &idom {
            children.entry(d).or_default().push(b);
        }
        for c in children.values_mut() {
            c.sort();
        }
        let mut depth = HashMap::new();
        depth.insert(root, 0usize);
        // BFS down the tree.
        let mut queue = vec![root];
        while let Some(b) = queue.pop() {
            let d = depth[&b];
            for &c in children.get(&b).into_iter().flatten() {
                depth.insert(c, d + 1);
                queue.push(c);
            }
        }
        DomTree {
            idom,
            children,
            root,
            depth,
        }
    }

    /// The tree root (function entry).
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// Immediate dominator of `b` (`None` for the root or unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        self.children.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let (Some(&da), Some(mut cur)) = (self.depth.get(&a), Some(b)) else {
            return false;
        };
        loop {
            let Some(&dc) = self.depth.get(&cur) else {
                return false;
            };
            if dc <= da {
                return cur == a;
            }
            match self.idom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Dominator-tree preorder starting at the root.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children(b).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Dominance frontiers (for SSA phi placement).
    pub fn frontiers(&self, f: &Func) -> HashMap<BlockId, HashSet<BlockId>> {
        let preds = f.preds();
        let mut df: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
        for b in f.rpo() {
            let ps = preds.get(&b).cloned().unwrap_or_default();
            if ps.len() >= 2 {
                for p in ps {
                    let mut runner = p;
                    loop {
                        if Some(runner) == self.idom(b) {
                            break;
                        }
                        df.entry(runner).or_default().insert(b);
                        match self.idom(runner) {
                            Some(n) if runner != self.root => runner = n,
                            _ => break,
                        }
                    }
                }
            }
        }
        df
    }
}

/// The post-dominator tree, computed over the reversed CFG with a virtual
/// exit uniting all `Return` blocks (and any infinite-loop tails are simply
/// absent, which is safe for the check-elimination use).
#[derive(Debug, Clone)]
pub struct PostDomTree {
    ipdom: HashMap<BlockId, BlockId>,
    depth: HashMap<BlockId, usize>,
    /// Virtual exit marker: blocks whose immediate post-dominator is the
    /// virtual exit have no entry in `ipdom` but appear in `depth`.
    exits: Vec<BlockId>,
}

impl PostDomTree {
    /// Computes post-dominators for `f`.
    pub fn compute(f: &Func) -> Self {
        // Build the reverse graph over reachable blocks with a virtual exit.
        let rpo = f.rpo();
        let virt = BlockId(u32::MAX);
        let mut rev_preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new(); // preds in reverse graph = succs in CFG
        let mut exits = Vec::new();
        for &b in &rpo {
            let succs = f.succs(b);
            if succs.is_empty() {
                exits.push(b);
                rev_preds.entry(b).or_default().push(virt);
            }
            for s in succs {
                rev_preds.entry(b).or_default().push(s);
            }
        }
        // Reverse postorder of the reverse graph = postorder of CFG from
        // virtual exit; compute by DFS over reverse edges (succ lists).
        let mut rev_succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&b, ps) in &rev_preds {
            for &p in ps {
                rev_succs.entry(p).or_default().push(b);
            }
        }
        let mut order = vec![];
        let mut seen: HashSet<BlockId> = HashSet::new();
        seen.insert(virt);
        let mut stack = vec![(virt, 0usize)];
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = rev_succs.get(&b).cloned().unwrap_or_default();
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if seen.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        let idom = compute_idoms(&order, &rev_preds);
        let mut depth = HashMap::new();
        depth.insert(virt, 0usize);
        // Depths via repeated walking (graph is small).
        fn depth_of(
            b: BlockId,
            idom: &HashMap<BlockId, BlockId>,
            depth: &mut HashMap<BlockId, usize>,
        ) -> usize {
            if let Some(&d) = depth.get(&b) {
                return d;
            }
            let d = match idom.get(&b) {
                Some(&p) => depth_of(p, idom, depth) + 1,
                None => 0,
            };
            depth.insert(b, d);
            d
        }
        for &b in &order {
            depth_of(b, &idom, &mut depth);
        }
        let ipdom = idom.into_iter().filter(|(b, _)| *b != virt).collect();
        PostDomTree {
            ipdom,
            depth,
            exits,
        }
    }

    /// Immediate post-dominator (`None` if it is the virtual exit).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom.get(&b).copied().filter(|p| p.0 != u32::MAX)
    }

    /// True if `a` post-dominates `b` (reflexive): every path from `b` to
    /// function exit passes through `a`.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let Some(&da) = self.depth.get(&a) else {
            return false;
        };
        let mut cur = b;
        loop {
            let Some(&dc) = self.depth.get(&cur) else {
                return false;
            };
            if dc <= da {
                return cur == a;
            }
            match self.ipdom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Blocks that exit the function directly.
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Term;
    use hasp_vm::bytecode::{CmpOp, MethodId};

    /// entry(0) -> A(1) -> {B(2), C(3)} -> D(4) -> return; B -> D, C -> D
    fn diamond() -> Func {
        let mut f = Func::new("t", MethodId(0), 0);
        let d = f.add_block(Term::Return(None));
        let b = f.add_block(Term::Jump(d));
        let c = f.add_block(Term::Jump(d));
        let x = f.vreg();
        let y = f.vreg();
        let a = f.add_block(Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: b,
            f: c,
            t_count: 1,
            f_count: 1,
        });
        f.block_mut(f.entry).term = Term::Jump(a);
        f
    }

    #[test]
    fn diamond_doms() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let (a, b, c, d) = (BlockId(4), BlockId(2), BlockId(3), BlockId(1));
        assert_eq!(dt.idom(b), Some(a));
        assert_eq!(dt.idom(c), Some(a));
        assert_eq!(dt.idom(d), Some(a));
        assert!(dt.dominates(f.entry, d));
        assert!(dt.dominates(a, b));
        assert!(!dt.dominates(b, d));
        assert!(dt.dominates(d, d));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let df = dt.frontiers(&f);
        let (b, c, d) = (BlockId(2), BlockId(3), BlockId(1));
        assert!(df[&b].contains(&d));
        assert!(df[&c].contains(&d));
        assert!(!df.contains_key(&d) || !df[&d].contains(&d));
    }

    #[test]
    fn diamond_postdoms() {
        let f = diamond();
        let pdt = PostDomTree::compute(&f);
        let (a, b, c, d) = (BlockId(4), BlockId(2), BlockId(3), BlockId(1));
        assert!(pdt.post_dominates(d, a));
        assert!(pdt.post_dominates(d, b));
        assert!(!pdt.post_dominates(b, a));
        assert_eq!(pdt.ipdom(a), Some(d));
        assert!(pdt.post_dominates(c, c));
        assert_eq!(pdt.exits(), &[d]);
    }

    #[test]
    fn loop_doms() {
        // entry -> head -> body -> head; head -> exit
        let mut f = Func::new("l", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let x = f.vreg();
        let y = f.vreg();
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: body,
            f: exit,
            t_count: 9,
            f_count: 1,
        };
        f.block_mut(f.entry).term = Term::Jump(head);
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(body), Some(head));
        assert_eq!(dt.idom(exit), Some(head));
        assert!(dt.dominates(head, body));
        let pdt = PostDomTree::compute(&f);
        assert!(pdt.post_dominates(head, body));
        assert!(pdt.post_dominates(exit, head));
    }

    #[test]
    fn preorder_starts_at_root() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let pre = dt.preorder();
        assert_eq!(pre[0], f.entry);
        assert_eq!(pre.len(), 5);
    }
}
