//! SSA construction (Cytron-style: iterated dominance frontiers + dominator
//! tree renaming).
//!
//! Translation produces code where bytecode registers `VReg(0..num_vars)` are
//! mutable variables; this pass rewrites them into SSA form with explicit
//! phis. Temporaries allocated during translation are already single-def and
//! left untouched.

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::func::Func;
use crate::instr::{BlockId, Inst, Op, VReg};

/// Rewrites variables `VReg(0)..VReg(num_vars)` into SSA form.
///
/// Requires every variable to be defined before use on all paths; the
/// translator guarantees this by zero-initializing non-argument variables in
/// the entry block (arguments are live-in at entry).
pub fn construct(f: &mut Func, num_vars: u32) {
    let is_var = |v: VReg| v.0 < num_vars;
    let dt = DomTree::compute(f);
    let frontiers = dt.frontiers(f);
    let reachable: HashSet<BlockId> = f.rpo().into_iter().collect();

    // Def sites per variable.
    let mut def_sites: HashMap<VReg, HashSet<BlockId>> = HashMap::new();
    for &b in &reachable {
        for inst in &f.block(b).insts {
            if let Some(d) = inst.dst {
                if is_var(d) {
                    def_sites.entry(d).or_default().insert(b);
                }
            }
        }
    }
    // Parameters are defined at entry.
    for i in 0..f.params {
        def_sites
            .entry(VReg(u32::from(i)))
            .or_default()
            .insert(f.entry);
    }

    // Insert phi placeholders at iterated dominance frontiers.
    // phi_for[(block, slot)] = variable (slot = index among leading phis).
    let mut phi_var: HashMap<(BlockId, usize), VReg> = HashMap::new();
    let mut vars: Vec<VReg> = def_sites.keys().copied().collect();
    vars.sort();
    for v in vars {
        let mut work: Vec<BlockId> = def_sites[&v].iter().copied().collect();
        work.sort();
        let mut has_phi: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &d in frontiers
                .get(&b)
                .map(|s| s as &HashSet<BlockId>)
                .into_iter()
                .flatten()
            {
                if !reachable.contains(&d) || !has_phi.insert(d) {
                    continue;
                }
                let slot = f.block(d).phi_count();
                f.block_mut(d)
                    .insts
                    .insert(slot, Inst::with_dst(v, Op::Phi(Vec::new())));
                // Re-key any phis recorded after this slot in the same block.
                let mut rekey: Vec<((BlockId, usize), VReg)> = Vec::new();
                for (&(bb, s), &vv) in &phi_var {
                    if bb == d && s >= slot {
                        rekey.push(((bb, s), vv));
                    }
                }
                rekey.sort_by_key(|&((_, s), _)| std::cmp::Reverse(s));
                for ((bb, s), vv) in rekey {
                    phi_var.remove(&(bb, s));
                    phi_var.insert((bb, s + 1), vv);
                }
                phi_var.insert((d, slot), v);
                if !def_sites[&v].contains(&d) {
                    work.push(d);
                }
            }
        }
    }

    // Renaming via dominator-tree walk.
    let mut stacks: HashMap<VReg, Vec<VReg>> = HashMap::new();
    for i in 0..f.params {
        // Parameter values arrive in their original registers.
        stacks.insert(VReg(u32::from(i)), vec![VReg(u32::from(i))]);
    }

    rename(f, &dt, f.entry, num_vars, &mut stacks, &phi_var);
}

fn rename(
    f: &mut Func,
    dt: &DomTree,
    b: BlockId,
    num_vars: u32,
    stacks: &mut HashMap<VReg, Vec<VReg>>,
    phi_var: &HashMap<(BlockId, usize), VReg>,
) {
    let is_var = |v: VReg| v.0 < num_vars;
    let mut pushed: Vec<VReg> = Vec::new();

    // Rewrite instructions.
    let n_insts = f.block(b).insts.len();
    for i in 0..n_insts {
        let is_phi = matches!(f.block(b).insts[i].op, Op::Phi(_));
        if !is_phi {
            // Replace variable uses with current SSA names.
            let mut inst = f.block(b).insts[i].clone();
            for a in inst.op.args_mut() {
                if is_var(*a) {
                    *a = *stacks
                        .get(a)
                        .and_then(|s| s.last())
                        .unwrap_or_else(|| panic!("use of {a} before def in {}", f.name));
                }
            }
            f.block_mut(b).insts[i] = inst;
        }
        // New SSA name for variable defs (including phis).
        if let Some(d) = f.block(b).insts[i].dst {
            if is_var(d) {
                let fresh = f.vreg();
                f.block_mut(b).insts[i].dst = Some(fresh);
                stacks.entry(d).or_default().push(fresh);
                pushed.push(d);
            }
        }
    }
    // Terminator uses.
    {
        let mut term = f.block(b).term.clone();
        for a in term.args_mut() {
            if is_var(*a) {
                *a = *stacks
                    .get(a)
                    .and_then(|s| s.last())
                    .unwrap_or_else(|| panic!("use of {a} in terminator before def in {}", f.name));
            }
        }
        f.block_mut(b).term = term;
    }

    // Fill phi operands in successors.
    let mut succs = f.succs(b);
    succs.dedup();
    let mut seen: HashSet<BlockId> = HashSet::new();
    for s in succs {
        if !seen.insert(s) {
            continue;
        }
        let phi_count = f.block(s).phi_count();
        for slot in 0..phi_count {
            let Some(&v) = phi_var.get(&(s, slot)) else {
                continue;
            };
            let cur = stacks
                .get(&v)
                .and_then(|st| st.last())
                .copied()
                .unwrap_or_else(|| panic!("phi input for {v} undefined on edge {b}->{s}"));
            if let Op::Phi(ins) = &mut f.block_mut(s).insts[slot].op {
                ins.push((b, cur));
            }
        }
    }

    // Recurse into dominated blocks.
    for &c in dt.children(b).to_vec().iter() {
        rename(f, dt, c, num_vars, stacks, phi_var);
    }

    // Pop this block's definitions.
    for v in pushed {
        stacks.get_mut(&v).expect("pushed").pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Term;
    use crate::verify;
    use hasp_vm::bytecode::{BinOp, CmpOp, MethodId};

    /// Builds pre-SSA code equivalent to:
    /// ```text
    /// x = 0; i = 0;
    /// while (i < n) { x = x + i; i = i + 1; }
    /// return x
    /// ```
    /// with `n` as VReg(0) (parameter), `x` = VReg(1), `i` = VReg(2).
    fn loop_func() -> Func {
        let mut f = Func::new("l", MethodId(0), 1);
        let (n, x, i) = (VReg(0), VReg(1), VReg(2));
        f.vreg(); // reserve v1
        f.vreg(); // reserve v2
        let exit = f.add_block(Term::Return(Some(x)));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(x, Op::Const(0)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(i, Op::Const(0)));
        f.block_mut(f.entry).term = Term::Jump(head);
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: i,
            b: n,
            t: body,
            f: exit,
            t_count: 10,
            f_count: 1,
        };
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(x, Op::Bin(BinOp::Add, x, i)));
        let one = f.vreg();
        f.block_mut(body)
            .insts
            .insert(0, Inst::with_dst(one, Op::Const(1)));
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(i, Op::Bin(BinOp::Add, i, one)));
        f
    }

    #[test]
    fn loop_gets_phis_at_header() {
        let mut f = loop_func();
        construct(&mut f, 3);
        verify::verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        let head = BlockId(2);
        let phis = f.block(head).phi_count();
        assert_eq!(
            phis,
            2,
            "x and i need phis at the loop header:\n{}",
            f.display()
        );
        // Each phi has two inputs: entry and body.
        for inst in f.block(head).phis() {
            if let Op::Phi(ins) = &inst.op {
                assert_eq!(ins.len(), 2);
            }
        }
    }

    #[test]
    fn straightline_needs_no_phis() {
        let mut f = Func::new("s", MethodId(0), 1);
        let v = VReg(1);
        f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v, Op::Const(5)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v, Op::Bin(BinOp::Add, v, VReg(0))));
        f.block_mut(f.entry).term = Term::Return(Some(v));
        construct(&mut f, 2);
        verify::verify(&f).unwrap();
        let phis: usize = f.block_ids().iter().map(|b| f.block(*b).phi_count()).sum();
        assert_eq!(phis, 0);
        // The redefinition got a fresh name and the return uses it.
        match f.block(f.entry).term {
            Term::Return(Some(r)) => {
                assert_eq!(r, f.block(f.entry).insts[1].dst.unwrap());
                assert_ne!(r, f.block(f.entry).insts[0].dst.unwrap());
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn diamond_join_gets_phi() {
        // if (p) v = 1 else v = 2; return v
        let mut f = Func::new("d", MethodId(0), 1);
        let v = VReg(1);
        f.vreg();
        let join = f.add_block(Term::Return(Some(v)));
        let t = f.add_block(Term::Jump(join));
        let e = f.add_block(Term::Jump(join));
        f.block_mut(t).insts.push(Inst::with_dst(v, Op::Const(1)));
        f.block_mut(e).insts.push(Inst::with_dst(v, Op::Const(2)));
        let zero = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(zero, Op::Const(0)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v, Op::Const(0)));
        f.block_mut(f.entry).term = Term::Branch {
            op: CmpOp::Ne,
            a: VReg(0),
            b: zero,
            t,
            f: e,
            t_count: 1,
            f_count: 1,
        };
        construct(&mut f, 2);
        verify::verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        assert_eq!(f.block(join).phi_count(), 1, "{}", f.display());
    }
}
