//! Functions: CFG container, block management, traversal utilities.

use std::collections::HashMap;

use hasp_vm::bytecode::MethodId;

use crate::instr::{AssertId, BlockId, Inst, Op, RegionId, Term, VReg};

/// A basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Instructions (phis, if any, come first).
    pub insts: Vec<Inst>,
    /// Terminator.
    pub term: Term,
    /// Profiled execution count.
    pub freq: u64,
    /// The atomic region this block belongs to, if it is a speculative copy.
    pub region: Option<RegionId>,
    /// Dead blocks are skipped by traversals (tombstoned rather than removed
    /// so `BlockId`s stay stable).
    pub dead: bool,
}

impl Block {
    fn new(term: Term) -> Self {
        Block {
            insts: Vec::new(),
            term,
            freq: 0,
            region: None,
            dead: false,
        }
    }

    /// Iterator over the phi instructions at the head of the block.
    pub fn phis(&self) -> impl Iterator<Item = &Inst> {
        self.insts.iter().take_while(|i| matches!(i.op, Op::Phi(_)))
    }

    /// Number of leading phi instructions.
    pub fn phi_count(&self) -> usize {
        self.insts
            .iter()
            .take_while(|i| matches!(i.op, Op::Phi(_)))
            .count()
    }
}

/// Metadata about one atomic region of a function. Populated by region
/// formation (`hasp-core`).
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// The block whose terminator is the `RegionBegin`.
    pub begin: BlockId,
    /// Non-speculative alternate entry (the `<alt PC>`).
    pub abort_target: BlockId,
    /// Static size estimate (HIR ops) at formation time.
    pub size_estimate: u64,
}

/// Metadata about one assertion: where it came from, for abort diagnosis and
/// adaptive recompilation (paper §3.2, §7).
#[derive(Debug, Clone)]
pub struct AssertInfo {
    /// The region the assert belongs to.
    pub region: RegionId,
    /// Human-readable provenance (e.g. "cold branch m:12").
    pub origin: String,
}

/// A function under compilation: CFG plus region/assert metadata.
#[derive(Debug, Clone)]
pub struct Func {
    /// Name (for diagnostics).
    pub name: String,
    /// The bytecode method this was translated from.
    pub method: MethodId,
    /// Number of parameters; on entry, `VReg(0)..VReg(params-1)` hold them.
    pub params: u16,
    /// Entry block.
    pub entry: BlockId,
    blocks: Vec<Block>,
    next_vreg: u32,
    /// Atomic regions formed in this function, indexed by [`RegionId`].
    pub regions: Vec<RegionInfo>,
    /// Assertions, indexed by [`AssertId`].
    pub asserts: Vec<AssertInfo>,
}

impl Func {
    /// Creates a function with a single empty entry block ending in
    /// `Return(None)`.
    pub fn new(name: impl Into<String>, method: MethodId, params: u16) -> Self {
        Func {
            name: name.into(),
            method,
            params,
            entry: BlockId(0),
            blocks: vec![Block::new(Term::Return(None))],
            next_vreg: u32::from(params),
            regions: Vec::new(),
            asserts: Vec::new(),
        }
    }

    /// Allocates a fresh SSA value.
    pub fn vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Number of SSA values allocated so far.
    pub fn vreg_count(&self) -> u32 {
        self.next_vreg
    }

    /// Appends a new block with the given terminator.
    pub fn add_block(&mut self, term: Term) -> BlockId {
        self.blocks.push(Block::new(term));
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Shared access to a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.0 as usize]
    }

    /// Total number of block slots (including dead ones).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Ids of all live blocks in allocation order.
    pub fn block_ids(&self) -> Vec<BlockId> {
        (0..self.blocks.len())
            .map(|i| BlockId(i as u32))
            .filter(|b| !self.block(*b).dead)
            .collect()
    }

    /// Successors of `b` in edge order.
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b).term.succs()
    }

    /// Predecessor map over live, reachable blocks.
    pub fn preds(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in self.reachable() {
            preds.entry(b).or_default();
            for s in self.succs(b) {
                preds.entry(s).or_default().push(b);
            }
        }
        preds
    }

    /// Blocks reachable from the entry, in reverse postorder.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut order = Vec::new();
        let mut state = vec![0u8; self.blocks.len()]; // 0 unvisited, 1 on stack, 2 done
                                                      // Iterative DFS computing postorder.
        let mut stack = vec![(self.entry, 0usize)];
        state[self.entry.0 as usize] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = self.succs(b);
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if state[s.0 as usize] == 0 {
                    state[s.0 as usize] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Blocks reachable from the entry (arbitrary order).
    pub fn reachable(&self) -> Vec<BlockId> {
        self.rpo()
    }

    /// Tombstones blocks not reachable from the entry. Returns how many died.
    pub fn remove_unreachable(&mut self) -> usize {
        let live: std::collections::HashSet<BlockId> = self.rpo().into_iter().collect();
        let mut killed = 0;
        for i in 0..self.blocks.len() {
            let id = BlockId(i as u32);
            if !live.contains(&id) && !self.blocks[i].dead {
                self.blocks[i].dead = true;
                self.blocks[i].insts.clear();
                killed += 1;
            }
        }
        // Phis may reference dead predecessors; prune those inputs.
        if killed > 0 {
            let preds = self.preds();
            for b in self.block_ids() {
                let pred_set: Vec<BlockId> = preds.get(&b).cloned().unwrap_or_default();
                for inst in &mut self.blocks[b.0 as usize].insts {
                    if let Op::Phi(ins) = &mut inst.op {
                        ins.retain(|(p, _)| pred_set.contains(p));
                    }
                }
            }
        }
        killed
    }

    /// Splits the edge `from -> to` by inserting a fresh empty block.
    /// Phi inputs in `to` are rewritten to come from the new block.
    /// Returns the new block's id.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        let mid = self.add_block(Term::Jump(to));
        let freq = self.edge_count(from, to);
        self.block_mut(mid).freq = freq;
        self.block_mut(mid).region = self.block(from).region;
        self.block_mut(from).term.retarget(to, mid);
        for inst in &mut self.blocks[to.0 as usize].insts {
            if let Op::Phi(ins) = &mut inst.op {
                for (p, _) in ins.iter_mut() {
                    if *p == from {
                        *p = mid;
                    }
                }
            }
        }
        mid
    }

    /// Profiled count of the edge `from -> to` (0 if absent or unprofiled).
    pub fn edge_count(&self, from: BlockId, to: BlockId) -> u64 {
        match &self.block(from).term {
            Term::Jump(b) => {
                if *b == to {
                    self.block(from).freq
                } else {
                    0
                }
            }
            Term::Branch {
                t,
                f,
                t_count,
                f_count,
                ..
            } => {
                let mut n = 0;
                if *t == to {
                    n += t_count;
                }
                if *f == to {
                    n += f_count;
                }
                n
            }
            Term::Switch {
                targets, default, ..
            } => {
                let mut n = 0;
                for (b, c) in targets {
                    if *b == to {
                        n += c;
                    }
                }
                if default.0 == to {
                    n += default.1;
                }
                n
            }
            Term::Return(_) => 0,
            Term::RegionBegin { body, .. } => {
                if *body == to {
                    self.block(from).freq
                } else {
                    0
                }
            }
        }
    }

    /// Total static instruction count over live blocks (HIR ops; used for
    /// the paper's R = 200 region-size budget).
    pub fn size(&self) -> u64 {
        self.block_ids()
            .iter()
            .map(|b| self.block(*b).insts.len() as u64 + 1)
            .sum()
    }

    /// Registers a new assert and returns its id.
    pub fn new_assert(&mut self, region: RegionId, origin: impl Into<String>) -> AssertId {
        self.asserts.push(AssertInfo {
            region,
            origin: origin.into(),
        });
        AssertId((self.asserts.len() - 1) as u32)
    }

    /// Registers a new region and returns its id.
    pub fn new_region(&mut self, info: RegionInfo) -> RegionId {
        self.regions.push(info);
        RegionId((self.regions.len() - 1) as u32)
    }

    /// Pretty-prints the function for debugging and golden tests.
    pub fn display(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "func {} (params {}) entry {}",
            self.name, self.params, self.entry
        );
        for b in self.block_ids() {
            let blk = self.block(b);
            let region = blk
                .region
                .map(|r| format!(" region r{}", r.0))
                .unwrap_or_default();
            let _ = writeln!(s, "{b}: freq {}{}", blk.freq, region);
            for i in &blk.insts {
                match i.dst {
                    Some(d) => {
                        let _ = writeln!(s, "  {d} = {:?}", i.op);
                    }
                    None => {
                        let _ = writeln!(s, "  {:?}", i.op);
                    }
                }
            }
            let _ = writeln!(s, "  -> {:?}", blk.term);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_vm::bytecode::CmpOp;

    fn diamond() -> Func {
        // entry -> (then | else) -> join -> return
        let mut f = Func::new("d", MethodId(0), 0);
        let join = f.add_block(Term::Return(None));
        let then_ = f.add_block(Term::Jump(join));
        let else_ = f.add_block(Term::Jump(join));
        let a = f.vreg();
        let b = f.vreg();
        f.block_mut(f.entry).term = Term::Branch {
            op: CmpOp::Lt,
            a,
            b,
            t: then_,
            f: else_,
            t_count: 30,
            f_count: 70,
        };
        f
    }

    #[test]
    fn rpo_visits_all_reachable_once() {
        let f = diamond();
        let rpo = f.rpo();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        // join must come after both branches.
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).unwrap();
        assert!(pos(BlockId(1)) > pos(BlockId(2)));
        assert!(pos(BlockId(1)) > pos(BlockId(3)));
    }

    #[test]
    fn preds_of_join() {
        let f = diamond();
        let preds = f.preds();
        let mut p = preds[&BlockId(1)].clone();
        p.sort();
        assert_eq!(p, vec![BlockId(2), BlockId(3)]);
    }

    #[test]
    fn unreachable_removed_and_phis_pruned() {
        let mut f = diamond();
        // Add an unreachable block feeding a phi in join.
        let orphan = f.add_block(Term::Jump(BlockId(1)));
        let v = f.vreg();
        let w = f.vreg();
        let d = f.vreg();
        f.block_mut(BlockId(1)).insts.push(Inst::with_dst(
            d,
            Op::Phi(vec![(BlockId(2), v), (BlockId(3), v), (orphan, w)]),
        ));
        assert_eq!(f.remove_unreachable(), 1);
        match &f.block(BlockId(1)).insts[0].op {
            Op::Phi(ins) => assert_eq!(ins.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn split_edge_rewrites_phi() {
        let mut f = diamond();
        let v2 = f.vreg();
        let v3 = f.vreg();
        let d = f.vreg();
        f.block_mut(BlockId(1)).insts.push(Inst::with_dst(
            d,
            Op::Phi(vec![(BlockId(2), v2), (BlockId(3), v3)]),
        ));
        let mid = f.split_edge(BlockId(2), BlockId(1));
        assert_eq!(f.succs(BlockId(2)), vec![mid]);
        match &f.block(BlockId(1)).insts[0].op {
            Op::Phi(ins) => {
                assert!(ins.iter().any(|(p, v)| *p == mid && *v == v2));
                assert!(!ins.iter().any(|(p, _)| *p == BlockId(2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn edge_counts() {
        let f = diamond();
        assert_eq!(f.edge_count(f.entry, BlockId(2)), 30);
        assert_eq!(f.edge_count(f.entry, BlockId(3)), 70);
        assert_eq!(
            f.edge_count(BlockId(2), BlockId(1)),
            f.block(BlockId(2)).freq
        );
    }
}
