//! SSA repair after code replication.
//!
//! Region replication (and any other duplication) creates several
//! definitions of what was one SSA value: the original and its copies. Uses
//! downstream of the duplicated code are then no longer dominated by any
//! single definition. [`repair`] performs single-variable SSA
//! reconstruction: it treats the group of definitions as assignments to one
//! variable, inserts phis at the iterated dominance frontier of the
//! definition sites, and rewrites every use to its nearest reaching
//! definition (the classic SSA-updater algorithm).

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::func::Func;
use crate::instr::{BlockId, Inst, Op, VReg};

/// Rewrites all uses of the values in `group` (the original definition and
/// its replicas) to reaching definitions, inserting join phis as needed.
///
/// Preconditions: every member of `group` is defined at most once; on every
/// path reaching a use, at least one member is defined (paths where none is
/// defined get a synthesized zero — such paths cannot consume the value
/// meaningfully, or the input was broken before replication).
pub fn repair(f: &mut Func, group: &[VReg]) {
    let dt = DomTree::compute(f);
    let frontiers = dt.frontiers(f);
    repair_with(f, group, &dt, &frontiers);
}

/// [`repair`] with precomputed dominator structures. Inserting phis does not
/// change the CFG, so one `DomTree`/frontier computation can be shared across
/// many groups after a single replication.
pub fn repair_with(
    f: &mut Func,
    group: &[VReg],
    dt: &DomTree,
    frontiers: &std::collections::HashMap<BlockId, HashSet<BlockId>>,
) {
    let members: HashSet<VReg> = group.iter().copied().collect();
    let reachable: Vec<BlockId> = f.rpo();
    let reachable_set: HashSet<BlockId> = reachable.iter().copied().collect();

    // Definition sites.
    let mut def_blocks: HashSet<BlockId> = HashSet::new();
    for &b in &reachable {
        for inst in &f.block(b).insts {
            if let Some(d) = inst.dst {
                if members.contains(&d) {
                    def_blocks.insert(b);
                }
            }
        }
    }
    if def_blocks.len() <= 1 {
        return; // a single def dominates all its uses already
    }

    // Iterated dominance frontier → join phi placement.
    let mut phi_at: HashMap<BlockId, VReg> = HashMap::new();
    let mut work: Vec<BlockId> = def_blocks.iter().copied().collect();
    work.sort();
    let mut placed: HashSet<BlockId> = HashSet::new();
    while let Some(b) = work.pop() {
        for &d in frontiers.get(&b).into_iter().flatten() {
            if !reachable_set.contains(&d) || !placed.insert(d) {
                continue;
            }
            let fresh = f.vreg();
            f.block_mut(d)
                .insts
                .insert(0, Inst::with_dst(fresh, Op::Phi(Vec::new())));
            phi_at.insert(d, fresh);
            if !def_blocks.contains(&d) {
                work.push(d);
            }
        }
    }

    // Reaching-definition walk over the dominator tree.
    let mut stack: Vec<VReg> = Vec::new();
    walk(f, dt, dt.root(), &members, &phi_at, &mut stack);
}

fn walk(
    f: &mut Func,
    dt: &DomTree,
    b: BlockId,
    members: &HashSet<VReg>,
    phi_at: &HashMap<BlockId, VReg>,
    stack: &mut Vec<VReg>,
) {
    let mut pushed = 0usize;
    if let Some(&pd) = phi_at.get(&b) {
        stack.push(pd);
        pushed += 1;
    }
    let n = f.block(b).insts.len();
    for i in 0..n {
        let inst = &mut f.block_mut(b).insts[i];
        let is_phi = matches!(inst.op, Op::Phi(_));
        if !is_phi {
            for a in inst.op.args_mut() {
                if members.contains(a) {
                    *a = *stack.last().unwrap_or_else(|| {
                        panic!("use of replicated value with no reaching def in {b}")
                    });
                }
            }
        }
        if let Some(d) = inst.dst {
            if members.contains(&d) {
                stack.push(d);
                pushed += 1;
            }
        }
    }
    {
        let mut term = f.block(b).term.clone();
        for a in term.args_mut() {
            if members.contains(a) {
                *a = *stack
                    .last()
                    .unwrap_or_else(|| panic!("terminator use with no reaching def in {b}"));
            }
        }
        f.block_mut(b).term = term;
    }

    // Feed successors: fill join phis and rewrite existing phi inputs
    // arriving from this block.
    let mut succs = f.succs(b);
    succs.sort();
    succs.dedup();
    for s in succs {
        let reaching = stack.last().copied();
        let sb = &mut f.block_mut(s).insts;
        for inst in sb.iter_mut() {
            let dst = inst.dst;
            if let Op::Phi(ins) = &mut inst.op {
                let is_join = phi_at.get(&s) == dst.as_ref();
                if is_join {
                    if !ins.iter().any(|(p, _)| *p == b) {
                        // Paths without a def contribute a synthesized zero
                        // (dead on such paths).
                        ins.push((b, reaching.unwrap_or(VReg(u32::MAX))));
                    }
                } else {
                    for (p, v) in ins.iter_mut() {
                        if *p == b && members.contains(v) {
                            *v = reaching
                                .unwrap_or_else(|| panic!("phi input without reaching def at {b}"));
                        }
                    }
                }
            }
        }
    }

    for c in dt.children(b).to_vec() {
        walk(f, dt, c, members, phi_at, stack);
    }
    for _ in 0..pushed {
        stack.pop();
    }
}

/// Post-pass: any join phi input left as the `VReg(u32::MAX)` placeholder is
/// materialized as a zero constant in the predecessor. Returns the number of
/// materializations.
pub fn materialize_undef_inputs(f: &mut Func) -> usize {
    let mut fixes: Vec<(BlockId, BlockId, usize)> = Vec::new(); // (pred, block, inst idx)
    for b in f.block_ids() {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if let Op::Phi(ins) = &inst.op {
                for (p, v) in ins {
                    if v.0 == u32::MAX {
                        fixes.push((*p, b, i));
                    }
                }
            }
        }
    }
    let count = fixes.len();
    for (p, b, i) in fixes {
        let z = f.vreg();
        let at = f.block(p).insts.len();
        f.block_mut(p)
            .insts
            .insert(at, Inst::with_dst(z, Op::Const(0)));
        if let Op::Phi(ins) = &mut f.block_mut(b).insts[i].op {
            for (pp, v) in ins.iter_mut() {
                if *pp == p && v.0 == u32::MAX {
                    *v = z;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Term;
    use crate::verify;
    use hasp_vm::bytecode::{BinOp, CmpOp, MethodId};

    /// entry -> {orig, copy} -> join -> use(v_orig)
    /// The copy defines v2 (a replica of v1); the use in join must become a
    /// phi of both.
    #[test]
    fn diamond_copy_gets_phi() {
        let mut f = Func::new("t", MethodId(0), 1);
        let p = VReg(0);
        let join = f.add_block(Term::Return(None));
        let orig = f.add_block(Term::Jump(join));
        let copy = f.add_block(Term::Jump(join));
        let v1 = f.vreg();
        let v2 = f.vreg();
        let z = f.vreg();
        f.block_mut(orig)
            .insts
            .push(Inst::with_dst(v1, Op::Const(10)));
        f.block_mut(copy)
            .insts
            .push(Inst::with_dst(v2, Op::Const(10)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(z, Op::Const(0)));
        f.block_mut(f.entry).term = Term::Branch {
            op: CmpOp::Eq,
            a: p,
            b: z,
            t: orig,
            f: copy,
            t_count: 1,
            f_count: 1,
        };
        let out = f.vreg();
        f.block_mut(join)
            .insts
            .push(Inst::with_dst(out, Op::Bin(BinOp::Add, v1, v1)));
        f.block_mut(join).term = Term::Return(Some(out));
        assert!(verify(&f).is_err(), "broken before repair");

        repair(&mut f, &[v1, v2]);
        materialize_undef_inputs(&mut f);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        // join got a phi over (orig v1, copy v2).
        match &f.block(join).insts[0].op {
            Op::Phi(ins) => {
                let mut vals: Vec<VReg> = ins.iter().map(|(_, v)| *v).collect();
                vals.sort();
                assert_eq!(vals, vec![v1, v2]);
            }
            other => panic!("expected join phi, got {other:?}"),
        }
    }

    /// Loop-shaped repair: def before loop and def of the replica inside the
    /// loop; use after the loop sees a header phi.
    #[test]
    fn loop_copy_gets_header_phi() {
        let mut f = Func::new("t", MethodId(0), 1);
        let p = VReg(0);
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let v1 = f.vreg();
        let v2 = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v1, Op::Const(1)));
        f.block_mut(f.entry).term = Term::Jump(head);
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: p,
            b: p,
            t: body,
            f: exit,
            t_count: 5,
            f_count: 1,
        };
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(v2, Op::Bin(BinOp::Add, v1, v1)));
        f.block_mut(exit).term = Term::Return(Some(v1));

        repair(&mut f, &[v1, v2]);
        materialize_undef_inputs(&mut f);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        assert!(
            f.block(head).phi_count() >= 1,
            "header needs a merge phi:\n{}",
            f.display()
        );
    }

    #[test]
    fn single_def_untouched() {
        let mut f = Func::new("t", MethodId(0), 0);
        let v = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v, Op::Const(3)));
        f.block_mut(f.entry).term = Term::Return(Some(v));
        repair(&mut f, &[v, VReg(99)]);
        verify(&f).unwrap();
        assert_eq!(f.block(f.entry).insts.len(), 1);
    }
}
