//! Natural-loop detection and loop utilities (headers, pre-headers, exits,
//! nesting order) — Algorithm 1 processes "loops in post order" (innermost
//! first).

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::func::Func;
use crate::instr::{BlockId, Term};

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edge(s)).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
    /// Loops whose headers are strictly inside this loop.
    pub depth: usize,
}

impl Loop {
    /// Blocks outside the loop reachable by one edge from inside (loop
    /// exits' *targets*).
    pub fn exit_targets(&self, f: &Func) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in &self.blocks {
            for s in f.succs(b) {
                if !self.blocks.contains(&s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out.sort();
        out
    }

    /// Blocks inside the loop with an edge leaving the loop.
    pub fn exiting_blocks(&self, f: &Func) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self
            .blocks
            .iter()
            .copied()
            .filter(|&b| f.succs(b).iter().any(|s| !self.blocks.contains(s)))
            .collect();
        out.sort();
        out
    }

    /// Blocks inside the loop that branch back to the header.
    pub fn latches(&self, f: &Func) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self
            .blocks
            .iter()
            .copied()
            .filter(|&b| f.succs(b).contains(&self.header))
            .collect();
        out.sort();
        out
    }
}

/// All natural loops of a function.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Finds natural loops: for each back edge `t -> h` where `h` dominates
    /// `t`, the loop body is everything that reaches `t` without passing
    /// `h`. Back edges sharing a header are merged into one loop.
    pub fn compute(f: &Func, dt: &DomTree) -> Self {
        let preds = f.preds();
        let mut by_header: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
        for b in f.rpo() {
            for s in f.succs(b) {
                if dt.dominates(s, b) {
                    // b -> s is a back edge.
                    let body = by_header.entry(s).or_default();
                    body.insert(s);
                    // Walk predecessors from the latch up to the header.
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in preds.get(&x).into_iter().flatten() {
                                if !body.contains(&p) {
                                    stack.push(p);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, blocks)| Loop {
                header,
                blocks,
                depth: 0,
            })
            .collect();
        // Depth = number of other loops containing this loop's header.
        let depths: Vec<usize> = loops
            .iter()
            .map(|l| {
                loops
                    .iter()
                    .filter(|o| o.header != l.header && o.blocks.contains(&l.header))
                    .count()
            })
            .collect();
        for (l, d) in loops.iter_mut().zip(depths) {
            l.depth = d;
        }
        // Post order: innermost (deepest) first; tie-break on header id for
        // determinism.
        loops.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.header.cmp(&b.header)));
        LoopForest { loops }
    }

    /// Loops innermost-first ("LoopsInPostOrder" of Algorithm 1).
    pub fn post_order(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.blocks.contains(&b))
    }

    /// True if `b` is a loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == b)
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

/// Returns the unique pre-header of `loop_` (the single non-latch
/// predecessor of the header that has the header as its only successor),
/// or creates one by splitting the non-back edges into the header.
pub fn ensure_preheader(f: &mut Func, l: &Loop) -> BlockId {
    let preds = f.preds();
    let outside: Vec<BlockId> = preds
        .get(&l.header)
        .into_iter()
        .flatten()
        .copied()
        .filter(|p| !l.blocks.contains(p))
        .collect();
    if outside.len() == 1 {
        let p = outside[0];
        if f.succs(p) == vec![l.header] {
            return p;
        }
    }
    // Create a fresh pre-header and retarget all outside edges through it.
    let ph = f.add_block(Term::Jump(l.header));
    let mut freq = 0;
    for p in &outside {
        freq += f.edge_count(*p, l.header);
    }
    f.block_mut(ph).freq = freq;
    for p in outside {
        f.block_mut(p).term.retarget(l.header, ph);
        // Phi inputs from p now flow through ph.
        for inst in &mut f.block_mut(l.header).insts {
            if let crate::instr::Op::Phi(ins) = &mut inst.op {
                for (pb, _) in ins.iter_mut() {
                    if *pb == p {
                        *pb = ph;
                    }
                }
            }
        }
    }
    ph
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_vm::bytecode::{CmpOp, MethodId};

    /// entry -> outer_head; outer: head -> inner_head -> inner_body -> inner_head | outer_latch; outer_latch -> outer_head | exit
    fn nested() -> Func {
        let mut f = Func::new("n", MethodId(0), 0);
        let x = f.vreg();
        let y = f.vreg();
        let exit = f.add_block(Term::Return(None)); // b1
        let outer_head = f.add_block(Term::Return(None)); // b2 patched below
        let inner_head = f.add_block(Term::Return(None)); // b3 patched
        let inner_body = f.add_block(Term::Jump(inner_head)); // b4
        let outer_latch = f.add_block(Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: outer_head,
            f: exit,
            t_count: 10,
            f_count: 1,
        }); // b5
        f.block_mut(outer_head).term = Term::Jump(inner_head);
        f.block_mut(inner_head).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: inner_body,
            f: outer_latch,
            t_count: 100,
            f_count: 10,
        };
        f.block_mut(f.entry).term = Term::Jump(outer_head);
        f
    }

    #[test]
    fn finds_nested_loops_innermost_first() {
        let f = nested();
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        assert_eq!(lf.len(), 2);
        let inner = &lf.post_order()[0];
        let outer = &lf.post_order()[1];
        assert_eq!(inner.header, BlockId(3));
        assert_eq!(outer.header, BlockId(2));
        assert!(inner.depth > outer.depth);
        assert!(outer.blocks.contains(&BlockId(3)));
        assert!(outer.blocks.contains(&BlockId(5)));
        assert!(!inner.blocks.contains(&BlockId(5)));
    }

    #[test]
    fn exits_and_latches() {
        let f = nested();
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        let outer = &lf.post_order()[1];
        assert_eq!(outer.exit_targets(&f), vec![BlockId(1)]);
        assert_eq!(outer.exiting_blocks(&f), vec![BlockId(5)]);
        assert_eq!(outer.latches(&f), vec![BlockId(5)]);
        let inner = &lf.post_order()[0];
        assert_eq!(inner.latches(&f), vec![BlockId(4)]);
    }

    #[test]
    fn preheader_created_once() {
        let mut f = nested();
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        let inner = lf.post_order()[0].clone();
        let ph = ensure_preheader(&mut f, &inner);
        // outer_head jumps straight to inner_head and is outside the inner
        // loop, so it already is a valid pre-header.
        assert_eq!(ph, BlockId(2));

        let outer = lf.post_order()[1].clone();
        let ph2 = ensure_preheader(&mut f, &outer);
        // entry branches only to outer_head, so entry is the pre-header.
        assert_eq!(ph2, f.entry);
    }

    #[test]
    fn innermost_containing() {
        let f = nested();
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        assert_eq!(
            lf.innermost_containing(BlockId(4)).unwrap().header,
            BlockId(3)
        );
        assert_eq!(
            lf.innermost_containing(BlockId(5)).unwrap().header,
            BlockId(2)
        );
        assert!(lf.innermost_containing(BlockId(1)).is_none());
        assert!(lf.is_header(BlockId(2)));
        assert!(!lf.is_header(BlockId(4)));
    }
}
