//! Bytecode → IR translation.
//!
//! Safety checks are decomposed (`GetField` becomes `NullCheck` +
//! `LoadField`; `ALoad` becomes `NullCheck` + `ArrayLen` + `BoundsCheck` +
//! `LoadElem`) so that redundancy elimination can remove checks
//! independently of the accesses they guard — the paper's motivating
//! optimization (§2, Figure 3). Profile counts from the interpreter are
//! attached to branch/switch terminators and block frequencies.

use std::collections::{BTreeSet, HashMap};

use hasp_vm::bytecode::{BinOp, Instr, MethodId};
use hasp_vm::class::Program;
use hasp_vm::profile::MethodProfile;

use crate::func::Func;
use crate::instr::{BlockId, Inst, Op, Term, VReg};
use crate::ssa;

/// Translates `method` into (non-optimized) SSA IR using `profile` for edge
/// weights. A missing/empty profile produces zero counts, which region
/// formation treats as cold.
pub fn translate(program: &Program, method: MethodId, profile: Option<&MethodProfile>) -> Func {
    let m = program.method(method);
    let empty = MethodProfile::default();
    let prof = profile.unwrap_or(&empty);

    // 1. Find block leaders.
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    leaders.insert(0);
    for (pc, instr) in m.code.iter().enumerate() {
        for t in instr.targets() {
            leaders.insert(t);
        }
        if (matches!(instr, Instr::Branch { .. }) || instr.is_terminator()) && pc + 1 < m.code.len()
        {
            leaders.insert(pc + 1);
        }
    }

    let mut f = Func::new(m.name.clone(), method, m.argc);
    // Variable space: bytecode registers map to VReg(0..m.regs); temps after.
    for _ in m.argc..m.regs {
        f.vreg();
    }

    // Entry block: zero-init non-arg variables (the interpreter's default),
    // then jump to the block at pc 0. SSA construction + DCE clean up unused
    // inits.
    let mut pc_block: HashMap<usize, BlockId> = HashMap::new();
    for &pc in &leaders {
        let b = f.add_block(Term::Return(None));
        pc_block.insert(pc, b);
        f.block_mut(b).freq = prof.exec_count(pc);
    }
    let var = |r: hasp_vm::bytecode::Reg| VReg(u32::from(r.0));
    {
        let entry = f.entry;
        for i in m.argc..m.regs {
            f.block_mut(entry)
                .insts
                .push(Inst::with_dst(VReg(u32::from(i)), Op::Const(0)));
        }
        if m.synchronized {
            f.block_mut(entry)
                .insts
                .push(Inst::effect(Op::NullCheck(VReg(0))));
            f.block_mut(entry)
                .insts
                .push(Inst::effect(Op::MonitorEnter(VReg(0))));
        }
        f.block_mut(entry).term = Term::Jump(pc_block[&0]);
        f.block_mut(entry).freq = prof.invocations;
    }

    // 2. Translate each bytecode block.
    let leader_list: Vec<usize> = leaders.iter().copied().collect();
    for (li, &start) in leader_list.iter().enumerate() {
        let end = leader_list.get(li + 1).copied().unwrap_or(m.code.len());
        let bid = pc_block[&start];
        let mut fell_through = true;
        for pc in start..end {
            let instr = &m.code[pc];
            match instr {
                Instr::Const { dst, value } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::Const(*value)));
                }
                Instr::ConstNull { dst } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::ConstNull));
                }
                Instr::Move { dst, src } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::Copy(var(*src))));
                }
                Instr::Bin { op, dst, a, b } => {
                    if matches!(op, BinOp::Div | BinOp::Rem) {
                        f.block_mut(bid)
                            .insts
                            .push(Inst::effect(Op::DivCheck(var(*b))));
                    }
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::Bin(*op, var(*a), var(*b))));
                }
                Instr::Cmp { op, dst, a, b } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::Cmp(*op, var(*a), var(*b))));
                }
                Instr::Branch { op, a, b, target } => {
                    let (t_count, f_count) = prof.branches.get(&pc).copied().unwrap_or((0, 0));
                    f.block_mut(bid).term = Term::Branch {
                        op: *op,
                        a: var(*a),
                        b: var(*b),
                        t: pc_block[target],
                        f: pc_block[&(pc + 1)],
                        t_count,
                        f_count,
                    };
                    fell_through = false;
                }
                Instr::Jump { target } => {
                    f.block_mut(bid).term = Term::Jump(pc_block[target]);
                    fell_through = false;
                }
                Instr::Switch {
                    src,
                    targets,
                    default,
                } => {
                    let counts = prof
                        .switches
                        .get(&pc)
                        .cloned()
                        .unwrap_or_else(|| vec![0; targets.len() + 1]);
                    f.block_mut(bid).term = Term::Switch {
                        sel: var(*src),
                        targets: targets
                            .iter()
                            .zip(&counts)
                            .map(|(t, c)| (pc_block[t], *c))
                            .collect(),
                        default: (pc_block[default], counts[targets.len()]),
                    };
                    fell_through = false;
                }
                Instr::New { dst, class } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::New(*class)));
                }
                Instr::NewArray { dst, len } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::NewArray(var(*len))));
                }
                Instr::GetField { dst, obj, field } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::NullCheck(var(*obj))));
                    f.block_mut(bid).insts.push(Inst::with_dst(
                        var(*dst),
                        Op::LoadField {
                            obj: var(*obj),
                            field: *field,
                        },
                    ));
                }
                Instr::PutField { obj, field, src } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::NullCheck(var(*obj))));
                    f.block_mut(bid).insts.push(Inst::effect(Op::StoreField {
                        obj: var(*obj),
                        field: *field,
                        val: var(*src),
                    }));
                }
                Instr::ALoad { dst, arr, idx } => {
                    let len = f.vreg();
                    let b = f.block_mut(bid);
                    b.insts.push(Inst::effect(Op::NullCheck(var(*arr))));
                    b.insts.push(Inst::with_dst(len, Op::ArrayLen(var(*arr))));
                    b.insts.push(Inst::effect(Op::BoundsCheck {
                        len,
                        idx: var(*idx),
                    }));
                    b.insts.push(Inst::with_dst(
                        var(*dst),
                        Op::LoadElem {
                            arr: var(*arr),
                            idx: var(*idx),
                        },
                    ));
                }
                Instr::AStore { arr, idx, src } => {
                    let len = f.vreg();
                    let b = f.block_mut(bid);
                    b.insts.push(Inst::effect(Op::NullCheck(var(*arr))));
                    b.insts.push(Inst::with_dst(len, Op::ArrayLen(var(*arr))));
                    b.insts.push(Inst::effect(Op::BoundsCheck {
                        len,
                        idx: var(*idx),
                    }));
                    b.insts.push(Inst::effect(Op::StoreElem {
                        arr: var(*arr),
                        idx: var(*idx),
                        val: var(*src),
                    }));
                }
                Instr::ArrayLen { dst, arr } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::NullCheck(var(*arr))));
                    f.block_mut(bid)
                        .insts
                        .push(Inst::with_dst(var(*dst), Op::ArrayLen(var(*arr))));
                }
                Instr::Call { dst, method, args } => {
                    let argv = args.iter().map(|r| var(*r)).collect();
                    f.block_mut(bid).insts.push(Inst {
                        dst: dst.map(var),
                        op: Op::Call {
                            method: *method,
                            args: argv,
                        },
                    });
                }
                Instr::CallVirtual {
                    dst,
                    slot,
                    recv,
                    args,
                } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::NullCheck(var(*recv))));
                    let argv = args.iter().map(|r| var(*r)).collect();
                    f.block_mut(bid).insts.push(Inst {
                        dst: dst.map(var),
                        op: Op::CallVirtual {
                            slot: *slot,
                            recv: var(*recv),
                            args: argv,
                            site: pc as u32,
                        },
                    });
                }
                Instr::Return { src } => {
                    if m.synchronized {
                        f.block_mut(bid)
                            .insts
                            .push(Inst::effect(Op::MonitorExit(VReg(0))));
                    }
                    f.block_mut(bid).term = Term::Return(src.map(var));
                    fell_through = false;
                }
                Instr::MonitorEnter { obj } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::NullCheck(var(*obj))));
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::MonitorEnter(var(*obj))));
                }
                Instr::MonitorExit { obj } => {
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::NullCheck(var(*obj))));
                    f.block_mut(bid)
                        .insts
                        .push(Inst::effect(Op::MonitorExit(var(*obj))));
                }
                Instr::InstanceOf { dst, obj, class } => {
                    f.block_mut(bid).insts.push(Inst::with_dst(
                        var(*dst),
                        Op::InstanceOf {
                            obj: var(*obj),
                            class: *class,
                        },
                    ));
                }
                Instr::CheckCast { obj, class } => {
                    f.block_mut(bid).insts.push(Inst::effect(Op::CastCheck {
                        obj: var(*obj),
                        class: *class,
                    }));
                }
                Instr::Safepoint => {
                    f.block_mut(bid).insts.push(Inst::effect(Op::Safepoint));
                }
                Instr::Intrin { kind, dst, args } => {
                    let argv = args.iter().map(|r| var(*r)).collect();
                    f.block_mut(bid).insts.push(Inst {
                        dst: dst.map(var),
                        op: Op::Intrin {
                            kind: *kind,
                            args: argv,
                        },
                    });
                }
                Instr::Marker { id } => {
                    f.block_mut(bid).insts.push(Inst::effect(Op::Marker(*id)));
                }
            }
        }
        if fell_through {
            // The bytecode builder guarantees the method cannot fall off the
            // end, so `end` is a valid leader here.
            f.block_mut(bid).term = Term::Jump(pc_block[&end]);
        }
    }

    ssa::construct(&mut f, u32::from(m.regs));
    f.remove_unreachable();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use hasp_vm::builder::ProgramBuilder;
    use hasp_vm::bytecode::{BinOp, CmpOp};
    use hasp_vm::interp::Interp;

    fn sum_loop_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let sum = m.imm(0);
        let i = m.imm(0);
        let n = m.imm(50);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        m.bin(BinOp::Add, sum, sum, i);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        m.checksum(sum);
        m.ret(Some(sum));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        (p, entry)
    }

    #[test]
    fn loop_translates_to_valid_ssa() {
        let (p, entry) = sum_loop_program();
        let mut interp = Interp::new(&p).with_profiling();
        interp.run(&[]).unwrap();
        let prof = interp.profile.method(entry).cloned();
        let f = translate(&p, entry, prof.as_ref());
        verify::verify(&f).expect("valid SSA");
        // The loop header must contain phis for sum and i.
        let has_phi = f
            .block_ids()
            .iter()
            .any(|b| f.block(*b).insts.iter().any(|i| matches!(i.op, Op::Phi(_))));
        assert!(
            has_phi,
            "loop-carried variables need phis:\n{}",
            f.display()
        );
        // Branch profile carried over: not-taken 50, taken 1.
        let found = f.block_ids().iter().any(|b| {
            matches!(
                f.block(*b).term,
                Term::Branch {
                    t_count: 1,
                    f_count: 50,
                    ..
                }
            )
        });
        assert!(found, "profile counts attached:\n{}", f.display());
    }

    #[test]
    fn field_access_decomposes_checks() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, &["f"]);
        let fld = pb.field(c, "f");
        let mut m = pb.method("main", 0);
        let o = m.reg();
        m.new_obj(o, c);
        let v = m.reg();
        m.get_field(v, o, fld);
        m.get_field(v, o, fld);
        m.ret(Some(v));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let f = translate(&p, entry, None);
        verify::verify(&f).unwrap();
        let n_checks: usize = f
            .block_ids()
            .iter()
            .map(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .filter(|i| matches!(i.op, Op::NullCheck(_)))
                    .count()
            })
            .sum();
        assert_eq!(
            n_checks, 2,
            "each GetField carries its own NullCheck pre-GVN"
        );
    }

    #[test]
    fn array_access_decomposes_to_four_ops() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let len = m.imm(8);
        let a = m.reg();
        m.new_array(a, len);
        let idx = m.imm(3);
        let v = m.reg();
        m.aload(v, a, idx);
        m.ret(Some(v));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let f = translate(&p, entry, None);
        verify::verify(&f).unwrap();
        let ops: Vec<String> = f
            .block_ids()
            .iter()
            .flat_map(|b| f.block(*b).insts.iter().map(|i| format!("{:?}", i.op)))
            .collect();
        let joined = ops.join(" ");
        assert!(joined.contains("NullCheck"));
        assert!(joined.contains("ArrayLen"));
        assert!(joined.contains("BoundsCheck"));
        assert!(joined.contains("LoadElem"));
    }

    #[test]
    fn synchronized_method_brackets_monitor() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, &[]);
        let _ = c;
        let mut s = pb.method("sync", 1);
        s.set_synchronized();
        s.ret(Some(s.arg(0)));
        let mid = s.finish(&mut pb);
        let mut m = pb.method("main", 0);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let f = translate(&p, mid, None);
        verify::verify(&f).unwrap();
        let all: Vec<String> = f
            .block_ids()
            .iter()
            .flat_map(|b| f.block(*b).insts.iter().map(|i| format!("{:?}", i.op)))
            .collect();
        let joined = all.join(" ");
        assert!(joined.contains("MonitorEnter"));
        assert!(joined.contains("MonitorExit"));
    }
}
