//! IR verifier: SSA well-formedness, CFG consistency, and the paper's atomic
//! region invariants (single-entry, no nesting, no calls inside regions,
//! exits pass through `aregion_end`).

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::func::Func;
use crate::instr::{BlockId, Op, Term, VReg};

/// Verifies `f`, returning a description of the first violation found.
///
/// # Errors
/// Returns `Err` with a human-readable message naming the offending block or
/// value when any invariant is violated.
pub fn verify(f: &Func) -> Result<(), String> {
    let live: Vec<BlockId> = f.rpo();
    let live_set: HashSet<BlockId> = live.iter().copied().collect();

    // Terminator targets are live blocks.
    for &b in &live {
        for s in f.succs(b) {
            if s.0 as usize >= f.block_count() {
                return Err(format!("{b} targets out-of-range block {s}"));
            }
            if f.block(s).dead {
                return Err(format!("{b} targets dead block {s}"));
            }
        }
    }

    // Single definition per vreg.
    let mut def_block: HashMap<VReg, (BlockId, usize)> = HashMap::new();
    for &b in &live {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if let Some(d) = inst.dst {
                if let Some((ob, _)) = def_block.insert(d, (b, i)) {
                    return Err(format!("{d} defined twice ({ob} and {b})"));
                }
            }
        }
    }

    // Phis only at block head, and their pred sets match the CFG.
    let preds = f.preds();
    for &b in &live {
        let blk = f.block(b);
        let head = blk.phi_count();
        for (i, inst) in blk.insts.iter().enumerate() {
            if matches!(inst.op, Op::Phi(_)) && i >= head {
                return Err(format!("phi after non-phi in {b}"));
            }
            if let Op::Phi(ins) = &inst.op {
                let phi_preds: HashSet<BlockId> = ins.iter().map(|(p, _)| *p).collect();
                let cfg_preds: HashSet<BlockId> =
                    preds.get(&b).into_iter().flatten().copied().collect();
                if phi_preds != cfg_preds {
                    return Err(format!(
                        "phi {:?} in {b} has preds {phi_preds:?} but CFG preds are {cfg_preds:?}",
                        inst.dst
                    ));
                }
            }
        }
    }

    // Defs dominate uses.
    let dt = DomTree::compute(f);
    let dominates_use = |def: VReg, use_block: BlockId, use_index: usize| -> bool {
        if def.0 < u32::from(f.params) && !def_block.contains_key(&def) {
            return true; // parameter, live-in at entry
        }
        let Some(&(db, di)) = def_block.get(&def) else {
            return false;
        };
        if db == use_block {
            di < use_index
        } else {
            dt.dominates(db, use_block)
        }
    };
    for &b in &live {
        let blk = f.block(b);
        for (i, inst) in blk.insts.iter().enumerate() {
            if let Op::Phi(ins) = &inst.op {
                for (p, v) in ins {
                    // Phi input must dominate the end of the predecessor.
                    if !dominates_use(*v, *p, usize::MAX) {
                        return Err(format!(
                            "phi input {v} (edge {p}->{b}) not dominated by def"
                        ));
                    }
                }
            } else {
                for v in inst.op.args() {
                    if !dominates_use(v, b, i) {
                        return Err(format!("use of {v} in {b}@{i} not dominated by def"));
                    }
                }
            }
        }
        for v in blk.term.args() {
            if !dominates_use(v, b, usize::MAX) {
                return Err(format!("terminator use of {v} in {b} not dominated by def"));
            }
        }
    }

    verify_regions(f, &live, &live_set, &preds)
}

fn verify_regions(
    f: &Func,
    live: &[BlockId],
    _live_set: &HashSet<BlockId>,
    preds: &HashMap<BlockId, Vec<BlockId>>,
) -> Result<(), String> {
    for &b in live {
        let blk = f.block(b);
        match blk.region {
            Some(r) => {
                // No calls inside atomic regions (regions end at non-inlined
                // calls, paper §4).
                for inst in &blk.insts {
                    if inst.op.is_call() {
                        return Err(format!("call inside atomic region r{} at {b}", r.0));
                    }
                    if let Op::RegionEnd(re) = inst.op {
                        if re != r {
                            return Err(format!(
                                "RegionEnd(r{}) inside region r{} at {b}",
                                re.0, r.0
                            ));
                        }
                    }
                }
                // No nesting.
                if matches!(blk.term, Term::RegionBegin { .. }) {
                    return Err(format!("nested RegionBegin at {b} (inside r{})", r.0));
                }
                // Single entry: every predecessor is in the same region or is
                // the RegionBegin block targeting us as body.
                for &p in preds.get(&b).into_iter().flatten() {
                    let pb = f.block(p);
                    let ok = pb.region == Some(r)
                        || matches!(pb.term, Term::RegionBegin { region, body, .. }
                            if region == r && body == b);
                    if !ok {
                        return Err(format!(
                            "region r{} block {b} entered from outside ({p})",
                            r.0
                        ));
                    }
                }
                // Exits commit: an edge leaving the region must come from a
                // block containing RegionEnd.
                let leaves_region = f.succs(b).iter().any(|s| f.block(*s).region != Some(r));
                if leaves_region {
                    let has_end = blk
                        .insts
                        .iter()
                        .any(|i| matches!(i.op, Op::RegionEnd(re) if re == r));
                    if !has_end {
                        return Err(format!("region r{} exits at {b} without aregion_end", r.0));
                    }
                }
            }
            None => {
                // Asserts and RegionEnd belong inside regions only.
                for inst in &blk.insts {
                    if matches!(inst.op, Op::Assert { .. }) {
                        return Err(format!("assert outside any region at {b}"));
                    }
                    if matches!(inst.op, Op::RegionEnd(_)) {
                        return Err(format!("RegionEnd outside any region at {b}"));
                    }
                }
                if let Term::RegionBegin {
                    region,
                    body,
                    abort,
                } = &blk.term
                {
                    if f.block(*body).region != Some(*region) {
                        return Err(format!(
                            "RegionBegin at {b}: body {body} not tagged r{}",
                            region.0
                        ));
                    }
                    if f.block(*abort).region.is_some() {
                        return Err(format!(
                            "RegionBegin at {b}: abort target {abort} is inside a region",
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionInfo;
    use crate::instr::{AssertKind, Inst, RegionId};
    use hasp_vm::bytecode::{BinOp, MethodId};

    #[test]
    fn accepts_trivial() {
        let f = Func::new("t", MethodId(0), 0);
        verify(&f).unwrap();
    }

    #[test]
    fn rejects_double_def() {
        let mut f = Func::new("t", MethodId(0), 0);
        let v = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v, Op::Const(1)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v, Op::Const(2)));
        assert!(verify(&f).unwrap_err().contains("defined twice"));
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Func::new("t", MethodId(0), 0);
        let a = f.vreg();
        let b = f.vreg();
        let c = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(c, Op::Bin(BinOp::Add, a, b)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(a, Op::Const(1)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(b, Op::Const(2)));
        assert!(verify(&f).unwrap_err().contains("not dominated"));
    }

    #[test]
    fn rejects_call_in_region() {
        let mut f = Func::new("t", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(exit));
        let abort = f.add_block(Term::Jump(exit));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 1,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        f.block_mut(body).insts.push(Inst::effect(Op::RegionEnd(r)));
        verify(&f).unwrap();

        f.block_mut(body).insts.insert(
            0,
            Inst::effect(Op::Call {
                method: MethodId(1),
                args: vec![],
            }),
        );
        assert!(verify(&f)
            .unwrap_err()
            .contains("call inside atomic region"));
    }

    #[test]
    fn rejects_region_exit_without_end() {
        let mut f = Func::new("t", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(exit));
        let abort = f.add_block(Term::Jump(exit));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 1,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        assert!(verify(&f).unwrap_err().contains("without aregion_end"));
    }

    #[test]
    fn rejects_assert_outside_region() {
        let mut f = Func::new("t", MethodId(0), 0);
        let v = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(v, Op::Const(0)));
        let id = f.new_assert(RegionId(0), "test");
        f.block_mut(f.entry).insts.push(Inst::effect(Op::Assert {
            kind: AssertKind::Null(v),
            id,
        }));
        assert!(verify(&f).unwrap_err().contains("assert outside"));
    }

    #[test]
    fn rejects_side_entry_into_region() {
        let mut f = Func::new("t", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(exit));
        let abort = f.add_block(Term::Jump(body)); // illegal: jumps into region
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 1,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        f.block_mut(body).insts.push(Inst::effect(Op::RegionEnd(r)));
        assert!(verify(&f).unwrap_err().contains("entered from outside"));
    }
}
