//! # hasp-ir — the JIT compiler's intermediate representation
//!
//! An SSA, CFG-based high-level IR modeled on a JVM JIT's HIR (DRLVM Jitrino
//! in the paper *Hardware Atomicity for Reliable Software Speculation*,
//! ISCA 2007), together with the analyses the optimizer and region formation
//! need: dominators and post-dominators ([`dom`]), natural loops ([`loops`]),
//! liveness ([`liveness`]), bytecode translation with decomposed safety
//! checks ([`mod@translate`]), SSA construction ([`ssa`]), and a verifier
//! enforcing SSA plus the paper's atomic-region invariants ([`mod@verify`]).
//!
//! Atomic regions are first-class: [`instr::Term::RegionBegin`] models
//! `aregion_begin <alt PC>` with an explicit abort edge (the paper maps this
//! onto try/catch IR support), [`instr::Op::RegionEnd`] models `aregion_end`,
//! and [`instr::Op::Assert`] models conditional aborts — plain instructions
//! with no control-flow successors, which is precisely why they constrain
//! optimization less than branches (§4).

#![warn(missing_docs)]

pub mod dom;
pub mod dot;
pub mod func;
pub mod instr;
pub mod liveness;
pub mod loops;
pub mod ssa;
pub mod ssa_repair;
pub mod translate;
pub mod verify;

pub use dom::{DomTree, PostDomTree};
pub use func::{AssertInfo, Block, Func, RegionInfo};
pub use instr::{AssertId, AssertKind, BlockId, Inst, Op, RegionId, Term, VReg};
pub use liveness::Liveness;
pub use loops::{ensure_preheader, Loop, LoopForest};
pub use translate::translate;
pub use verify::verify;
