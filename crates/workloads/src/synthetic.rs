//! Synthetic micro-scenarios shared by examples, tests, and ablation
//! benches: the paper's Figure 2 `addElement` call site, the Figure 5
//! region-formation shape, and the §7 phase-flip (adaptive recompilation)
//! stressor.

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};

use crate::classlib::int_vector;
use crate::workload::{Sample, Workload};

/// Figures 2–3: `m_data.addElement(m_textPendingStart);
/// m_data.addElement(length);` in a hot loop.
pub fn add_element(iters: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let vec = int_vector(&mut pb);
    let mut m = pb.method("main", 0);
    let bs = m.imm(4096);
    let data = m.reg();
    m.call(Some(data), vec.new, &[bs]);
    m.marker(1);
    let i = m.imm(0);
    let n = m.imm(iters);
    let one = m.imm(1);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    let r = m.reg();
    m.intrin(Intrinsic::NextRandom, Some(r), &[]);
    let k255 = m.imm(255);
    let len = m.reg();
    m.bin(BinOp::And, len, r, k255);
    m.call(None, vec.add, &[data, i]);
    m.call(None, vec.add, &[data, len]);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    m.marker(1);
    let sz = m.reg();
    m.call(Some(sz), vec.size, &[data]);
    m.checksum(sz);
    let probe = m.imm(123);
    let e = m.reg();
    m.call(Some(e), vec.get, &[data, probe]);
    m.checksum(e);
    m.ret(Some(sz));
    let entry = m.finish(&mut pb);
    Workload {
        name: "addelement",
        description: "Figures 2-3: the Xalan addElement hot/cold call site",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 200_000_000,
    }
}

/// §7 adaptive-recompilation stressor: one hot loop whose "rare" branch
/// flips from 0% to `late_pct`% taken at iteration `flip_at` — after any
/// plausible first-pass profiling window.
pub fn phase_flip(total: i64, flip_at: i64, late_pct: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let st = pb.add_class("Stats", None, &["evens", "odds", "sum"]);
    let f_even = pb.field(st, "evens");
    let f_odd = pb.field(st, "odds");
    let f_sum = pb.field(st, "sum");

    let mut m = pb.method("main", 0);
    let s = m.reg();
    m.new_obj(s, st);
    let one = m.imm(1);
    let k100 = m.imm(100);
    m.marker(1);
    let i = m.imm(0);
    let n = m.imm(total);
    let flip = m.imm(flip_at);
    let kpct = m.imm(late_pct);
    let head = m.new_label();
    let exit = m.new_label();
    let odd = m.new_label();
    let join = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    let late = m.reg();
    m.cmp(CmpOp::Ge, late, i, flip);
    let thr = m.reg();
    m.bin(BinOp::Mul, thr, late, kpct);
    let r = m.reg();
    m.intrin(Intrinsic::NextRandom, Some(r), &[]);
    let sel = m.reg();
    m.bin(BinOp::Rem, sel, r, k100);
    let sum = m.reg();
    m.get_field(sum, s, f_sum);
    m.bin(BinOp::Add, sum, sum, sel);
    m.put_field(s, f_sum, sum);
    m.branch(CmpOp::Lt, sel, thr, odd);
    let e = m.reg();
    m.get_field(e, s, f_even);
    m.bin(BinOp::Add, e, e, one);
    m.put_field(s, f_even, e);
    m.jump(join);
    m.bind(odd);
    let o = m.reg();
    m.get_field(o, s, f_odd);
    m.bin(BinOp::Add, o, o, one);
    m.put_field(s, f_odd, o);
    m.put_field(s, f_sum, o);
    m.jump(join);
    m.bind(join);
    let d = m.reg();
    m.get_field(d, s, f_sum);
    m.checksum(d);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    m.marker(1);
    for f in [f_even, f_odd, f_sum] {
        let v = m.reg();
        m.get_field(v, s, f);
        m.checksum(v);
    }
    m.ret(None);
    let entry = m.finish(&mut pb);
    Workload {
        name: "phase-flip",
        description: "a hot branch flips bias after the profiling window",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 200_000_000,
    }
}

/// The §7 post-dominance check-elimination shape: `a[i] = x; a[i+1] = y;`
/// where the second bounds check subsumes the first inside a region.
pub fn postdom_checks(iters: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let mut m = pb.method("main", 0);
    let cap = m.imm(4096);
    let arr = m.reg();
    m.new_array(arr, cap);
    m.marker(1);
    let i = m.imm(0);
    let n = m.imm(iters);
    let one = m.imm(1);
    let mask = m.imm(2046);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    let base = m.reg();
    m.bin(BinOp::And, base, i, mask);
    m.astore(arr, base, i);
    let next = m.reg();
    m.bin(BinOp::Add, next, base, one);
    m.astore(arr, next, base);
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    m.marker(1);
    let probe = m.imm(99);
    let v = m.reg();
    m.aload(v, arr, probe);
    m.checksum(v);
    m.checksum(i);
    m.ret(None);
    let entry = m.finish(&mut pb);
    Workload {
        name: "postdom-checks",
        description: "§7: check(len,i) post-dominated by check(len,i+1)",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 200_000_000,
    }
}

/// The governor-ladder adversary: two hot loops in one method. Loop A's
/// per-iteration region scatters stores across ~16 distinct cache lines
/// (an inner stride-8 loop over a 128-element array), so any speculative
/// line budget under its footprint aborts it with `Overflow` on *every*
/// entry — the sustained-overflow shape that drives the governor up the
/// tier ladder and into a `ReformRequest`. Loop B's region touches one
/// line and always commits, so after adaptive re-formation dissolves A's
/// region the method still has healthy committing regions (the
/// reform-and-recover signal the fault campaign gates on).
pub fn footprint_split(iters: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let mut m = pb.method("main", 0);
    let cap = m.imm(128);
    let fat = m.reg();
    m.new_array(fat, cap);
    let cap2 = m.imm(8);
    let lean = m.reg();
    m.new_array(lean, cap2);
    m.marker(1);
    let one = m.imm(1);
    let i = m.imm(0);
    let n = m.imm(iters);
    let head = m.new_label();
    let exit = m.new_label();
    // Loop A: 16 stores per iteration, 8 elements (one line) apart.
    m.bind(head);
    m.branch(CmpOp::Ge, i, n, exit);
    {
        let j = m.imm(0);
        let k16 = m.imm(16);
        let eight = m.imm(8);
        let ihead = m.new_label();
        let iexit = m.new_label();
        m.bind(ihead);
        m.branch(CmpOp::Ge, j, k16, iexit);
        let slot = m.reg();
        m.bin(BinOp::Mul, slot, j, eight);
        let v = m.reg();
        m.bin(BinOp::Add, v, i, j);
        m.astore(fat, slot, v);
        m.bin(BinOp::Add, j, j, one);
        m.jump(ihead);
        m.bind(iexit);
    }
    m.bin(BinOp::Add, i, i, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    // Loop B: one line, always commits.
    let k = m.imm(0);
    let mask = m.imm(7);
    let bhead = m.new_label();
    let bexit = m.new_label();
    m.bind(bhead);
    m.branch(CmpOp::Ge, k, n, bexit);
    let slot = m.reg();
    m.bin(BinOp::And, slot, k, mask);
    m.astore(lean, slot, k);
    m.bin(BinOp::Add, k, k, one);
    m.safepoint();
    m.jump(bhead);
    m.bind(bexit);
    m.marker(1);
    let probe = m.imm(120);
    let v = m.reg();
    m.aload(v, fat, probe);
    m.checksum(v);
    let probe2 = m.imm(5);
    let v2 = m.reg();
    m.aload(v2, lean, probe2);
    m.checksum(v2);
    m.ret(None);
    let entry = m.finish(&mut pb);
    Workload {
        name: "footprint-split",
        description: "ladder adversary: a fat-footprint region next to a lean one",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 200_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_vm::interp::Interp;

    #[test]
    fn synthetics_run_clean() {
        for w in [
            add_element(2000),
            phase_flip(5000, 4000, 40),
            postdom_checks(2000),
            footprint_split(2000),
        ] {
            let mut interp = Interp::new(&w.program);
            interp.set_fuel(w.fuel);
            interp
                .run(&[])
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
