//! `bloat` — bytecode analysis and optimization.
//!
//! Preserved characteristics (§6.1, Table 3): high region coverage (~69%),
//! large regions (~128 uops), and a non-trivial abort rate concentrated in
//! one of four samples — "almost all of bloat's aborts occur in one of its
//! four execution samples — the one from the least dominant phase — and that
//! sample incurs a slowdown", while the other phases win big.

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};

use crate::workload::{Sample, Workload};

/// Builds the bloat workload.
pub fn bloat() -> Workload {
    let mut pb = ProgramBuilder::new();

    // Analysis state: stack-depth simulation, def/use statistics, a bigram
    // histogram of opcode transitions, and basic-block accounting — the kind
    // of state a bytecode analyzer threads through every instruction visit.
    let state = pb.add_class(
        "FlowState",
        None,
        &[
            "depths", "bigrams", "lines", "maxdepth", "insns", "wides", "defs", "uses", "weight",
            "blocks",
        ],
    );
    let f_depths = pb.field(state, "depths");
    let f_bigrams = pb.field(state, "bigrams");
    let f_lines = pb.field(state, "lines");
    let f_max = pb.field(state, "maxdepth");
    let f_insns = pb.field(state, "insns");
    let f_wides = pb.field(state, "wides");
    let f_defs = pb.field(state, "defs");
    let f_uses = pb.field(state, "uses");
    let f_weight = pb.field(state, "weight");
    let f_blocks = pb.field(state, "blocks");

    let mut m = pb.method("main", 0);
    let st = m.reg();
    m.new_obj(st, state);
    let k256 = m.imm(256);
    let depths = m.reg();
    m.new_array(depths, k256);
    m.put_field(st, f_depths, depths);
    let k64b = m.imm(64);
    let bigrams = m.reg();
    m.new_array(bigrams, k64b);
    m.put_field(st, f_bigrams, bigrams);
    let k512 = m.imm(512);
    let lines = m.reg();
    m.new_array(lines, k512);
    m.put_field(st, f_lines, lines);

    const CODE_LEN: i64 = 512;
    let code_len = m.imm(CODE_LEN);
    let code = m.reg();
    m.new_array(code, code_len);

    let one = m.imm(1);

    // Four phases: (marker, passes over the corpus, wide-op percentage).
    for (phase, passes, wide_pct) in [(1u32, 5i64, 0i64), (2, 4, 0), (3, 4, 0), (4, 2, 8)] {
        // (Re)generate the phase's corpus.
        {
            let j = m.imm(0);
            let head = m.new_label();
            let exit = m.new_label();
            let wide = m.new_label();
            let norm = m.new_label();
            let store = m.new_label();
            let k100 = m.imm(100);
            let kwide = m.imm(wide_pct);
            let k5 = m.imm(5);
            let k900 = m.imm(900);
            m.bind(head);
            m.branch(CmpOp::Ge, j, code_len, exit);
            let r = m.reg();
            m.intrin(Intrinsic::NextRandom, Some(r), &[]);
            let sel = m.reg();
            m.bin(BinOp::Rem, sel, r, k100);
            let op = m.reg();
            m.branch(CmpOp::Lt, sel, kwide, wide);
            m.jump(norm);
            m.bind(norm);
            m.bin(BinOp::Rem, op, r, k5); // opcodes 0..4: normal
            m.jump(store);
            m.bind(wide);
            m.bin(BinOp::Rem, op, r, k5);
            m.bin(BinOp::Add, op, op, k900); // 900..904: wide-prefixed
            m.jump(store);
            m.bind(store);
            m.astore(code, j, op);
            m.bin(BinOp::Add, j, j, one);
            m.safepoint();
            m.jump(head);
            m.bind(exit);
        }

        m.marker(phase);
        let pass = m.imm(0);
        let npasses = m.imm(passes);
        let phead = m.new_label();
        let pexit = m.new_label();
        m.bind(phead);
        m.branch(CmpOp::Ge, pass, npasses, pexit);
        {
            // The analysis kernel: one pass over the opcode stream. No calls
            // → the whole per-instruction visit runs inside one region. The
            // visitor re-loads its state object's fields the way generated
            // visitor code does — the redundancy regions let GVN remove.
            let depth = m.imm(0);
            let prev = m.imm(0);
            let pc = m.imm(0);
            let head = m.new_label();
            let exit = m.new_label();
            let is_wide = m.new_label();
            let after = m.new_label();
            let k899 = m.imm(899);
            let k2 = m.imm(2);
            let k3 = m.imm(3);
            let k7 = m.imm(7);
            let k31 = m.imm(31);
            let kmask = m.imm(255);
            let k63 = m.imm(63);
            let k511 = m.imm(511);
            m.bind(head);
            m.branch(CmpOp::Ge, pc, code_len, exit);
            let op = m.reg();
            m.aload(op, code, pc);
            // The cold path: wide-prefixed opcode handling.
            m.branch(CmpOp::Gt, op, k899, is_wide);

            // --- Hot per-instruction visit ---
            // 1. Stack-depth simulation.
            let delta = m.reg();
            m.bin(BinOp::Rem, delta, op, k3);
            m.bin(BinOp::Sub, delta, delta, one);
            m.bin(BinOp::Add, depth, depth, delta);
            let dslot = m.reg();
            m.bin(BinOp::And, dslot, depth, kmask);
            let d1 = m.reg();
            m.get_field(d1, st, f_depths);
            let cnt = m.reg();
            m.aload(cnt, d1, dslot);
            m.bin(BinOp::Add, cnt, cnt, one);
            let d2 = m.reg();
            m.get_field(d2, st, f_depths); // redundant load
            m.astore(d2, dslot, cnt);
            // 2. Max-depth watermark (biased but warm branch).
            let mx = m.reg();
            m.get_field(mx, st, f_max);
            let skip = m.new_label();
            m.branch(CmpOp::Le, depth, mx, skip);
            m.put_field(st, f_max, depth);
            m.jump(skip);
            m.bind(skip);
            // 3. Opcode-transition bigram histogram.
            let bg = m.reg();
            m.bin(BinOp::Mul, bg, prev, k7);
            m.bin(BinOp::Add, bg, bg, op);
            m.bin(BinOp::And, bg, bg, k63);
            let b1 = m.reg();
            m.get_field(b1, st, f_bigrams);
            let bc = m.reg();
            m.aload(bc, b1, bg);
            m.bin(BinOp::Add, bc, bc, one);
            let b2 = m.reg();
            m.get_field(b2, st, f_bigrams); // redundant load
            m.astore(b2, bg, bc);
            m.mov(prev, op);
            // 4. Def/use accounting by opcode class.
            let cls = m.reg();
            m.bin(BinOp::Rem, cls, op, k2);
            let defs = m.reg();
            m.get_field(defs, st, f_defs);
            m.bin(BinOp::Add, defs, defs, cls);
            m.put_field(st, f_defs, defs);
            let uses = m.reg();
            m.get_field(uses, st, f_uses);
            let use_w = m.reg();
            m.bin(BinOp::Sub, use_w, one, cls);
            m.bin(BinOp::Add, uses, uses, use_w);
            m.put_field(st, f_uses, uses);
            // 5. Line-table update.
            let lslot = m.reg();
            m.bin(BinOp::And, lslot, pc, k511);
            let l1 = m.reg();
            m.get_field(l1, st, f_lines);
            let lv = m.reg();
            m.aload(lv, l1, lslot);
            let lw = m.reg();
            m.bin(BinOp::Mul, lw, depth, k31);
            m.bin(BinOp::Xor, lv, lv, lw);
            let l2 = m.reg();
            m.get_field(l2, st, f_lines); // redundant load
            m.astore(l2, lslot, lv);
            // 6. Weighted instruction count + block boundary detection.
            let w = m.reg();
            m.get_field(w, st, f_weight);
            let opw = m.reg();
            m.bin(BinOp::Add, opw, op, one);
            m.bin(BinOp::Add, w, w, opw);
            m.put_field(st, f_weight, w);
            let ins = m.reg();
            m.get_field(ins, st, f_insns);
            m.bin(BinOp::Add, ins, ins, one);
            m.put_field(st, f_insns, ins);
            let k5b = m.imm(5);
            let is_branch = m.reg();
            m.bin(BinOp::Rem, is_branch, op, k5b);
            let nb = m.new_label();
            let zero2 = m.imm(0);
            m.branch(CmpOp::Ne, is_branch, zero2, nb);
            let blocks = m.reg();
            m.get_field(blocks, st, f_blocks);
            m.bin(BinOp::Add, blocks, blocks, one);
            m.put_field(st, f_blocks, blocks);
            m.jump(nb);
            m.bind(nb);
            m.jump(after);

            // --- Cold: wide opcode (phase 4 violates the phases-1-3 profile) ---
            m.bind(is_wide);
            let wd = m.reg();
            m.get_field(wd, st, f_wides);
            m.bin(BinOp::Add, wd, wd, one);
            m.put_field(st, f_wides, wd);
            // Wide handling rewrites the summary state too — which is what
            // makes the post-join reloads non-redundant for the baseline.
            let wins = m.reg();
            m.get_field(wins, st, f_insns);
            m.bin(BinOp::Add, wins, wins, k2);
            m.put_field(st, f_insns, wins);
            let ww = m.reg();
            m.get_field(ww, st, f_weight);
            m.bin(BinOp::Add, ww, ww, k2);
            m.put_field(st, f_weight, ww);
            let wdf = m.reg();
            m.get_field(wdf, st, f_defs);
            m.bin(BinOp::Add, wdf, wdf, one);
            m.put_field(st, f_defs, wdf);
            let wus = m.reg();
            m.get_field(wus, st, f_uses);
            m.bin(BinOp::Add, wus, wus, one);
            m.put_field(st, f_uses, wus);
            let wbl = m.reg();
            m.get_field(wbl, st, f_blocks);
            m.bin(BinOp::Add, wbl, wbl, one);
            m.put_field(st, f_blocks, wbl);
            let wzero = m.imm(0);
            let wmx = m.reg();
            m.get_field(wmx, st, f_max);
            m.bin(BinOp::Add, wmx, wmx, wzero);
            m.put_field(st, f_max, wmx);
            m.bin(BinOp::Add, depth, depth, k2);
            m.jump(after);

            m.bind(after);
            // Post-visit summary: reloads the state the visit just wrote.
            // In the baseline the wide-opcode join kills load availability
            // (the cold edge may have clobbered anything); inside an atomic
            // region the join is gone — the cold edge is an assert — so
            // value numbering forwards every one of these loads (Figure 3).
            let s_defs = m.reg();
            m.get_field(s_defs, st, f_defs);
            let s_uses = m.reg();
            m.get_field(s_uses, st, f_uses);
            let s_w = m.reg();
            m.get_field(s_w, st, f_weight);
            let s_ins = m.reg();
            m.get_field(s_ins, st, f_insns);
            let s_blocks = m.reg();
            m.get_field(s_blocks, st, f_blocks);
            let s_max = m.reg();
            m.get_field(s_max, st, f_max);
            let summary = m.reg();
            m.bin(BinOp::Add, summary, s_defs, s_uses);
            m.bin(BinOp::Add, summary, summary, s_w);
            m.bin(BinOp::Add, summary, summary, s_ins);
            m.bin(BinOp::Add, summary, summary, s_blocks);
            m.bin(BinOp::Add, summary, summary, s_max);
            let d3 = m.reg();
            m.get_field(d3, st, f_depths);
            let c3 = m.reg();
            m.aload(c3, d3, dslot);
            m.bin(BinOp::Xor, summary, summary, c3);
            let wsum = m.reg();
            m.get_field(wsum, st, f_weight);
            m.bin(BinOp::Add, wsum, wsum, summary);
            m.put_field(st, f_weight, wsum);
            m.bin(BinOp::Add, pc, pc, one);
            m.safepoint();
            m.jump(head);
            m.bind(exit);
            m.checksum(depth);
        }
        m.bin(BinOp::Add, pass, pass, one);
        m.safepoint();
        m.jump(phead);
        m.bind(pexit);
        m.marker(phase);
    }

    for f in [f_max, f_insns, f_wides, f_defs, f_uses, f_weight, f_blocks] {
        let v = m.reg();
        m.get_field(v, st, f);
        m.checksum(v);
    }
    let out = m.reg();
    m.get_field(out, st, f_insns);
    m.ret(Some(out));
    let entry = m.finish(&mut pb);

    Workload {
        name: "bloat",
        description: "bytecode analysis: call-free per-instruction visitor in \
                      large regions (high coverage); phase 4's wide opcodes \
                      violate the phases-1-3 profile, concentrating aborts in \
                      the least dominant sample",
        program: pb.finish(entry),
        samples: vec![
            Sample {
                marker: 1,
                weight: 0.35,
            },
            Sample {
                marker: 2,
                weight: 0.30,
            },
            Sample {
                marker: 3,
                weight: 0.25,
            },
            Sample {
                marker: 4,
                weight: 0.10,
            },
        ],
        fuel: 150_000_000,
    }
}
