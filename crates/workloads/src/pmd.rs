//! `pmd` — static analysis of Java classes (rule matching over ASTs).
//!
//! Preserved characteristics (§6.1, Table 3): relatively low coverage
//! (~32%) combined with a ~2% abort rate caused by a *behavior change* —
//! rule-match paths that look cold in the profile become warm in the final
//! phase — so the `atomic` configuration loses slightly: "the pmd benchmark
//! actually slows down in the atomic configuration". Four samples.

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};

use crate::workload::{Sample, Workload};

/// Builds the pmd workload.
pub fn pmd() -> Workload {
    let mut pb = ProgramBuilder::new();

    // AST node classes for instanceof chains.
    let node = pb.add_class("Node", None, &["kind", "arity", "line", "hash", "flags"]);
    let f_kind = pb.field(node, "kind");
    let f_arity = pb.field(node, "arity");
    let f_line = pb.field(node, "line");
    let f_hash = pb.field(node, "hash");
    let f_flags = pb.field(node, "flags");
    let expr = pb.add_class("ExprNode", Some(node), &[]);
    let stmt = pb.add_class("StmtNode", Some(node), &[]);

    // Opaque symbol-table resolution (keeps coverage moderate: a large share
    // of every pass's uops happens in here, outside any region).
    let resolve = {
        let mut m = pb.method("SymbolTable.resolve", 2);
        m.set_opaque();
        let (syms, key) = (m.arg(0), m.arg(1));
        let len = m.reg();
        m.array_len(len, syms);
        let h = m.reg();
        let k7 = m.imm(7);
        m.bin(BinOp::Mul, h, key, k7);
        let posmask = m.imm(0x7fff_ffff);
        m.bin(BinOp::And, h, h, posmask);
        let acc = m.imm(0);
        let i = m.imm(0);
        let k24 = m.imm(24);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, k24, exit);
        let slot = m.reg();
        m.bin(BinOp::Add, slot, h, i);
        m.bin(BinOp::Rem, slot, slot, len);
        let v = m.reg();
        m.aload(v, syms, slot);
        m.bin(BinOp::Xor, acc, acc, v);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.ret(Some(acc));
        m.finish(&mut pb)
    };

    let report = pb.add_class(
        "Report",
        None,
        &[
            "violations",
            "visited",
            "score",
            "bykind",
            "byarity",
            "flagsum",
            "depthsum",
        ],
    );
    let f_viol = pb.field(report, "violations");
    let f_visited = pb.field(report, "visited");
    let f_score = pb.field(report, "score");
    let f_bykind = pb.field(report, "bykind");
    let f_byarity = pb.field(report, "byarity");
    let f_flagsum = pb.field(report, "flagsum");
    let f_depthsum = pb.field(report, "depthsum");

    const NODES: i64 = 400;
    let mut m = pb.method("main", 0);
    let nn = m.imm(NODES);
    let nodes = m.reg();
    m.new_array(nodes, nn);
    let syms_cap = m.imm(512);
    let syms = m.reg();
    m.new_array(syms, syms_cap);
    {
        let i = m.imm(0);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, syms_cap, exit);
        let r = m.reg();
        m.intrin(Intrinsic::NextRandom, Some(r), &[]);
        m.astore(syms, i, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
    }
    let rep = m.reg();
    m.new_obj(rep, report);
    let k16 = m.imm(16);
    let bykind = m.reg();
    m.new_array(bykind, k16);
    m.put_field(rep, f_bykind, bykind);
    let byarity = m.reg();
    m.new_array(byarity, k16);
    m.put_field(rep, f_byarity, byarity);

    // Four phases. The profile is dominated by phases 1-3 where rule matches
    // are absent; phase 4's rules match ~8% of nodes — the post-profile
    // behavior change (overall bias stays under the 1% cold threshold).
    for (phase, passes, viol_pct) in [(1u32, 12i64, 0i64), (2, 11, 0), (3, 11, 0), (4, 2, 16)] {
        // (Re)build the AST corpus for this phase.
        {
            let i = m.imm(0);
            let one = m.imm(1);
            let head = m.new_label();
            let exit = m.new_label();
            let mk_expr = m.new_label();
            let mk_stmt = m.new_label();
            let store = m.new_label();
            let k100 = m.imm(100);
            let kviol = m.imm(viol_pct);
            let k2 = m.imm(2);
            m.bind(head);
            m.branch(CmpOp::Ge, i, nn, exit);
            let r = m.reg();
            m.intrin(Intrinsic::NextRandom, Some(r), &[]);
            let which = m.reg();
            m.bin(BinOp::Rem, which, r, k2);
            let o = m.reg();
            let zero = m.imm(0);
            m.branch(CmpOp::Eq, which, zero, mk_expr);
            m.jump(mk_stmt);
            m.bind(mk_expr);
            m.new_obj(o, expr);
            m.jump(store);
            m.bind(mk_stmt);
            m.new_obj(o, stmt);
            m.jump(store);
            m.bind(store);
            // kind: 0..4 normally; kind==13 marks a violating node.
            let sel = m.reg();
            m.bin(BinOp::Rem, sel, r, k100);
            let k13 = m.imm(13);
            let k5 = m.imm(5);
            let kind = m.reg();
            m.bin(BinOp::Rem, kind, r, k5);
            let mark = m.new_label();
            let keep = m.new_label();
            m.branch(CmpOp::Lt, sel, kviol, mark);
            m.jump(keep);
            m.bind(mark);
            m.mov(kind, k13);
            m.jump(keep);
            m.bind(keep);
            m.put_field(o, f_kind, kind);
            let ar = m.reg();
            let k3 = m.imm(3);
            m.bin(BinOp::Rem, ar, r, k3);
            m.put_field(o, f_arity, ar);
            m.put_field(o, f_line, i);
            let hsh = m.reg();
            let k31 = m.imm(31);
            m.bin(BinOp::Mul, hsh, kind, k31);
            m.bin(BinOp::Add, hsh, hsh, ar);
            m.put_field(o, f_hash, hsh);
            let fl = m.reg();
            let k255 = m.imm(255);
            m.bin(BinOp::And, fl, r, k255);
            m.put_field(o, f_flags, fl);
            m.astore(nodes, i, o);
            m.bin(BinOp::Add, i, i, one);
            m.safepoint();
            m.jump(head);
            m.bind(exit);
        }

        m.marker(phase);
        let pass = m.imm(0);
        let npasses = m.imm(passes);
        let one = m.imm(1);
        let phead = m.new_label();
        let pexit = m.new_label();
        m.bind(phead);
        m.branch(CmpOp::Ge, pass, npasses, pexit);
        {
            // Rule-matching walk: instanceof dispatch, several rule
            // predicates with the visitor's characteristic redundant state
            // loads, per-kind and per-arity histograms.
            let i = m.imm(0);
            let head = m.new_label();
            let exit = m.new_label();
            let violated = m.new_label();
            let next = m.new_label();
            let k13 = m.imm(13);
            let k15 = m.imm(15);
            let k31 = m.imm(31);
            let k255 = m.imm(255);
            m.bind(head);
            m.branch(CmpOp::Ge, i, nn, exit);
            let o = m.reg();
            m.aload(o, nodes, i);
            // Rule 1: type dispatch via instanceof (the pmd visitor shape).
            let is_expr = m.reg();
            m.instance_of(is_expr, o, expr);
            let is_stmt = m.reg();
            m.instance_of(is_stmt, o, stmt);
            let kind = m.reg();
            m.get_field(kind, o, f_kind);
            let ar = m.reg();
            m.get_field(ar, o, f_arity);
            // Rule 2: hash consistency check (field loads + arithmetic).
            let hsh = m.reg();
            m.get_field(hsh, o, f_hash);
            let expect = m.reg();
            m.bin(BinOp::Mul, expect, kind, k31);
            m.bin(BinOp::Add, expect, expect, ar);
            let consistent = m.reg();
            m.cmp(CmpOp::Eq, consistent, hsh, expect);
            // Rule 3: flags decomposition.
            let fl = m.reg();
            m.get_field(fl, o, f_flags);
            let lo = m.reg();
            m.bin(BinOp::And, lo, fl, k15);
            let hi = m.reg();
            let k4 = m.imm(4);
            m.bin(BinOp::Shr, hi, fl, k4);
            m.bin(BinOp::And, hi, hi, k15);
            let fsum = m.reg();
            m.get_field(fsum, rep, f_flagsum);
            m.bin(BinOp::Add, fsum, fsum, lo);
            m.bin(BinOp::Add, fsum, fsum, hi);
            m.put_field(rep, f_flagsum, fsum);
            // Histograms (with the redundant re-loads of the report object).
            let bk1 = m.reg();
            m.get_field(bk1, rep, f_bykind);
            let kslot = m.reg();
            m.bin(BinOp::And, kslot, kind, k15);
            let kc = m.reg();
            m.aload(kc, bk1, kslot);
            m.bin(BinOp::Add, kc, kc, one);
            let bk2 = m.reg();
            m.get_field(bk2, rep, f_bykind); // redundant
            m.astore(bk2, kslot, kc);
            let ba1 = m.reg();
            m.get_field(ba1, rep, f_byarity);
            let ac = m.reg();
            m.aload(ac, ba1, ar);
            m.bin(BinOp::Add, ac, ac, one);
            let ba2 = m.reg();
            m.get_field(ba2, rep, f_byarity); // redundant
            m.astore(ba2, ar, ac);
            // Score + depth accumulation.
            let score = m.reg();
            m.get_field(score, rep, f_score);
            let w = m.reg();
            m.bin(BinOp::Mul, w, kind, ar);
            m.bin(BinOp::Add, w, w, is_expr);
            m.bin(BinOp::Add, w, w, is_stmt);
            m.bin(BinOp::Add, w, w, consistent);
            m.bin(BinOp::Add, score, score, w);
            m.put_field(rep, f_score, score);
            let ds = m.reg();
            m.get_field(ds, rep, f_depthsum);
            let lined = m.reg();
            m.get_field(lined, o, f_line);
            m.bin(BinOp::And, lined, lined, k255);
            m.bin(BinOp::Add, ds, ds, lined);
            m.put_field(rep, f_depthsum, ds);
            let vis = m.reg();
            m.get_field(vis, rep, f_visited);
            m.bin(BinOp::Add, vis, vis, one);
            m.put_field(rep, f_visited, vis);
            // The behavior-changing branch: cold in the profile, warm in
            // phase 4.
            m.branch(CmpOp::Eq, kind, k13, violated);
            m.jump(next);
            m.bind(violated);
            let line = m.reg();
            m.get_field(line, o, f_line);
            let sym = m.reg();
            m.call(Some(sym), resolve, &[syms, line]);
            let v = m.reg();
            m.get_field(v, rep, f_viol);
            m.bin(BinOp::Add, v, v, one);
            m.put_field(rep, f_viol, v);
            // Violations re-weight the report — clobbering the state the
            // post-join digest reads.
            let vs = m.reg();
            m.get_field(vs, rep, f_score);
            m.bin(BinOp::Add, vs, vs, k13);
            m.put_field(rep, f_score, vs);
            let vf = m.reg();
            m.get_field(vf, rep, f_flagsum);
            m.bin(BinOp::Add, vf, vf, one);
            m.put_field(rep, f_flagsum, vf);
            m.checksum(sym);
            m.jump(next);
            m.bind(next);
            // Rule summary after the (profiled-cold) violation join: the
            // baseline must reload everything; the region forwards it all.
            let r_score = m.reg();
            m.get_field(r_score, rep, f_score);
            let r_vis = m.reg();
            m.get_field(r_vis, rep, f_visited);
            let r_fs = m.reg();
            m.get_field(r_fs, rep, f_flagsum);
            let r_ds = m.reg();
            m.get_field(r_ds, rep, f_depthsum);
            let n_kind = m.reg();
            m.get_field(n_kind, o, f_kind);
            let n_ar = m.reg();
            m.get_field(n_ar, o, f_arity);
            let n_fl = m.reg();
            m.get_field(n_fl, o, f_flags);
            let digest = m.reg();
            m.bin(BinOp::Add, digest, r_score, r_vis);
            m.bin(BinOp::Add, digest, digest, r_fs);
            m.bin(BinOp::Add, digest, digest, r_ds);
            m.bin(BinOp::Mul, digest, digest, k31);
            m.bin(BinOp::Add, digest, digest, n_kind);
            m.bin(BinOp::Add, digest, digest, n_ar);
            m.bin(BinOp::Xor, digest, digest, n_fl);
            let ds2 = m.reg();
            m.get_field(ds2, rep, f_depthsum);
            m.bin(BinOp::Xor, ds2, ds2, digest);
            m.put_field(rep, f_depthsum, ds2);
            m.bin(BinOp::Add, i, i, one);
            m.safepoint();
            m.jump(head);
            m.bind(exit);
        }
        // Inter-pass symbol work (opaque; keeps coverage near the paper's
        // 32%).
        let sym2 = m.reg();
        m.call(Some(sym2), resolve, &[syms, pass]);
        m.checksum(sym2);
        let sym3 = m.reg();
        m.call(Some(sym3), resolve, &[syms, sym2]);
        m.checksum(sym3);
        m.bin(BinOp::Add, pass, pass, one);
        m.safepoint();
        m.jump(phead);
        m.bind(pexit);
        m.marker(phase);
    }

    for f in [f_viol, f_visited, f_score, f_flagsum, f_depthsum] {
        let v = m.reg();
        m.get_field(v, rep, f);
        m.checksum(v);
    }
    let out = m.reg();
    m.get_field(out, rep, f_visited);
    m.ret(Some(out));
    let entry = m.finish(&mut pb);

    Workload {
        name: "pmd",
        description: "AST rule matching: instanceof-dispatch visitor with a \
                      post-profile behavior change (phase 4 rule matches) \
                      driving ~1-2% aborts against only modest region wins",
        program: pb.finish(entry),
        samples: vec![
            Sample {
                marker: 1,
                weight: 0.3,
            },
            Sample {
                marker: 2,
                weight: 0.3,
            },
            Sample {
                marker: 3,
                weight: 0.3,
            },
            Sample {
                marker: 4,
                weight: 0.1,
            },
        ],
        fuel: 150_000_000,
    }
}
