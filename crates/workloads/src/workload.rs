//! Workload metadata: the DaCapo-style benchmark descriptor and the Table 2
//! sample structure.

use hasp_vm::class::Program;

/// One execution sample (§5 methodology): the region of execution between
/// two dynamic hits of a marker method, weighted by its phase's contribution
/// to overall execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Marker id bounding the sample (first hit = start, second = end).
    pub marker: u32,
    /// The phase's contribution to the overall execution (weights sum to 1).
    pub weight: f64,
}

/// A benchmark: a complete program plus its sample structure.
#[derive(Debug)]
pub struct Workload {
    /// DaCapo-style short name.
    pub name: &'static str,
    /// What the original benchmark does and which characteristics this
    /// synthetic reproduction preserves.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// Samples, per Table 2's per-benchmark sample counts.
    pub samples: Vec<Sample>,
    /// Interpreter/machine fuel adequate for the whole run.
    pub fuel: u64,
}

impl Workload {
    /// Number of samples (the `#` column of Table 2).
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::all_workloads;

    #[test]
    fn table2_sample_counts() {
        // antlr 4, bloat 4, fop 2, hsqldb 1, jython 1, pmd 4, xalan 1.
        let ws = all_workloads();
        let counts: Vec<(&str, usize)> = ws.iter().map(|w| (w.name, w.sample_count())).collect();
        assert_eq!(
            counts,
            vec![
                ("antlr", 4),
                ("bloat", 4),
                ("fop", 2),
                ("hsqldb", 1),
                ("jython", 1),
                ("pmd", 4),
                ("xalan", 1)
            ]
        );
        for w in &ws {
            let total: f64 = w.samples.iter().map(|s| s.weight).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} weights sum to {total}",
                w.name
            );
        }
    }
}
