//! `fop` — XSL-FO to PDF formatting.
//!
//! Preserved characteristics (Table 3): modest region coverage (~20%), the
//! smallest regions of the suite (~32 uops), near-zero aborts, small
//! speedup. Two samples (parse + render phases). Most work happens in
//! opaque glyph-metric lookups; the regionable kernel is a short line-break
//! cost computation.

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};

use crate::workload::{Sample, Workload};

/// Builds the fop workload.
pub fn fop() -> Workload {
    let mut pb = ProgramBuilder::new();

    // Opaque glyph-metrics "native" method: dominates execution.
    let metrics = {
        let mut m = pb.method("FontMetrics.width", 2);
        m.set_opaque();
        let (table, ch) = (m.arg(0), m.arg(1));
        let len = m.reg();
        m.array_len(len, table);
        let acc = m.imm(0);
        let i = m.imm(0);
        let k16 = m.imm(16);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, k16, exit);
        let slot = m.reg();
        m.bin(BinOp::Add, slot, ch, i);
        m.bin(BinOp::Rem, slot, slot, len);
        let w = m.reg();
        m.aload(w, table, slot);
        m.bin(BinOp::Add, acc, acc, w);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.ret(Some(acc));
        m.finish(&mut pb)
    };

    let layout = pb.add_class(
        "Layout",
        None,
        &["linewidth", "cursor", "lines", "overfull"],
    );
    let f_lw = pb.field(layout, "linewidth");
    let f_cur = pb.field(layout, "cursor");
    let f_lines = pb.field(layout, "lines");
    let f_over = pb.field(layout, "overfull");

    let mut m = pb.method("main", 0);
    let k512 = m.imm(512);
    let table = m.reg();
    m.new_array(table, k512);
    {
        let i = m.imm(0);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, k512, exit);
        let r = m.reg();
        m.intrin(Intrinsic::NextRandom, Some(r), &[]);
        let k12 = m.imm(12);
        let w = m.reg();
        m.bin(BinOp::Rem, w, r, k12);
        m.bin(BinOp::Add, w, w, one);
        m.astore(table, i, w);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
    }
    let lay = m.reg();
    m.new_obj(lay, layout);
    let lw = m.imm(6000);
    m.put_field(lay, f_lw, lw);

    // Two phases: parse (more chars) and render (fewer, heavier).
    for (phase, chars, lookups) in [(1u32, 2500i64, 2i64), (2, 1500, 3)] {
        m.marker(phase);
        let i = m.imm(0);
        let n = m.imm(chars);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        let brk = m.new_label();
        let nobrk = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        let r = m.reg();
        m.intrin(Intrinsic::NextRandom, Some(r), &[]);
        let k127 = m.imm(127);
        let ch = m.reg();
        m.bin(BinOp::And, ch, r, k127);
        // Opaque metric lookups dominate.
        let w = m.imm(0);
        for _ in 0..lookups {
            let wi = m.reg();
            m.call(Some(wi), metrics, &[table, ch]);
            m.bin(BinOp::Add, w, w, wi);
        }
        // The small regionable kernel: advance the cursor, break lines.
        let cur = m.reg();
        m.get_field(cur, lay, f_cur);
        m.bin(BinOp::Add, cur, cur, w);
        let lwv = m.reg();
        m.get_field(lwv, lay, f_lw);
        m.branch(CmpOp::Gt, cur, lwv, brk);
        m.put_field(lay, f_cur, cur);
        m.jump(nobrk);
        m.bind(brk);
        let lines = m.reg();
        m.get_field(lines, lay, f_lines);
        m.bin(BinOp::Add, lines, lines, one);
        m.put_field(lay, f_lines, lines);
        let rem = m.reg();
        m.bin(BinOp::Sub, rem, cur, lwv);
        m.put_field(lay, f_cur, rem);
        // Extremely wide "overfull" lines are the cold path.
        let k3 = m.imm(3);
        let wide3 = m.reg();
        m.bin(BinOp::Mul, wide3, lwv, k3);
        let overfull = m.new_label();
        m.branch(CmpOp::Gt, rem, wide3, overfull);
        m.jump(nobrk);
        m.bind(overfull);
        let ov = m.reg();
        m.get_field(ov, lay, f_over);
        m.bin(BinOp::Add, ov, ov, one);
        m.put_field(lay, f_over, ov);
        // Overfull recovery rewrites the layout cursor and line count.
        let zero_c = m.imm(0);
        m.put_field(lay, f_cur, zero_c);
        let ol = m.reg();
        m.get_field(ol, lay, f_lines);
        m.bin(BinOp::Add, ol, ol, one);
        m.put_field(lay, f_lines, ol);
        m.jump(nobrk);
        m.bind(nobrk);
        // Layout audit after the overfull join: reloaded in the baseline,
        // forwarded inside the region.
        let a_cur = m.reg();
        m.get_field(a_cur, lay, f_cur);
        let a_lines = m.reg();
        m.get_field(a_lines, lay, f_lines);
        let a_lw = m.reg();
        m.get_field(a_lw, lay, f_lw);
        let a_ov = m.reg();
        m.get_field(a_ov, lay, f_over);
        let audit = m.reg();
        m.bin(BinOp::Add, audit, a_cur, a_lines);
        m.bin(BinOp::Add, audit, audit, a_lw);
        m.bin(BinOp::Add, audit, audit, a_ov);
        m.checksum(audit);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.marker(phase);
    }

    for f in [f_lines, f_cur, f_over] {
        let v = m.reg();
        m.get_field(v, lay, f);
        m.checksum(v);
    }
    let out = m.reg();
    m.get_field(out, lay, f_lines);
    m.ret(Some(out));
    let entry = m.finish(&mut pb);

    Workload {
        name: "fop",
        description: "XSL-FO formatting: opaque glyph-metric lookups dominate \
                      (modest coverage); the line-breaking kernel forms the \
                      suite's smallest regions",
        program: pb.finish(entry),
        samples: vec![
            Sample {
                marker: 1,
                weight: 0.6,
            },
            Sample {
                marker: 2,
                weight: 0.4,
            },
        ],
        fuel: 100_000_000,
    }
}
