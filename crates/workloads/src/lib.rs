//! # hasp-workloads — the DaCapo-style benchmark suite
//!
//! Seven synthetic benchmarks reproducing the *characteristics* of the
//! DaCapo programs the paper evaluates (Table 2) — the code shapes that
//! drive each benchmark's results in Figures 7–9 and Table 3. See each
//! module's documentation and `DESIGN.md` §4 for the characteristic map.
//!
//! All workloads are deterministic (inputs come from the environment's
//! seeded generator), produce an observable checksum, and mark their
//! measured samples with marker pairs per the paper's §5 methodology.

#![warn(missing_docs)]

pub mod antlr;
pub mod bloat;
pub mod classlib;
pub mod fop;
pub mod hsqldb;
pub mod jython;
pub mod pmd;
pub mod synthetic;
pub mod workload;
pub mod xalan;

pub use workload::{Sample, Workload};

/// All seven workloads in Table 2 order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        antlr::antlr(),
        bloat::bloat(),
        fop::fop(),
        hsqldb::hsqldb(),
        jython::jython(),
        pmd::pmd(),
        xalan::xalan(),
    ]
}
