//! `xalan` — XML-to-HTML transformation.
//!
//! Preserved characteristics (paper §2, §6.1, Table 3): the
//! `SuballocatedIntVector.addElement` hot/cold shape called *twice per
//! element* at the hottest call site (`m_data.addElement(m_textPendingStart);
//! m_data.addElement(length)`), synchronized classlib output buffering, high
//! region coverage (~78%), near-zero abort rate, single sample.

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};

use crate::classlib::{int_vector, string_buffer};
use crate::workload::{Sample, Workload};

/// Builds the xalan workload.
pub fn xalan() -> Workload {
    let mut pb = ProgramBuilder::new();
    let vec = int_vector(&mut pb);
    let sb = string_buffer(&mut pb);

    let mut m = pb.method("main", 0);
    // Setup: the record vector and the output buffer.
    let bs = m.imm(2048);
    let data = m.reg();
    m.call(Some(data), vec.new, &[bs]);
    let cap = m.imm(1 << 16);
    let out = m.reg();
    m.call(Some(out), sb.new, &[cap]);
    // Entity-escape table (indexed by character).
    let k128 = m.imm(128);
    let escapes = m.reg();
    m.new_array(escapes, k128);
    {
        let i = m.imm(0);
        let one2 = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, k128, exit);
        let k3 = m.imm(3);
        let e = m.reg();
        m.bin(BinOp::Mul, e, i, k3);
        let k255 = m.imm(255);
        m.bin(BinOp::And, e, e, k255);
        m.astore(escapes, i, e);
        m.bin(BinOp::Add, i, i, one2);
        m.jump(head);
        m.bind(exit);
    }

    let pending = m.imm(0); // m_textPendingStart
    let one = m.imm(1);
    let k100 = m.imm(100);
    let k70 = m.imm(70);
    let k95 = m.imm(95);
    let mask = m.imm(0x7f);

    // Warm-up events, then the measured event loop.
    for (events, measured) in [(800i64, false), (6000, true)] {
        if measured {
            m.marker(1);
        }
        let i = m.imm(0);
        let n = m.imm(events);
        let head = m.new_label();
        let exit = m.new_label();
        let is_text = m.new_label();
        let is_start = m.new_label();
        let is_end = m.new_label();
        let join = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        // Next event kind (deterministic pseudo-random).
        let r = m.reg();
        m.intrin(Intrinsic::NextRandom, Some(r), &[]);
        let kind = m.reg();
        m.bin(BinOp::Rem, kind, r, k100);
        let ch = m.reg();
        m.bin(BinOp::And, ch, r, mask);
        m.branch(CmpOp::Lt, kind, k70, is_text);
        m.branch(CmpOp::Lt, kind, k95, is_start);
        m.jump(is_end);

        // Text event (70%): escape the character, record the pending text
        // segment — the paper's hottest call site, two sequential addElement
        // calls on one object — and emit the escaped output.
        m.bind(is_text);
        let len = m.reg();
        m.bin(BinOp::Add, len, ch, one);
        // Entity escaping: table lookups with the checks the compiler loves
        // to prove redundant.
        let e1 = m.reg();
        m.aload(e1, escapes, ch);
        let e2 = m.reg();
        m.aload(e2, escapes, ch); // redundant lookup (visitor idiom)
        let esc = m.reg();
        m.bin(BinOp::Add, esc, e1, e2);
        let k255b = m.imm(255);
        m.bin(BinOp::And, esc, esc, k255b);
        let half = m.reg();
        let two2 = m.imm(2);
        m.bin(BinOp::Div, half, esc, two2);
        m.call(None, vec.add, &[data, pending]);
        m.call(None, vec.add, &[data, len]);
        m.bin(BinOp::Add, pending, pending, len);
        m.call(None, sb.append, &[out, half]);
        m.call(None, sb.append, &[out, ch]);
        m.jump(join);

        // Start tag (25%): emit markup + attribute processing.
        m.bind(is_start);
        let lt = m.imm(60); // '<'
        m.call(None, sb.append, &[out, lt]);
        m.call(None, sb.append, &[out, ch]);
        let a1 = m.reg();
        m.aload(a1, escapes, ch);
        let attr = m.reg();
        let k31x = m.imm(31);
        m.bin(BinOp::Mul, attr, a1, k31x);
        m.bin(BinOp::Add, attr, attr, ch);
        let k127x = m.imm(127);
        m.bin(BinOp::And, attr, attr, k127x);
        m.call(None, sb.append, &[out, attr]);
        m.call(None, vec.add, &[data, ch]);
        m.call(None, vec.add, &[data, attr]);
        m.jump(join);

        // End tag (5%).
        m.bind(is_end);
        let gt = m.imm(62); // '>'
        m.call(None, sb.append, &[out, gt]);
        m.jump(join);

        m.bind(join);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        if measured {
            m.marker(1);
        }
    }

    // Observable output: vector size, a few sampled records, buffer hash.
    let sz = m.reg();
    m.call(Some(sz), vec.size, &[data]);
    m.checksum(sz);
    let step = m.imm(97);
    let j = m.imm(0);
    let probe_head = m.new_label();
    let probe_exit = m.new_label();
    m.bind(probe_head);
    m.branch(CmpOp::Ge, j, sz, probe_exit);
    let e = m.reg();
    m.call(Some(e), vec.get, &[data, j]);
    m.checksum(e);
    m.bin(BinOp::Add, j, j, step);
    m.safepoint();
    m.jump(probe_head);
    m.bind(probe_exit);
    let h = m.reg();
    m.call(Some(h), sb.hash, &[out]);
    m.checksum(h);
    m.ret(Some(h));
    let entry = m.finish(&mut pb);

    Workload {
        name: "xalan",
        description: "XML-to-HTML conversion: SuballocatedIntVector.addElement \
                      called twice per text event, synchronized output buffer, \
                      high region coverage, near-zero aborts",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 60_000_000,
    }
}
