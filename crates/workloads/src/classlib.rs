//! A small synthetic "class library" shared by the benchmark programs:
//! the Xalan-style `SuballocatedIntVector`, a synchronized `StringBuffer`,
//! an open-addressing integer hash map, and boxed-value classes for the
//! Jython-style interpreter. These provide the code shapes the paper's
//! optimizations feed on — redundant checks, biased branches, monitor pairs
//! on uncontended locks, and virtual dispatch.

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, ClassId, CmpOp, FieldId, MethodId, SlotId};

/// The Figure 2 class: an extensible vector of integers maintaining an array
/// of sub-arrays with a cached current chunk, so the 99.8%-biased fast path
/// of `addElement` is check + store + increment.
#[derive(Debug, Clone, Copy)]
pub struct IntVector {
    /// The vector class.
    pub class: ClassId,
    /// `new(blocksize) -> vec` (static factory).
    pub new: MethodId,
    /// `addElement(vec, value)`.
    pub add: MethodId,
    /// `elementAt(vec, index) -> value` (fast path through the cache).
    pub get: MethodId,
    /// `size(vec) -> n`.
    pub size: MethodId,
    /// Field: current insertion index.
    pub f_first_free: FieldId,
}

/// Installs the `SuballocatedIntVector` class into `pb`.
pub fn int_vector(pb: &mut ProgramBuilder) -> IntVector {
    let class = pb.add_class(
        "SuballocatedIntVector",
        None,
        &[
            "m_map",
            "m_blocksize",
            "m_cachedChunk",
            "m_cachedBase",
            "m_firstFree",
        ],
    );
    let f_map = pb.field(class, "m_map");
    let f_bs = pb.field(class, "m_blocksize");
    let f_chunk = pb.field(class, "m_cachedChunk");
    let f_base = pb.field(class, "m_cachedBase");
    let f_free = pb.field(class, "m_firstFree");

    // new(blocksize): allocate the chunk map and the first chunk.
    let new = {
        let mut m = pb.method("SuballocatedIntVector.new", 1);
        let v = m.reg();
        m.new_obj(v, class);
        m.put_field(v, f_bs, m.arg(0));
        let map_cap = m.imm(64);
        let map = m.reg();
        m.new_array(map, map_cap);
        m.put_field(v, f_map, map);
        let chunk = m.reg();
        m.new_array(chunk, m.arg(0));
        let zero = m.imm(0);
        m.astore(map, zero, chunk);
        m.put_field(v, f_chunk, chunk);
        m.put_field(v, f_base, zero);
        m.put_field(v, f_free, zero);
        m.ret(Some(v));
        m.finish(pb)
    };

    // addElement(v, x): hot path hits the cached chunk.
    let add = {
        let mut m = pb.method("SuballocatedIntVector.addElement", 2);
        let (v, x) = (m.arg(0), m.arg(1));
        let slow = m.new_label();
        let done = m.new_label();
        let i = m.reg();
        m.get_field(i, v, f_free);
        let base = m.reg();
        m.get_field(base, v, f_base);
        let off = m.reg();
        m.bin(BinOp::Sub, off, i, base);
        let bs = m.reg();
        m.get_field(bs, v, f_bs);
        m.branch(CmpOp::Ge, off, bs, slow);
        // fast path
        let chunk = m.reg();
        m.get_field(chunk, v, f_chunk);
        m.astore(chunk, off, x);
        let one = m.imm(1);
        let i2 = m.reg();
        m.bin(BinOp::Add, i2, i, one);
        m.put_field(v, f_free, i2);
        m.jump(done);
        // slow path: allocate a new chunk and update the cache
        m.bind(slow);
        let map = m.reg();
        m.get_field(map, v, f_map);
        let ci = m.reg();
        m.bin(BinOp::Div, ci, i, bs);
        let nbase = m.reg();
        m.bin(BinOp::Mul, nbase, ci, bs);
        let nchunk = m.reg();
        m.new_array(nchunk, bs);
        m.astore(map, ci, nchunk);
        m.put_field(v, f_chunk, nchunk);
        m.put_field(v, f_base, nbase);
        let noff = m.reg();
        m.bin(BinOp::Sub, noff, i, nbase);
        m.astore(nchunk, noff, x);
        let one2 = m.imm(1);
        let i3 = m.reg();
        m.bin(BinOp::Add, i3, i, one2);
        m.put_field(v, f_free, i3);
        m.jump(done);
        m.bind(done);
        m.ret(None);
        m.finish(pb)
    };

    // elementAt(v, idx): fast when idx is in the cached chunk.
    let get = {
        let mut m = pb.method("SuballocatedIntVector.elementAt", 2);
        let (v, idx) = (m.arg(0), m.arg(1));
        let slow = m.new_label();
        let base = m.reg();
        m.get_field(base, v, f_base);
        let off = m.reg();
        m.bin(BinOp::Sub, off, idx, base);
        let zero = m.imm(0);
        m.branch(CmpOp::Lt, off, zero, slow);
        let bs = m.reg();
        m.get_field(bs, v, f_bs);
        m.branch(CmpOp::Ge, off, bs, slow);
        let chunk = m.reg();
        m.get_field(chunk, v, f_chunk);
        let out = m.reg();
        m.aload(out, chunk, off);
        m.ret(Some(out));
        m.bind(slow);
        let map = m.reg();
        m.get_field(map, v, f_map);
        let ci = m.reg();
        let bs2 = m.reg();
        m.get_field(bs2, v, f_bs);
        m.bin(BinOp::Div, ci, idx, bs2);
        let ch = m.reg();
        m.aload(ch, map, ci);
        let o2 = m.reg();
        m.bin(BinOp::Rem, o2, idx, bs2);
        let out2 = m.reg();
        m.aload(out2, ch, o2);
        m.ret(Some(out2));
        m.finish(pb)
    };

    let size = {
        let mut m = pb.method("SuballocatedIntVector.size", 1);
        let n = m.reg();
        m.get_field(n, m.arg(0), f_free);
        m.ret(Some(n));
        m.finish(pb)
    };

    IntVector {
        class,
        new,
        add,
        get,
        size,
        f_first_free: f_free,
    }
}

/// A synchronized string buffer, the classlib shape behind "elimination of
/// monitor overhead of calls to synchronized classlib methods" (antlr, §6.1).
#[derive(Debug, Clone, Copy)]
pub struct StringBuffer {
    /// The buffer class.
    pub class: ClassId,
    /// `new(capacity) -> sb`.
    pub new: MethodId,
    /// synchronized `append(sb, ch)`.
    pub append: MethodId,
    /// synchronized `length(sb) -> n`.
    pub length: MethodId,
    /// `hash(sb) -> h` (iterates the buffer; not synchronized).
    pub hash: MethodId,
}

/// Installs the `StringBuffer` class into `pb`.
pub fn string_buffer(pb: &mut ProgramBuilder) -> StringBuffer {
    let class = pb.add_class("StringBuffer", None, &["buf", "len"]);
    let f_buf = pb.field(class, "buf");
    let f_len = pb.field(class, "len");

    let new = {
        let mut m = pb.method("StringBuffer.new", 1);
        let sb = m.reg();
        m.new_obj(sb, class);
        let buf = m.reg();
        m.new_array(buf, m.arg(0));
        m.put_field(sb, f_buf, buf);
        let zero = m.imm(0);
        m.put_field(sb, f_len, zero);
        m.ret(Some(sb));
        m.finish(pb)
    };

    let append = {
        let mut m = pb.method("StringBuffer.append", 2);
        m.set_synchronized();
        let (sb, ch) = (m.arg(0), m.arg(1));
        let grow = m.new_label();
        let store = m.new_label();
        let len = m.reg();
        m.get_field(len, sb, f_len);
        let buf = m.reg();
        m.get_field(buf, sb, f_buf);
        let cap = m.reg();
        m.array_len(cap, buf);
        m.branch(CmpOp::Ge, len, cap, grow);
        m.jump(store);
        m.bind(grow);
        // double the buffer (cold)
        let two = m.imm(2);
        let ncap = m.reg();
        m.bin(BinOp::Mul, ncap, cap, two);
        let nbuf = m.reg();
        m.new_array(nbuf, ncap);
        let i = m.imm(0);
        let one = m.imm(1);
        let copy = m.new_label();
        let copied = m.new_label();
        m.bind(copy);
        m.branch(CmpOp::Ge, i, len, copied);
        let t = m.reg();
        m.aload(t, buf, i);
        m.astore(nbuf, i, t);
        m.bin(BinOp::Add, i, i, one);
        m.jump(copy);
        m.bind(copied);
        m.put_field(sb, f_buf, nbuf);
        m.mov(buf, nbuf);
        m.jump(store);
        m.bind(store);
        m.astore(buf, len, ch);
        let one2 = m.imm(1);
        let len2 = m.reg();
        m.bin(BinOp::Add, len2, len, one2);
        m.put_field(sb, f_len, len2);
        m.ret(None);
        m.finish(pb)
    };

    let length = {
        let mut m = pb.method("StringBuffer.length", 1);
        m.set_synchronized();
        let n = m.reg();
        m.get_field(n, m.arg(0), f_len);
        m.ret(Some(n));
        m.finish(pb)
    };

    let hash = {
        let mut m = pb.method("StringBuffer.hash", 1);
        let sb = m.arg(0);
        let buf = m.reg();
        m.get_field(buf, sb, f_buf);
        let len = m.reg();
        m.get_field(len, sb, f_len);
        let h = m.imm(0);
        let i = m.imm(0);
        let one = m.imm(1);
        let k31 = m.imm(31);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, len, exit);
        let c = m.reg();
        m.aload(c, buf, i);
        m.bin(BinOp::Mul, h, h, k31);
        m.bin(BinOp::Add, h, h, c);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.ret(Some(h));
        m.finish(pb)
    };

    StringBuffer {
        class,
        new,
        append,
        length,
        hash,
    }
}

/// An open-addressing integer hash map (power-of-two capacity). `get` on a
/// present key usually probes once — a 95%+ biased loop exit.
#[derive(Debug, Clone, Copy)]
pub struct HashMapInt {
    /// The map class.
    pub class: ClassId,
    /// `new(capacity_pow2) -> map`.
    pub new: MethodId,
    /// `put(map, key, value)` (keys must be nonzero; no growth — size maps
    /// accordingly).
    pub put: MethodId,
    /// `get(map, key) -> value` (0 when absent).
    pub get: MethodId,
}

/// Installs the hash map class into `pb`.
pub fn hash_map_int(pb: &mut ProgramBuilder) -> HashMapInt {
    let class = pb.add_class("HashMapInt", None, &["keys", "vals", "mask"]);
    let f_keys = pb.field(class, "keys");
    let f_vals = pb.field(class, "vals");
    let f_mask = pb.field(class, "mask");

    let new = {
        let mut m = pb.method("HashMapInt.new", 1);
        let map = m.reg();
        m.new_obj(map, class);
        let keys = m.reg();
        m.new_array(keys, m.arg(0));
        let vals = m.reg();
        m.new_array(vals, m.arg(0));
        m.put_field(map, f_keys, keys);
        m.put_field(map, f_vals, vals);
        let one = m.imm(1);
        let mask = m.reg();
        m.bin(BinOp::Sub, mask, m.arg(0), one);
        m.put_field(map, f_mask, mask);
        m.ret(Some(map));
        m.finish(pb)
    };

    // Shared probe loop shape for put/get.
    let put = {
        let mut m = pb.method("HashMapInt.put", 3);
        let (map, key, val) = (m.arg(0), m.arg(1), m.arg(2));
        let keys = m.reg();
        m.get_field(keys, map, f_keys);
        let vals = m.reg();
        m.get_field(vals, map, f_vals);
        let mask = m.reg();
        m.get_field(mask, map, f_mask);
        let h = m.reg();
        let k7 = m.imm(7);
        m.bin(BinOp::Mul, h, key, k7);
        m.bin(BinOp::And, h, h, mask);
        let one = m.imm(1);
        let zero = m.imm(0);
        let probe = m.new_label();
        let store = m.new_label();
        let bump = m.new_label();
        m.bind(probe);
        let k = m.reg();
        m.aload(k, keys, h);
        m.branch(CmpOp::Eq, k, zero, store);
        m.branch(CmpOp::Eq, k, key, store);
        m.jump(bump);
        m.bind(bump);
        m.bin(BinOp::Add, h, h, one);
        m.bin(BinOp::And, h, h, mask);
        m.safepoint();
        m.jump(probe);
        m.bind(store);
        m.astore(keys, h, key);
        m.astore(vals, h, val);
        m.ret(None);
        m.finish(pb)
    };

    let get = {
        let mut m = pb.method("HashMapInt.get", 2);
        let (map, key) = (m.arg(0), m.arg(1));
        let keys = m.reg();
        m.get_field(keys, map, f_keys);
        let vals = m.reg();
        m.get_field(vals, map, f_vals);
        let mask = m.reg();
        m.get_field(mask, map, f_mask);
        let h = m.reg();
        let k7 = m.imm(7);
        m.bin(BinOp::Mul, h, key, k7);
        m.bin(BinOp::And, h, h, mask);
        let one = m.imm(1);
        let zero = m.imm(0);
        let probe = m.new_label();
        let found = m.new_label();
        let miss = m.new_label();
        m.bind(probe);
        let k = m.reg();
        m.aload(k, keys, h);
        m.branch(CmpOp::Eq, k, key, found);
        m.branch(CmpOp::Eq, k, zero, miss);
        m.bin(BinOp::Add, h, h, one);
        m.bin(BinOp::And, h, h, mask);
        m.safepoint();
        m.jump(probe);
        m.bind(found);
        let v = m.reg();
        m.aload(v, vals, h);
        m.ret(Some(v));
        m.bind(miss);
        m.ret(Some(zero));
        m.finish(pb)
    };

    HashMapInt {
        class,
        new,
        put,
        get,
    }
}

/// Boxed-value classes with a virtual `value()` method — the receiver-type
/// pollution mechanism behind the jython `getitem` pathology (§6.1).
#[derive(Debug, Clone, Copy)]
pub struct Boxes {
    /// Base class (abstract).
    pub base: ClassId,
    /// Box whose `value()` returns the payload.
    pub int_box: ClassId,
    /// Box whose `value()` returns a transformed payload.
    pub alt_box: ClassId,
    /// The virtual slot for `value()`.
    pub slot: SlotId,
    /// `IntBox.new(payload)`.
    pub new_int: MethodId,
    /// `AltBox.new(payload)`.
    pub new_alt: MethodId,
}

/// Installs the box classes into `pb`.
pub fn boxes(pb: &mut ProgramBuilder) -> Boxes {
    let int_value = pb.declare("IntBox.value", 1);
    let alt_value = pb.declare("AltBox.value", 1);
    let base = pb.add_class("Box", None, &["payload"]);
    let f_payload = pb.field(base, "payload");
    let slot = pb.add_slot(base, int_value);
    let int_box = pb.add_class("IntBox", Some(base), &[]);
    let alt_box = pb.add_class("AltBox", Some(base), &[]);
    pb.override_slot(int_box, slot, int_value);
    pb.override_slot(alt_box, slot, alt_value);

    {
        let mut m = pb.method("IntBox.value", 1);
        let v = m.reg();
        m.get_field(v, m.arg(0), f_payload);
        m.ret(Some(v));
        m.finish(pb);
    }
    {
        let mut m = pb.method("AltBox.value", 1);
        let v = m.reg();
        m.get_field(v, m.arg(0), f_payload);
        let three = m.imm(3);
        m.bin(BinOp::Mul, v, v, three);
        m.ret(Some(v));
        m.finish(pb);
    }
    let new_int = {
        let mut m = pb.method("IntBox.new", 1);
        let o = m.reg();
        m.new_obj(o, int_box);
        m.put_field(o, f_payload, m.arg(0));
        m.ret(Some(o));
        m.finish(pb)
    };
    let new_alt = {
        let mut m = pb.method("AltBox.new", 1);
        let o = m.reg();
        m.new_obj(o, alt_box);
        m.put_field(o, f_payload, m.arg(0));
        m.ret(Some(o));
        m.finish(pb)
    };

    Boxes {
        base,
        int_box,
        alt_box,
        slot,
        new_int,
        new_alt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_vm::interp::Interp;
    use hasp_vm::value::Value;

    #[test]
    fn int_vector_add_get() {
        let mut pb = ProgramBuilder::new();
        let vec = int_vector(&mut pb);
        let mut m = pb.method("main", 0);
        let bs = m.imm(16);
        let v = m.reg();
        m.call(Some(v), vec.new, &[bs]);
        let i = m.imm(0);
        let n = m.imm(100); // crosses chunk boundaries
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        m.call(None, vec.add, &[v, i]);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        let idx = m.imm(77);
        let out = m.reg();
        m.call(Some(out), vec.get, &[v, idx]);
        let sz = m.reg();
        m.call(Some(sz), vec.size, &[v]);
        m.bin(BinOp::Mul, sz, sz, out);
        m.ret(Some(sz));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut interp = Interp::new(&p);
        interp.set_fuel(10_000_000);
        assert_eq!(interp.run(&[]).unwrap(), Some(Value::Int(100 * 77)));
    }

    #[test]
    fn string_buffer_append_grow_hash() {
        let mut pb = ProgramBuilder::new();
        let sb = string_buffer(&mut pb);
        let mut m = pb.method("main", 0);
        let cap = m.imm(4);
        let b = m.reg();
        m.call(Some(b), sb.new, &[cap]);
        for ch in [7i64, 11, 13, 17, 19, 23] {
            let c = m.imm(ch);
            m.call(None, sb.append, &[b, c]);
        }
        let len = m.reg();
        m.call(Some(len), sb.length, &[b]);
        let h = m.reg();
        m.call(Some(h), sb.hash, &[b]);
        m.bin(BinOp::Xor, h, h, len);
        m.ret(Some(h));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut interp = Interp::new(&p);
        interp.set_fuel(1_000_000);
        let expected = {
            let mut h: i64 = 0;
            for ch in [7i64, 11, 13, 17, 19, 23] {
                h = h * 31 + ch;
            }
            h ^ 6
        };
        assert_eq!(interp.run(&[]).unwrap(), Some(Value::Int(expected)));
    }

    #[test]
    fn hash_map_put_get() {
        let mut pb = ProgramBuilder::new();
        let map = hash_map_int(&mut pb);
        let mut m = pb.method("main", 0);
        let cap = m.imm(64);
        let h = m.reg();
        m.call(Some(h), map.new, &[cap]);
        let i = m.imm(1);
        let n = m.imm(30);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Gt, i, n, exit);
        let v = m.reg();
        m.bin(BinOp::Mul, v, i, i);
        m.call(None, map.put, &[h, i, v]);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        let k = m.imm(17);
        let got = m.reg();
        m.call(Some(got), map.get, &[h, k]);
        let absent = m.imm(55);
        let got2 = m.reg();
        m.call(Some(got2), map.get, &[h, absent]);
        m.bin(BinOp::Add, got, got, got2);
        m.ret(Some(got));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut interp = Interp::new(&p);
        interp.set_fuel(10_000_000);
        assert_eq!(interp.run(&[]).unwrap(), Some(Value::Int(17 * 17)));
    }

    #[test]
    fn boxes_dispatch() {
        let mut pb = ProgramBuilder::new();
        let bx = boxes(&mut pb);
        let mut m = pb.method("main", 0);
        let five = m.imm(5);
        let a = m.reg();
        m.call(Some(a), bx.new_int, &[five]);
        let b = m.reg();
        m.call(Some(b), bx.new_alt, &[five]);
        let va = m.reg();
        m.call_virtual(Some(va), bx.slot, a, &[]);
        let vb = m.reg();
        m.call_virtual(Some(vb), bx.slot, b, &[]);
        m.bin(BinOp::Add, va, va, vb);
        m.ret(Some(va));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut interp = Interp::new(&p);
        assert_eq!(interp.run(&[]).unwrap(), Some(Value::Int(5 + 15)));
    }
}
