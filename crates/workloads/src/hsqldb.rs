//! `hsqldb` — a JDBCbench-like transaction mix over an in-memory table.
//!
//! Preserved characteristics (§6.1, Table 3): synchronized-method-heavy
//! transaction path (session begin/commit, audit, logging) on uncontended
//! monitors → the biggest SLE win; redundant schema/field loads across each
//! transaction → large GVN win; high coverage (~76%); the rare rollback path
//! aborts *early* in the region so aborts stay cheap; single sample. The
//! audit step only fits the 5× aggressive-inlining threshold, producing the
//! paper's large `atomic` → `atomic+aggr` gap (25% → 56%).

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};

use crate::classlib::{hash_map_int, string_buffer};
use crate::workload::{Sample, Workload};

/// Builds the hsqldb workload.
pub fn hsqldb() -> Workload {
    let mut pb = ProgramBuilder::new();
    let map = hash_map_int(&mut pb);
    let sb = string_buffer(&mut pb);

    // Session: transaction counters + status, all synchronized.
    let session = pb.add_class("Session", None, &["txns", "dirty", "reads", "writes"]);
    let f_txns = pb.field(session, "txns");
    let f_dirty = pb.field(session, "dirty");
    let f_reads = pb.field(session, "reads");
    let f_writes = pb.field(session, "writes");
    let begin = {
        let mut m = pb.method("Session.begin", 1);
        m.set_synchronized();
        let one = m.imm(1);
        m.put_field(m.arg(0), f_dirty, one);
        m.ret(None);
        m.finish(&mut pb)
    };
    let commit = {
        let mut m = pb.method("Session.commit", 3);
        m.set_synchronized();
        let (s, r, w) = (m.arg(0), m.arg(1), m.arg(2));
        let t = m.reg();
        m.get_field(t, s, f_txns);
        let one = m.imm(1);
        m.bin(BinOp::Add, t, t, one);
        m.put_field(s, f_txns, t);
        let rd = m.reg();
        m.get_field(rd, s, f_reads);
        m.bin(BinOp::Add, rd, rd, r);
        m.put_field(s, f_reads, rd);
        let wr = m.reg();
        m.get_field(wr, s, f_writes);
        m.bin(BinOp::Add, wr, wr, w);
        m.put_field(s, f_writes, wr);
        let zero = m.imm(0);
        m.put_field(s, f_dirty, zero);
        m.ret(None);
        m.finish(&mut pb)
    };

    // Table: a 4-column row store plus an id index.
    let table = pb.add_class(
        "Table",
        None,
        &[
            "balances", "counts", "stamps", "flags", "nrows", "index", "checksum",
        ],
    );
    let f_bal = pb.field(table, "balances");
    let f_cnt = pb.field(table, "counts");
    let f_ts = pb.field(table, "stamps");
    let f_fl = pb.field(table, "flags");
    let f_nrows = pb.field(table, "nrows");
    let f_index = pb.field(table, "index");
    let f_cksum = pb.field(table, "checksum");

    // update(table, row, delta, stamp): the transaction kernel — touches all
    // four columns with the redundant re-loads characteristic of row-store
    // accessors, plus a cold negative-balance clamp.
    let update = {
        let mut m = pb.method("Table.update", 4);
        let (t, row, delta, stamp) = (m.arg(0), m.arg(1), m.arg(2), m.arg(3));
        let one = m.imm(1);
        // Column 1: balance.
        let bal = m.reg();
        m.get_field(bal, t, f_bal);
        let v = m.reg();
        m.aload(v, bal, row);
        m.bin(BinOp::Add, v, v, delta);
        let clamp = m.new_label();
        let stored = m.new_label();
        let kneg = m.imm(-1_000_000);
        m.branch(CmpOp::Lt, v, kneg, clamp);
        m.jump(stored);
        m.bind(clamp); // cold: huge negative balances reset (never in-run)
        m.mov(v, kneg);
        let cck = m.reg();
        m.get_field(cck, t, f_cksum);
        m.bin(BinOp::Xor, cck, cck, kneg);
        m.put_field(t, f_cksum, cck);
        m.jump(stored);
        m.bind(stored);
        // After the (cold) clamp join the row accessor re-derives its column
        // arrays — forwarded inside a region, reloaded in the baseline.
        let bal2 = m.reg();
        m.get_field(bal2, t, f_bal);
        m.astore(bal2, row, v);
        let nr2 = m.reg();
        m.get_field(nr2, t, f_nrows);
        let ck0 = m.reg();
        m.get_field(ck0, t, f_cksum);
        let probe = m.reg();
        m.bin(BinOp::Add, probe, nr2, ck0);
        let k0 = m.imm(0);
        m.bin(BinOp::Mul, probe, probe, k0); // engineering: value unused
        m.bin(BinOp::Add, v, v, probe);
        // Column 2: access count.
        let cnt = m.reg();
        m.get_field(cnt, t, f_cnt);
        let c = m.reg();
        m.aload(c, cnt, row);
        m.bin(BinOp::Add, c, c, one);
        let cnt2 = m.reg();
        m.get_field(cnt2, t, f_cnt); // redundant
        m.astore(cnt2, row, c);
        // Column 3: timestamp.
        let ts = m.reg();
        m.get_field(ts, t, f_ts);
        m.astore(ts, row, stamp);
        // Column 4: dirty flag bits.
        let fl = m.reg();
        m.get_field(fl, t, f_fl);
        let fv = m.reg();
        m.aload(fv, fl, row);
        let k1 = m.imm(1);
        m.bin(BinOp::Or, fv, fv, k1);
        let fl2 = m.reg();
        m.get_field(fl2, t, f_fl); // redundant
        m.astore(fl2, row, fv);
        // Row checksum maintenance.
        let ck = m.reg();
        m.get_field(ck, t, f_cksum);
        let k31 = m.imm(31);
        let mixed = m.reg();
        m.bin(BinOp::Mul, mixed, v, k31);
        m.bin(BinOp::Add, mixed, mixed, c);
        m.bin(BinOp::Xor, ck, ck, mixed);
        m.put_field(t, f_cksum, ck);
        m.ret(Some(v));
        m.finish(&mut pb)
    };

    // audit(table, session, row): a synchronized consistency sweep over the
    // row's neighborhood. Warm size ~100 ops: beyond the default aggressive
    // budget's comfortable fit once combined with the rest of the txn, it is
    // the piece the 5× threshold unlocks for full-region encapsulation.
    let audit = {
        let mut m = pb.method("Table.audit", 3);
        m.set_synchronized();
        let (t, ses, row) = (m.arg(0), m.arg(1), m.arg(2));
        let acc = m.imm(0);
        let one = m.imm(1);
        let k7 = m.imm(4);
        let nr = m.reg();
        m.get_field(nr, t, f_nrows);
        let i = m.imm(0);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, k7, exit);
        let slot = m.reg();
        m.bin(BinOp::Add, slot, row, i);
        m.bin(BinOp::Rem, slot, slot, nr);
        let bal = m.reg();
        m.get_field(bal, t, f_bal);
        let b = m.reg();
        m.aload(b, bal, slot);
        let cnt = m.reg();
        m.get_field(cnt, t, f_cnt);
        let c = m.reg();
        m.aload(c, cnt, slot);
        let k31 = m.imm(31);
        let mixed = m.reg();
        m.bin(BinOp::Mul, mixed, b, k31);
        m.bin(BinOp::Add, mixed, mixed, c);
        m.bin(BinOp::Xor, acc, acc, mixed);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        let rd = m.reg();
        m.get_field(rd, ses, f_reads);
        m.bin(BinOp::Add, rd, rd, k7);
        m.put_field(ses, f_reads, rd);
        m.ret(Some(acc));
        // (4-slot sweep keeps the loop's dynamic path under the
        // LOOPPATHTHRESHOLD so the whole audit encapsulates in the
        // transaction's region.)
        m.finish(&mut pb)
    };

    const ROWS: i64 = 256;
    let mut m = pb.method("main", 0);
    // Build the table and session.
    let t = m.reg();
    m.new_obj(t, table);
    let nrows = m.imm(ROWS);
    for f in [f_bal, f_cnt, f_ts, f_fl] {
        let arr = m.reg();
        m.new_array(arr, nrows);
        m.put_field(t, f, arr);
    }
    let bal = m.reg();
    m.get_field(bal, t, f_bal);
    m.put_field(t, f_nrows, nrows);
    let capacity = m.imm(1024);
    let idx = m.reg();
    m.call(Some(idx), map.new, &[capacity]);
    m.put_field(t, f_index, idx);
    let ses = m.reg();
    m.new_obj(ses, session);
    let log = m.reg();
    let log_cap = m.imm(1 << 15);
    m.call(Some(log), sb.new, &[log_cap]);

    // Populate the index: key = row id + 1, value = row slot.
    {
        let i = m.imm(0);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, nrows, exit);
        let key = m.reg();
        m.bin(BinOp::Add, key, i, one);
        m.call(None, map.put, &[idx, key, i]);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
    }

    let one = m.imm(1);
    let k1000 = m.imm(1000);
    let kmask = m.imm(ROWS - 1);

    // Warm-up transactions, then the measured run.
    for (txns, measured) in [(500i64, false), (4000, true)] {
        if measured {
            m.marker(1);
        }
        let i = m.imm(0);
        let n = m.imm(txns);
        let head = m.new_label();
        let exit = m.new_label();
        let rollback = m.new_label();
        let work = m.new_label();
        let done = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        // The rollback test comes FIRST so aborts happen early in the region
        // ("the aborts occur very early in the atomic region", §6.1).
        let r = m.reg();
        m.intrin(Intrinsic::NextRandom, Some(r), &[]);
        let sel = m.reg();
        m.bin(BinOp::Rem, sel, r, k1000);
        let zero = m.imm(0);
        m.branch(CmpOp::Eq, sel, zero, rollback);
        m.jump(work);

        m.bind(work);
        m.call(None, begin, &[ses]);
        // Look the row up through the index, then update all columns.
        let rowid = m.reg();
        m.bin(BinOp::And, rowid, r, kmask);
        let key = m.reg();
        m.bin(BinOp::Add, key, rowid, one);
        let slot = m.reg();
        m.call(Some(slot), map.get, &[idx, key]);
        let delta = m.reg();
        let k7 = m.imm(7);
        m.bin(BinOp::Rem, delta, r, k7);
        let newbal = m.reg();
        m.call(Some(newbal), update, &[t, slot, delta, i]);
        // Consistency audit (synchronized; aggressive-threshold target).
        let audited = m.reg();
        m.call(Some(audited), audit, &[t, ses, slot]);
        // Log the txn (synchronized classlib call).
        let ch = m.reg();
        let k127 = m.imm(127);
        m.bin(BinOp::And, ch, audited, k127);
        m.call(None, sb.append, &[log, ch]);
        m.call(None, commit, &[ses, k7, one]);
        m.jump(done);

        // Rollback (0.1%): clear the dirty flag without committing.
        m.bind(rollback);
        let z2 = m.imm(0);
        m.put_field(ses, f_dirty, z2);
        m.call(None, sb.append, &[log, z2]);
        m.jump(done);

        m.bind(done);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        if measured {
            m.marker(1);
        }
    }

    // Observable result.
    let total = m.reg();
    m.get_field(total, ses, f_txns);
    m.checksum(total);
    let ck = m.reg();
    m.get_field(ck, t, f_cksum);
    m.checksum(ck);
    let probe = m.imm(0);
    let probe_exit = m.new_label();
    let probe_head = m.new_label();
    let k16 = m.imm(16);
    m.bind(probe_head);
    m.branch(CmpOp::Ge, probe, nrows, probe_exit);
    let b = m.reg();
    m.aload(b, bal, probe);
    m.checksum(b);
    m.bin(BinOp::Add, probe, probe, k16);
    m.safepoint();
    m.jump(probe_head);
    m.bind(probe_exit);
    let lh = m.reg();
    m.call(Some(lh), sb.hash, &[log]);
    m.checksum(lh);
    m.ret(Some(total));
    let entry = m.finish(&mut pb);

    Workload {
        name: "hsqldb",
        description: "JDBCbench-like transactions: synchronized session \
                      begin/commit, audit sweep, and logging per txn (SLE), \
                      4-column row updates with redundant loads (GVN), rare \
                      early-abort rollbacks",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 100_000_000,
    }
}
