//! `antlr` — parser/lexer generation over four grammars.
//!
//! Preserved characteristics (§6.1, Table 3): *low* region coverage (~9%) —
//! most uops run inside opaque classlib scanner methods that regions cannot
//! span — but the regionable token-classification kernel is extremely
//! redundant ("on average, two-thirds of the instructions in antlr's atomic
//! regions get optimized away") and calls synchronized classlib methods
//! whose monitor pairs SLE elides. Four samples (four grammars). Because
//! regions are used sparingly, antlr is the benchmark least sensitive to
//! `aregion_begin` overheads (Figure 9).

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};

use crate::classlib::string_buffer;
use crate::workload::{Sample, Workload};

/// Builds the antlr workload.
pub fn antlr() -> Workload {
    let mut pb = ProgramBuilder::new();
    let sb = string_buffer(&mut pb);

    // Opaque "scanner" classlib: consumes most of the execution outside any
    // region (the inliner and region formation treat it as a native method).
    let scan = {
        let mut m = pb.method("Scanner.nextToken", 2);
        m.set_opaque();
        let (buf, start) = (m.arg(0), m.arg(1));
        // Scan ~24 characters: classify alpha/digit, accumulate a code.
        let len = m.reg();
        m.array_len(len, buf);
        // Positions may come from accumulated hash codes: force nonnegative
        // before the modular indexing below.
        let i = m.reg();
        let posmask = m.imm(0x7fff_ffff);
        m.bin(BinOp::And, i, start, posmask);
        let code = m.imm(0);
        let steps = m.imm(0);
        let k24 = m.imm(24);
        let one = m.imm(1);
        let k31 = m.imm(31);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, steps, k24, exit);
        let wrapped = m.reg();
        m.bin(BinOp::Rem, wrapped, i, len);
        let c = m.reg();
        m.aload(c, buf, wrapped);
        m.bin(BinOp::Mul, code, code, k31);
        m.bin(BinOp::Add, code, code, c);
        m.bin(BinOp::Add, i, i, one);
        m.bin(BinOp::Add, steps, steps, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.ret(Some(code));
        m.finish(&mut pb)
    };

    let mut m = pb.method("main", 0);
    // Grammar input buffer.
    let cap = m.imm(4096);
    let buf = m.reg();
    m.new_array(buf, cap);
    {
        let i = m.imm(0);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, cap, exit);
        let r = m.reg();
        m.intrin(Intrinsic::NextRandom, Some(r), &[]);
        let k127 = m.imm(127);
        let c = m.reg();
        m.bin(BinOp::And, c, r, k127);
        m.astore(buf, i, c);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
    }
    let out_cap = m.imm(1 << 15);
    let out = m.reg();
    m.call(Some(out), sb.new, &[out_cap]);

    // Token-kind statistics table (fields re-loaded redundantly in the
    // kernel — the in-region redundancy the paper measures).
    let stats = pb.add_class("TokenStats", None, &["kinds", "total", "keywords"]);
    let f_kinds = pb.field(stats, "kinds");
    let f_total = pb.field(stats, "total");
    let f_kw = pb.field(stats, "keywords");
    let st = m.reg();
    m.new_obj(st, stats);
    let k64 = m.imm(64);
    let kinds = m.reg();
    m.new_array(kinds, k64);
    m.put_field(st, f_kinds, kinds);
    // The generated lexer's DFA transition table.
    let k256d = m.imm(256);
    let dfa = m.reg();
    m.new_array(dfa, k256d);
    {
        let i = m.imm(0);
        let one2 = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, k256d, exit);
        let k17 = m.imm(17);
        let v = m.reg();
        m.bin(BinOp::Mul, v, i, k17);
        let k255d = m.imm(255);
        m.bin(BinOp::And, v, v, k255d);
        m.astore(dfa, i, v);
        m.bin(BinOp::Add, i, i, one2);
        m.jump(head);
        m.bind(exit);
    }

    // Four grammars = four phases/samples.
    for (phase, tokens) in [(1u32, 1500i64), (2, 1200), (3, 900), (4, 600)] {
        m.marker(phase);
        let i = m.imm(0);
        let n = m.imm(tokens);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        // Opaque scanning dominates execution (keeps coverage low).
        let pos = m.reg();
        let k13 = m.imm(13);
        m.bin(BinOp::Mul, pos, i, k13);
        let code = m.reg();
        m.call(Some(code), scan, &[buf, pos]);
        let code3 = m.reg();
        m.call(Some(code3), scan, &[buf, code]);

        // The regionable classification kernel: deliberately redundant field
        // loads/checks in the style of generated parser code, plus a short
        // DFA walk over the token code.
        let kindmask = m.imm(63);
        let k255k = m.imm(255);
        let state = m.reg();
        m.bin(BinOp::And, state, code3, k255k);
        for _ in 0..5 {
            let nxt = m.reg();
            m.aload(nxt, dfa, state);
            m.bin(BinOp::And, nxt, nxt, k255k);
            m.mov(state, nxt);
        }
        let kind = m.reg();
        m.bin(BinOp::And, kind, state, kindmask);
        let ks1 = m.reg();
        m.get_field(ks1, st, f_kinds);
        let c1 = m.reg();
        m.aload(c1, ks1, kind);
        m.bin(BinOp::Add, c1, c1, one);
        let ks2 = m.reg();
        m.get_field(ks2, st, f_kinds); // redundant load
        m.astore(ks2, kind, c1);
        let tot = m.reg();
        m.get_field(tot, st, f_total);
        m.bin(BinOp::Add, tot, tot, one);
        m.put_field(st, f_total, tot);
        let kw_cold = m.new_label();
        let after_kw = m.new_label();
        let kzero = m.imm(0);
        // "keyword" kind 0 is rare (~1.5% of 64 kinds... actually 1/64 ≈
        // 1.6%, warm); kind equality with a *second* rare value is cold.
        m.branch(CmpOp::Eq, kind, kzero, kw_cold);
        m.jump(after_kw);
        m.bind(kw_cold);
        let kw = m.reg();
        m.get_field(kw, st, f_kw);
        m.bin(BinOp::Add, kw, kw, one);
        m.put_field(st, f_kw, kw);
        let ktot = m.reg();
        m.get_field(ktot, st, f_total);
        m.bin(BinOp::Add, ktot, ktot, one);
        m.put_field(st, f_total, ktot);
        let kk = m.reg();
        m.get_field(kk, st, f_kinds);
        let kcnt = m.reg();
        m.aload(kcnt, kk, kind);
        m.bin(BinOp::Add, kcnt, kcnt, one);
        m.astore(kk, kind, kcnt);
        m.jump(after_kw);
        m.bind(after_kw);
        // After the (cold) keyword join, the generated code re-queries the
        // statistics it just updated: forwarded in-region, reloaded in the
        // baseline.
        let q_tot = m.reg();
        m.get_field(q_tot, st, f_total);
        let q_kw = m.reg();
        m.get_field(q_kw, st, f_kw);
        let ks2b = m.reg();
        m.get_field(ks2b, st, f_kinds);
        let c1b = m.reg();
        m.aload(c1b, ks2b, kind);
        let digest = m.reg();
        m.bin(BinOp::Mul, digest, q_tot, one);
        m.bin(BinOp::Add, digest, digest, q_kw);
        m.bin(BinOp::Add, digest, digest, c1b);
        m.checksum(digest);
        // Synchronized classlib append (SLE target inside the region).
        let k127b = m.imm(127);
        let ch = m.reg();
        m.bin(BinOp::And, ch, code3, k127b);
        m.call(None, sb.append, &[out, ch]);
        let ks3 = m.reg();
        m.get_field(ks3, st, f_kinds); // redundant again
        let c2 = m.reg();
        m.aload(c2, ks3, kind); // reloads what we just stored
                                // A second round of the same statistics (generated-code repetition
                                // that regions let GVN collapse to nearly nothing).
        let ks4 = m.reg();
        m.get_field(ks4, st, f_kinds);
        let c3 = m.reg();
        m.aload(c3, ks4, kind);
        let tot2 = m.reg();
        m.get_field(tot2, st, f_total);
        let mix = m.reg();
        let k31m = m.imm(31);
        m.bin(BinOp::Mul, mix, c3, k31m);
        m.bin(BinOp::Add, mix, mix, tot2);
        m.bin(BinOp::Xor, mix, mix, state);
        m.checksum(c2);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.marker(phase);
    }

    let total = m.reg();
    m.get_field(total, st, f_total);
    m.checksum(total);
    let h = m.reg();
    m.call(Some(h), sb.hash, &[out]);
    m.checksum(h);
    m.ret(Some(total));
    let entry = m.finish(&mut pb);

    Workload {
        name: "antlr",
        description: "parser generation over 4 grammars: opaque scanner \
                      dominates (low coverage), but the classification kernel \
                      is ~2/3 redundant and calls synchronized classlib \
                      methods (SLE)",
        program: pb.finish(entry),
        samples: vec![
            Sample {
                marker: 1,
                weight: 0.4,
            },
            Sample {
                marker: 2,
                weight: 0.3,
            },
            Sample {
                marker: 3,
                weight: 0.2,
            },
            Sample {
                marker: 4,
                weight: 0.1,
            },
        ],
        fuel: 120_000_000,
    }
}
