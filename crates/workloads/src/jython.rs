//! `jython` — a Python-bytecode interpreter running a pybench-like loop.
//!
//! Preserved characteristics (§6.1, Table 3): the interpreter dispatch
//! switch where only 2 of 9 opcodes are non-cold ("simplify an indirect
//! branch to a conditional branch"); `getitem` called four times in the hot
//! loop through a method containing an *apparently* polymorphic call site —
//! the receiver histogram is polluted by the warm-up phase, so the partial
//! inliner refuses it in the `atomic` configuration and a large number of
//! small atomic regions form (a slowdown); forcing dominant-receiver
//! devirtualization (the grey bar) or the 5× aggressive inlining threshold
//! flips it into a win. Largest regions of the suite (~227 uops), single
//! sample.

use hasp_vm::builder::ProgramBuilder;
use hasp_vm::bytecode::{BinOp, CmpOp};

use crate::classlib::boxes;
use crate::workload::{Sample, Workload};

/// Builds the jython workload.
pub fn jython() -> Workload {
    let mut pb = ProgramBuilder::new();
    let bx = boxes(&mut pb);

    // Frame: the interpreter's local-variable store, holding boxed values.
    let frame = pb.add_class("Frame", None, &["locals", "nlocals", "hits"]);
    let f_locals = pb.field(frame, "locals");
    let f_nlocals = pb.field(frame, "nlocals");
    let f_hits = pb.field(frame, "hits");

    // getitem(frame, i) -> unboxed value. Contains the virtual `value()`
    // call whose whole-run receiver histogram looks polymorphic, plus enough
    // body to exceed the baseline inlining budget.
    let getitem = {
        let mut m = pb.method("Frame.getitem", 2);
        let (fr, i) = (m.arg(0), m.arg(1));
        let oob = m.new_label();
        let ok = m.new_label();
        let n = m.reg();
        m.get_field(n, fr, f_nlocals);
        m.branch(CmpOp::Ge, i, n, oob);
        let zero = m.imm(0);
        m.branch(CmpOp::Lt, i, zero, oob);
        m.jump(ok);
        m.bind(ok);
        let locals = m.reg();
        m.get_field(locals, fr, f_locals);
        let cell = m.reg();
        m.aload(cell, locals, i);
        // The "polymorphic" call site.
        let v = m.reg();
        m.call_virtual(Some(v), bx.slot, cell, &[]);
        // Access-statistics bookkeeping (pads the method past the baseline
        // inlining budget, as the real getitem's refcounting does).
        let hits = m.reg();
        m.get_field(hits, fr, f_hits);
        let one = m.imm(1);
        m.bin(BinOp::Add, hits, hits, one);
        m.put_field(fr, f_hits, hits);
        let n2 = m.reg();
        m.get_field(n2, fr, f_nlocals);
        let scaled = m.reg();
        m.bin(BinOp::Mul, scaled, v, one);
        let k3 = m.imm(3);
        let tag = m.reg();
        m.bin(BinOp::And, tag, scaled, k3);
        let adj = m.reg();
        m.bin(BinOp::Sub, adj, scaled, tag);
        m.bin(BinOp::Add, adj, adj, tag);
        let _ = n2;
        m.ret(Some(adj));
        m.bind(oob);
        // Cold wrap-around indexing path.
        let n3 = m.reg();
        m.get_field(n3, fr, f_nlocals);
        let wrapped = m.reg();
        m.bin(BinOp::Rem, wrapped, i, n3);
        let locals2 = m.reg();
        m.get_field(locals2, fr, f_locals);
        let cell2 = m.reg();
        m.aload(cell2, locals2, wrapped);
        let v2 = m.reg();
        m.call_virtual(Some(v2), bx.slot, cell2, &[]);
        m.ret(Some(v2));
        m.finish(&mut pb)
    };

    const NLOCALS: i64 = 16;
    const OPS: i64 = 32;
    let mut m = pb.method("main", 0);
    // Build the frame with IntBox locals.
    let fr = m.reg();
    m.new_obj(fr, frame);
    let nl = m.imm(NLOCALS);
    let locals = m.reg();
    m.new_array(locals, nl);
    m.put_field(fr, f_locals, locals);
    m.put_field(fr, f_nlocals, nl);
    {
        let i = m.imm(0);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, nl, exit);
        let b = m.reg();
        m.call(Some(b), bx.new_int, &[i]);
        m.astore(locals, i, b);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
    }

    // The Python "program": opcode stream. Opcodes 0 (LOAD4) and 1 (ADD)
    // dominate; 2..8 are rare error/housekeeping cases.
    let nops = m.imm(OPS);
    let code = m.reg();
    m.new_array(code, nops);
    {
        // ops[j] = random 0/1 (LOAD4 vs ADD) — data-dependent dispatch that
        // neither the indirect predictor nor gshare can fully learn, as in a
        // real interpreter.
        let j = m.imm(0);
        let one = m.imm(1);
        let two = m.imm(2);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, j, nops, exit);
        let r = m.reg();
        m.intrin(hasp_vm::bytecode::Intrinsic::NextRandom, Some(r), &[]);
        let op = m.reg();
        m.bin(BinOp::Rem, op, r, two);
        m.astore(code, j, op);
        m.bin(BinOp::Add, j, j, one);
        m.jump(head);
        m.bind(exit);
    }

    // Warm-up: pollute getitem's receiver histogram with AltBox locals, then
    // restore IntBox (the steady state is perfectly monomorphic).
    {
        let two = m.imm(2);
        let slot2 = m.imm(5);
        let alt = m.reg();
        m.call(Some(alt), bx.new_alt, &[two]);
        m.astore(locals, slot2, alt);
        let i = m.imm(0);
        let warm = m.imm(60);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, warm, exit);
        let v = m.reg();
        m.call(Some(v), getitem, &[fr, slot2]);
        m.checksum(v);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        // Back to IntBox for the steady state.
        let restored = m.reg();
        m.call(Some(restored), bx.new_int, &[slot2]);
        m.astore(locals, slot2, restored);
    }

    // The measured interpreter loop: dispatch over the opcode stream; the
    // hot handlers each call getitem (4 calls per iteration total).
    m.marker(1);
    let acc = m.imm(0);
    let iter = m.imm(0);
    let iters = m.imm(2500);
    let one = m.imm(1);
    let head = m.new_label();
    let exit = m.new_label();
    m.bind(head);
    m.branch(CmpOp::Ge, iter, iters, exit);
    {
        // Inner loop over the opcode stream.
        let pc = m.imm(0);
        let ihead = m.new_label();
        let iexit = m.new_label();
        let mut cases = Vec::new();
        for _ in 0..8 {
            cases.push(m.new_label());
        }
        let default = m.new_label();
        let next = m.new_label();
        m.bind(ihead);
        m.branch(CmpOp::Ge, pc, nops, iexit);
        let op = m.reg();
        m.aload(op, code, pc);
        m.switch(op, &cases, default);

        // LOAD4: four getitem calls (the paper's "called four times in a hot
        // loop").
        m.bind(cases[0]);
        let i0 = m.reg();
        let k15 = m.imm(15);
        m.bin(BinOp::And, i0, pc, k15);
        let v0 = m.reg();
        m.call(Some(v0), getitem, &[fr, i0]);
        let v1 = m.reg();
        m.call(Some(v1), getitem, &[fr, i0]);
        let i1 = m.reg();
        m.bin(BinOp::Add, i1, i0, one);
        m.bin(BinOp::And, i1, i1, k15);
        let v2 = m.reg();
        m.call(Some(v2), getitem, &[fr, i1]);
        let v3 = m.reg();
        m.call(Some(v3), getitem, &[fr, i1]);
        m.bin(BinOp::Add, acc, acc, v0);
        m.bin(BinOp::Add, acc, acc, v1);
        m.bin(BinOp::Add, acc, acc, v2);
        m.bin(BinOp::Add, acc, acc, v3);
        m.jump(next);

        // ADD: arithmetic on the accumulator (hot).
        m.bind(cases[1]);
        let k13 = m.imm(13);
        let tmp = m.reg();
        m.bin(BinOp::Mul, tmp, acc, k13);
        let k9999 = m.imm(99991);
        m.bin(BinOp::Rem, acc, tmp, k9999);
        m.jump(next);

        // Cold opcodes 2..7 and default: housekeeping that never runs.
        for case in cases.iter().skip(2) {
            m.bind(*case);
            let hits = m.reg();
            m.get_field(hits, fr, f_hits);
            m.bin(BinOp::Add, acc, acc, hits);
            m.jump(next);
        }
        m.bind(default);
        m.bin(BinOp::Sub, acc, acc, one);
        m.jump(next);

        m.bind(next);
        m.bin(BinOp::Add, pc, pc, one);
        m.safepoint();
        m.jump(ihead);
        m.bind(iexit);
    }
    m.bin(BinOp::Add, iter, iter, one);
    m.safepoint();
    m.jump(head);
    m.bind(exit);
    m.marker(1);

    m.checksum(acc);
    let hits = m.reg();
    m.get_field(hits, fr, f_hits);
    m.checksum(hits);
    m.ret(Some(acc));
    let entry = m.finish(&mut pb);

    Workload {
        name: "jython",
        description: "pybench interpreter loop: 9-way dispatch with 2 warm \
                      cases, getitem x4 per hot handler with a warm-up- \
                      polluted receiver histogram (the partial-inlining \
                      pathology and its forced-monomorphic fix)",
        program: pb.finish(entry),
        samples: vec![Sample {
            marker: 1,
            weight: 1.0,
        }],
        fuel: 120_000_000,
    }
}
