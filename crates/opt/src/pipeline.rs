//! Compiler configurations and the compilation pipeline.
//!
//! Four configurations mirror the paper's evaluation (§6):
//!
//! * `no-atomic` — baseline optimizations, close to Harmony's server config.
//! * `atomic` — baseline plus atomic region formation, partial inlining,
//!   (partial) unrolling via region replication, and speculative lock
//!   elision.
//! * `no-atomic + aggressive inlining` — baseline with a 5× inlining
//!   threshold (scope enlargement without atomicity).
//! * `atomic + aggressive inlining` — both.

use std::collections::{BTreeSet, HashMap};

use hasp_core::{form_atomic_regions, FormationResult, InlineSite, RegionConfig};
use hasp_ir::{translate, verify, Func};
use hasp_vm::bytecode::MethodId;
use hasp_vm::class::Program;
use hasp_vm::profile::Profile;

use crate::inline::{self, InlineOptions};
use crate::{checkelim, constprop, dce, gvn, safepoint, simplify, sle, unroll};

/// A complete compiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// Display name (appears in experiment reports).
    pub name: &'static str,
    /// Form atomic regions and run region-enabled optimizations.
    pub atomic: bool,
    /// Inliner options.
    pub inline: InlineOptions,
    /// Region-formation parameters.
    pub region: RegionConfig,
    /// Speculative lock elision (atomic only).
    pub sle: bool,
    /// Safepoint elision in enclosed loops (atomic only).
    pub safepoint_elision: bool,
    /// §7 post-dominance bounds-check elimination (atomic only).
    pub postdom_checkelim: bool,
    /// Partial loop unrolling inside regions (atomic only).
    pub partial_unroll: bool,
    /// Optimization rounds after inlining/formation.
    pub opt_rounds: usize,
    /// Per-method re-formation exclusion sets: boundary blocks (original,
    /// pre-replication ids) that must not seed a region when the named
    /// method is recompiled. Populated by the adaptive re-formation loop
    /// from `ReformRequest`s the hardware governor emits; empty in every
    /// stock configuration.
    pub exclusions: HashMap<MethodId, BTreeSet<u32>>,
}

impl CompilerConfig {
    /// The `no-atomic` baseline.
    pub fn no_atomic() -> Self {
        CompilerConfig {
            name: "no-atomic",
            atomic: false,
            inline: InlineOptions::default(),
            region: RegionConfig::default(),
            sle: false,
            safepoint_elision: false,
            postdom_checkelim: false,
            partial_unroll: false,
            opt_rounds: 3,
            exclusions: HashMap::new(),
        }
    }

    /// The `atomic` configuration.
    pub fn atomic() -> Self {
        CompilerConfig {
            name: "atomic",
            atomic: true,
            inline: InlineOptions {
                aggressive: true,
                ..InlineOptions::default()
            },
            sle: true,
            safepoint_elision: true,
            postdom_checkelim: false,
            partial_unroll: true,
            ..CompilerConfig::no_atomic()
        }
    }

    /// `no-atomic + aggressive inlining` (5× threshold).
    pub fn no_atomic_aggressive() -> Self {
        let mut c = CompilerConfig::no_atomic();
        c.name = "no-atomic+aggr-inline";
        c.inline = c.inline.with_aggressive_threshold();
        c
    }

    /// `atomic + aggressive inlining`.
    pub fn atomic_aggressive() -> Self {
        let mut c = CompilerConfig::atomic();
        c.name = "atomic+aggr-inline";
        c.inline = c.inline.with_aggressive_threshold();
        c
    }

    /// `atomic` with the forced dominant-receiver devirtualization (the grey
    /// bar in Figure 7's jython result).
    pub fn atomic_forced_mono() -> Self {
        let mut c = CompilerConfig::atomic();
        c.name = "atomic+forced-mono";
        c.inline.force_dominant_receiver = true;
        c
    }

    /// Merges boundary exclusions for `method` into this configuration
    /// (adaptive re-formation: the hardware governor saw the region at
    /// `boundaries` keep aborting and asked for it to be dissolved).
    pub fn exclude(&mut self, method: MethodId, boundaries: impl IntoIterator<Item = u32>) {
        self.exclusions
            .entry(method)
            .or_default()
            .extend(boundaries);
    }

    /// The effective region configuration for `method`: the shared
    /// `region` parameters plus that method's exclusion set, if any.
    pub fn region_for(&self, method: MethodId) -> RegionConfig {
        match self.exclusions.get(&method) {
            Some(ex) if !ex.is_empty() => self.region.clone().with_excluded(ex.iter().copied()),
            _ => self.region.clone(),
        }
    }

    /// All four paper configurations, baseline first.
    pub fn paper_configs() -> Vec<CompilerConfig> {
        vec![
            CompilerConfig::no_atomic(),
            CompilerConfig::atomic(),
            CompilerConfig::no_atomic_aggressive(),
            CompilerConfig::atomic_aggressive(),
        ]
    }
}

/// One compiled method: optimized IR plus compilation metadata.
#[derive(Debug, Clone)]
pub struct CompiledMethod {
    /// The optimized function.
    pub func: Func,
    /// Inline sites created (before pruning).
    pub sites: Vec<InlineSite>,
    /// Region-formation outcome, when atomic.
    pub formation: Option<FormationResult>,
}

/// Compiles a single method under `cfg`.
///
/// # Panics
/// Panics if an internal pass breaks IR invariants (the verifier runs after
/// every phase).
pub fn compile_method(
    program: &Program,
    profile: &Profile,
    method: MethodId,
    cfg: &CompilerConfig,
) -> CompiledMethod {
    let mut f = translate(program, method, profile.method(method));
    debug_assert!(verify(&f).is_ok(), "translate: {:?}", verify(&f));

    // Pre-inline cleanup (keeps callee-size estimates honest).
    gvn::run(&mut f);
    constprop::run(&mut f);
    dce::run(&mut f);

    let m = program.method(method);
    let sites = if m.opaque {
        Vec::new()
    } else {
        inline::run(&mut f, program, profile, &cfg.inline)
    };
    debug_assert!(
        verify(&f).is_ok(),
        "inline: {:?}\n{}",
        verify(&f),
        f.display()
    );

    // NOTE: no cleanup passes may run between inlining and region formation.
    // The inline-site records anchor on result phis and block identities
    // that GVN's phi collapsing, DCE, and block merging would destroy;
    // formation's un-inlining (Steps 2 and 5) needs them intact.

    let formation = if cfg.atomic && !m.opaque {
        let region_cfg = cfg.region_for(method);
        let res = form_atomic_regions(&mut f, &sites, &region_cfg);
        debug_assert!(
            verify(&f).is_ok(),
            "formation: {:?}\n{}",
            verify(&f),
            f.display()
        );
        if cfg.sle {
            sle::run(&mut f);
        }
        if cfg.safepoint_elision {
            safepoint::run(&mut f);
        }
        if cfg.partial_unroll {
            unroll::run(&mut f, &region_cfg);
        }
        Some(res)
    } else {
        None
    };

    // The payoff rounds: with cold paths converted to asserts, plain
    // redundancy elimination now performs speculative optimization.
    for _ in 0..cfg.opt_rounds {
        let mut changed = 0;
        changed += gvn::run(&mut f).total();
        changed += constprop::run(&mut f).folded;
        changed += dce::run(&mut f);
        changed += simplify::run(&mut f);
        if changed == 0 {
            break;
        }
    }
    if cfg.postdom_checkelim {
        checkelim::run(&mut f);
        dce::run(&mut f);
    }
    verify(&f).unwrap_or_else(|e| panic!("final verify ({}): {e}\n{}", cfg.name, f.display()));

    CompiledMethod {
        func: f,
        sites,
        formation,
    }
}

/// Compiles every method of the program under `cfg`.
pub fn compile_program(
    program: &Program,
    profile: &Profile,
    cfg: &CompilerConfig,
) -> HashMap<MethodId, CompiledMethod> {
    program
        .method_ids()
        .map(|m| (m, compile_method(program, profile, m, cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_distinct() {
        let cs = CompilerConfig::paper_configs();
        assert_eq!(cs.len(), 4);
        assert!(!cs[0].atomic && cs[1].atomic && !cs[2].atomic && cs[3].atomic);
        assert!(cs[2].inline.baseline_budget > cs[0].inline.baseline_budget);
        let names: Vec<_> = cs.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            vec![
                "no-atomic",
                "atomic",
                "no-atomic+aggr-inline",
                "atomic+aggr-inline"
            ]
        );
    }

    #[test]
    fn per_method_exclusions() {
        let mut c = CompilerConfig::atomic();
        let m0 = MethodId(0);
        let m1 = MethodId(1);
        assert!(c.region_for(m0).excluded_boundaries.is_empty());
        c.exclude(m0, [4, 9]);
        c.exclude(m0, [4, 11]);
        let r0 = c.region_for(m0);
        assert_eq!(
            r0.excluded_boundaries.iter().copied().collect::<Vec<_>>(),
            vec![4, 9, 11]
        );
        // Exclusions are per-method: other methods see the stock config.
        assert!(c.region_for(m1).excluded_boundaries.is_empty());
        assert_eq!(c.region_for(m1), c.region);
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use hasp_vm::builder::ProgramBuilder;
    use hasp_vm::bytecode::{BinOp, CmpOp};
    use hasp_vm::interp::Interp;

    /// An outer hot loop whose body contains a small store-only inner loop:
    /// the inner loop encapsulates whole inside the per-iteration region and
    /// the partial unroller doubles its body.
    #[test]
    fn partial_unroll_fires_through_the_pipeline() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let cap = m.imm(64);
        let arr = m.reg();
        m.new_array(arr, cap);
        let i = m.imm(0);
        let n = m.imm(3000);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        {
            // Inner store-only loop: 8 iterations.
            let j = m.imm(0);
            let k8 = m.imm(8);
            let ihead = m.new_label();
            let iexit = m.new_label();
            m.bind(ihead);
            m.branch(CmpOp::Ge, j, k8, iexit);
            let slot = m.reg();
            let mask = m.imm(63);
            m.bin(BinOp::Add, slot, i, j);
            m.bin(BinOp::And, slot, slot, mask);
            m.astore(arr, slot, i);
            m.bin(BinOp::Add, j, j, one);
            m.jump(ihead);
            m.bind(iexit);
        }
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        let probe = m.imm(7);
        let v = m.reg();
        m.aload(v, arr, probe);
        m.checksum(v);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);

        let mut interp = Interp::new(&p).with_profiling();
        interp.set_fuel(10_000_000);
        interp.run(&[]).unwrap();

        let with = compile_method(&p, &interp.profile, entry, &CompilerConfig::atomic());
        let mut no_unroll_cfg = CompilerConfig::atomic();
        no_unroll_cfg.partial_unroll = false;
        let without = compile_method(&p, &interp.profile, entry, &no_unroll_cfg);

        let stores = |f: &Func| -> usize {
            f.block_ids()
                .iter()
                .filter(|b| f.block(**b).region.is_some())
                .map(|b| {
                    f.block(*b)
                        .insts
                        .iter()
                        .filter(|i| matches!(i.op, hasp_ir::Op::StoreElem { .. }))
                        .count()
                })
                .sum()
        };
        assert!(
            stores(&with.func) > stores(&without.func),
            "unrolling must duplicate the in-region store ({} vs {})",
            stores(&with.func),
            stores(&without.func)
        );
    }

    /// The safepoint-elision pass replaces in-loop polls with one yield-flag
    /// load per region (paper §6.4) when the pipeline runs end to end.
    #[test]
    fn safepoint_elision_fires_through_the_pipeline() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let cap = m.imm(64);
        let arr = m.reg();
        m.new_array(arr, cap);
        let i = m.imm(0);
        let n = m.imm(5000);
        let one = m.imm(1);
        let mask = m.imm(63);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        {
            let j = m.imm(0);
            let k6 = m.imm(6);
            let ihead = m.new_label();
            let iexit = m.new_label();
            m.bind(ihead);
            m.branch(CmpOp::Ge, j, k6, iexit);
            let slot = m.reg();
            m.bin(BinOp::Add, slot, i, j);
            m.bin(BinOp::And, slot, slot, mask);
            m.astore(arr, slot, j);
            m.bin(BinOp::Add, j, j, one);
            m.safepoint(); // inner-loop poll: elidable inside the region
            m.jump(ihead);
            m.bind(iexit);
        }
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        let probe = m.imm(3);
        let v = m.reg();
        m.aload(v, arr, probe);
        m.checksum(v);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut interp = Interp::new(&p).with_profiling();
        interp.set_fuel(10_000_000);
        interp.run(&[]).unwrap();

        let with = compile_method(&p, &interp.profile, entry, &CompilerConfig::atomic());
        let mut off = CompilerConfig::atomic();
        off.safepoint_elision = false;
        let without = compile_method(&p, &interp.profile, entry, &off);
        let polls = |f: &Func| -> usize {
            f.block_ids()
                .iter()
                .filter(|b| f.block(**b).region.is_some())
                .map(|b| {
                    f.block(*b)
                        .insts
                        .iter()
                        .filter(|i| matches!(i.op, hasp_ir::Op::Safepoint))
                        .count()
                })
                .sum()
        };
        assert!(
            polls(&with.func) < polls(&without.func),
            "elision must remove in-region polls ({} vs {})",
            polls(&with.func),
            polls(&without.func)
        );
    }
}
