//! CFG cleanup: single-predecessor phi degeneration, straight-line block
//! merging, and unreachable-code removal. Runs between optimization rounds
//! so GVN sees maximal straight-line regions.

use hasp_ir::{BlockId, Func, Op, Term};

/// Simplifies the CFG. Returns the number of structural changes.
pub fn run(f: &mut Func) -> usize {
    let mut changes = 0;
    changes += f.remove_unreachable();
    changes += degenerate_phis(f);
    changes += merge_chains(f);
    changes
}

/// Converts phis in single-predecessor blocks into copies.
fn degenerate_phis(f: &mut Func) -> usize {
    let preds = f.preds();
    let mut n = 0;
    for b in f.block_ids() {
        if preds.get(&b).map_or(0, Vec::len) != 1 {
            continue;
        }
        for inst in &mut f.block_mut(b).insts {
            if let Op::Phi(ins) = &inst.op {
                assert_eq!(ins.len(), 1, "phi arity must match single pred");
                inst.op = Op::Copy(ins[0].1);
                n += 1;
            }
        }
    }
    n
}

/// Merges `b -> c` pairs where `b` ends in an unconditional jump and `c` has
/// no other predecessors. Region tags must agree so speculative code never
/// bleeds across a region boundary.
fn merge_chains(f: &mut Func) -> usize {
    let mut merged = 0;
    loop {
        let preds = f.preds();
        let mut did = false;
        for b in f.block_ids() {
            if f.block(b).dead {
                continue;
            }
            let Term::Jump(c) = f.block(b).term else {
                continue;
            };
            if c == b
                || c == f.entry
                || preds.get(&c).map_or(0, Vec::len) != 1
                || f.block(b).region != f.block(c).region
                || is_region_anchor(f, c)
            {
                continue;
            }
            // Degenerate any phis in c first (single pred).
            let mut c_insts = std::mem::take(&mut f.block_mut(c).insts);
            for inst in &mut c_insts {
                if let Op::Phi(ins) = &inst.op {
                    assert_eq!(ins.len(), 1);
                    inst.op = Op::Copy(ins[0].1);
                }
            }
            let c_term = f.block(c).term.clone();
            f.block_mut(b).insts.extend(c_insts);
            f.block_mut(b).term = c_term;
            f.block_mut(c).dead = true;
            // Successor phis now see b instead of c.
            for s in f.succs(b) {
                for inst in &mut f.block_mut(s).insts {
                    if let Op::Phi(ins) = &mut inst.op {
                        for (p, _) in ins.iter_mut() {
                            if *p == c {
                                *p = b;
                            }
                        }
                    }
                }
            }
            did = true;
            merged += 1;
            break; // preds map is stale; recompute
        }
        if !did {
            return merged;
        }
    }
}

/// Blocks that region metadata points at must keep their identity.
fn is_region_anchor(f: &Func, b: BlockId) -> bool {
    f.regions
        .iter()
        .any(|r| r.begin == b || r.abort_target == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst, VReg};
    use hasp_vm::bytecode::{BinOp, MethodId};

    #[test]
    fn merges_jump_chain() {
        let mut f = Func::new("t", MethodId(0), 1);
        let x = VReg(0);
        let c = f.add_block(Term::Return(None));
        let b = f.add_block(Term::Jump(c));
        f.block_mut(f.entry).term = Term::Jump(b);
        let d = f.vreg();
        f.block_mut(b)
            .insts
            .push(Inst::with_dst(d, Op::Bin(BinOp::Add, x, x)));
        let e2 = f.vreg();
        f.block_mut(c)
            .insts
            .push(Inst::with_dst(e2, Op::Bin(BinOp::Add, d, x)));
        f.block_mut(c).term = Term::Return(Some(e2));

        let n = run(&mut f);
        verify(&f).unwrap();
        assert!(n >= 2, "two merges expected, got {n}");
        assert_eq!(f.block_ids().len(), 1);
        assert_eq!(f.block(f.entry).insts.len(), 2);
    }

    #[test]
    fn does_not_merge_across_region_tag() {
        use hasp_ir::{RegionInfo, Term};
        let mut f = Func::new("t", MethodId(0), 0);
        let out = f.add_block(Term::Return(None));
        let exit_helper = f.add_block(Term::Jump(out));
        let body = f.add_block(Term::Jump(exit_helper));
        let abort = f.add_block(Term::Jump(out));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 1,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        f.block_mut(exit_helper).region = Some(r);
        f.block_mut(exit_helper)
            .insts
            .push(Inst::effect(Op::RegionEnd(r)));

        run(&mut f);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        // body+exit_helper may merge (same region) but neither merges with
        // `out` (region None).
        let live = f.block_ids();
        assert!(live
            .iter()
            .any(|b| f.block(*b).region.is_none() && *b == out));
    }

    #[test]
    fn degenerates_single_pred_phi() {
        let mut f = Func::new("t", MethodId(0), 1);
        let x = VReg(0);
        let c = f.add_block(Term::Return(None));
        // Two preds then one becomes unreachable.
        let dead_src = f.add_block(Term::Jump(c));
        f.block_mut(f.entry).term = Term::Jump(c);
        let ph = f.vreg();
        let entry = f.entry;
        f.block_mut(c)
            .insts
            .push(Inst::with_dst(ph, Op::Phi(vec![(entry, x), (dead_src, x)])));
        f.block_mut(c).term = Term::Return(Some(ph));

        run(&mut f);
        verify(&f).unwrap();
        // dead_src unreachable -> removed; phi degenerated (possibly then
        // merged into entry).
        let any_phi = f
            .block_ids()
            .iter()
            .any(|b| f.block(*b).insts.iter().any(|i| matches!(i.op, Op::Phi(_))));
        assert!(!any_phi);
    }
}
