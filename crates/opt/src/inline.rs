//! Profile-guided inlining (Step 1 of region formation).
//!
//! Two budgets exist, mirroring the paper's setup:
//!
//! * **Baseline** sites fit the ordinary inliner's static-size budget and are
//!   kept on all paths (all four compiler configurations get them; the
//!   "+aggressive inlining" configurations multiply this budget by five).
//! * **Aggressive** sites are admitted by their *warm* size only — cold paths
//!   will be pruned from atomic regions, so they cost nothing speculatively —
//!   and are later removed from non-speculative paths (Step 5 in
//!   `hasp-core`). Per the paper, a callee containing an apparently
//!   polymorphic call site is not partially inlined (the jython `getitem`
//!   pathology), unless `force_dominant_receiver` overrides it.
//!
//! Virtual calls are devirtualized behind a class guard when the site's
//! receiver histogram is monomorphic (or dominant, under
//! `force_dominant_receiver`).

use std::collections::{HashMap, HashSet};

use hasp_core::{InlineBudget, InlineSite, SiteDispatch};
use hasp_ir::{translate, BlockId, Func, Inst, Op, Term, VReg};
use hasp_vm::bytecode::{ClassId, MethodId, SlotId};
use hasp_vm::class::Program;
use hasp_vm::profile::Profile;
use hasp_vm::CmpOp;

/// Inliner tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineOptions {
    /// Static-size budget (HIR ops) for baseline inlining.
    pub baseline_budget: u64,
    /// Warm-size budget for aggressive (region-only) inlining.
    pub aggressive_budget: u64,
    /// Whether aggressive sites are admitted at all (atomic configs only).
    pub aggressive: bool,
    /// Maximum nesting depth of inlined bodies.
    pub max_depth: usize,
    /// Hard cap on the function's total size after inlining.
    pub max_function_ops: u64,
    /// Devirtualize through the *dominant* receiver class (share ≥ 95%) even
    /// when the site is not perfectly monomorphic — the paper's grey-bar
    /// jython experiment.
    pub force_dominant_receiver: bool,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions {
            baseline_budget: 40,
            aggressive_budget: 250,
            aggressive: false,
            max_depth: 4,
            max_function_ops: 4000,
            force_dominant_receiver: false,
        }
    }
}

impl InlineOptions {
    /// The paper's "+aggressive inlining" configurations: thresholds × 5.
    pub fn with_aggressive_threshold(mut self) -> Self {
        self.baseline_budget *= 5;
        self.aggressive_budget *= 5;
        self
    }
}

/// Runs the inliner on `f`. Returns the inline sites created (for region
/// formation's Steps 2 and 5).
pub fn run(
    f: &mut Func,
    program: &Program,
    profile: &Profile,
    opts: &InlineOptions,
) -> Vec<InlineSite> {
    let mut sites: Vec<InlineSite> = Vec::new();
    let mut origin: HashMap<BlockId, MethodId> = HashMap::new();
    // (block, first inst index to scan, depth)
    let mut work: Vec<(BlockId, usize, usize)> =
        f.block_ids().into_iter().rev().map(|b| (b, 0, 0)).collect();

    while let Some((b, start, depth)) = work.pop() {
        if f.block(b).dead {
            continue;
        }
        let mut i = start;
        while i < f.block(b).insts.len() {
            let inst = f.block(b).insts[i].clone();
            let site_freq = f.block(b).freq;
            let decision = match &inst.op {
                Op::Call { method, args } => decide_direct(
                    f, program, profile, opts, *method, depth, site_freq,
                )
                .map(|budget| Plan {
                    callee: *method,
                    args: args.clone(),
                    dispatch: SiteDispatch::Direct,
                    guard: None,
                    budget,
                }),
                Op::CallVirtual {
                    slot,
                    recv,
                    args,
                    site,
                } => {
                    let caller = origin.get(&b).copied().unwrap_or(f.method);
                    decide_virtual(
                        f, program, profile, opts, caller, *slot, *site, depth, site_freq,
                    )
                    .map(|(callee, class, share, budget)| {
                        let mut full_args = vec![*recv];
                        full_args.extend_from_slice(args);
                        Plan {
                            callee,
                            args: full_args,
                            dispatch: SiteDispatch::Virtual { slot: *slot },
                            guard: Some((class, share, *slot, *site)),
                            budget,
                        }
                    })
                }
                _ => None,
            };
            let Some(plan) = decision else {
                i += 1;
                continue;
            };
            if f.size() > opts.max_function_ops {
                return sites;
            }
            let site = splice(f, program, profile, b, i, inst.dst, &plan);
            // Enclosing sites absorb the new blocks.
            for s in &mut sites {
                if s.blocks.contains(&b) {
                    s.blocks.extend(site.blocks.iter().copied());
                    s.blocks.insert(site.cont);
                }
            }
            // Scan the body (deeper) and the continuation (same depth).
            for &nb in &site.blocks {
                origin.insert(nb, plan.callee);
                work.push((nb, 0, depth + 1));
            }
            origin.insert(site.cont, origin.get(&b).copied().unwrap_or(f.method));
            work.push((site.cont, 0, depth));
            sites.push(site);
            break; // rest of `b` moved to the continuation
        }
    }
    sites
}

struct Plan {
    callee: MethodId,
    args: Vec<VReg>,
    dispatch: SiteDispatch,
    /// (expected class, profile share, slot, site pc) for guarded virtual.
    guard: Option<(ClassId, f64, SlotId, u32)>,
    budget: InlineBudget,
}

fn decide_direct(
    f: &Func,
    program: &Program,
    profile: &Profile,
    opts: &InlineOptions,
    callee: MethodId,
    depth: usize,
    site_freq: u64,
) -> Option<InlineBudget> {
    if site_freq == 0 || depth >= opts.max_depth || callee == f.method {
        return None;
    }
    let m = program.method(callee);
    if m.opaque {
        return None;
    }
    budget_for(program, profile, opts, callee)
}

#[allow(clippy::too_many_arguments)]
fn decide_virtual(
    f: &Func,
    program: &Program,
    profile: &Profile,
    opts: &InlineOptions,
    caller: MethodId,
    slot: SlotId,
    site: u32,
    depth: usize,
    site_freq: u64,
) -> Option<(MethodId, ClassId, f64, InlineBudget)> {
    if site_freq == 0 || depth >= opts.max_depth || site == u32::MAX {
        return None;
    }
    let prof = profile.method(caller)?;
    let (class, share) = if opts.force_dominant_receiver {
        prof.dominant_receiver(site as usize)
            .filter(|(_, s)| *s >= 0.95)?
    } else {
        (prof.monomorphic_receiver(site as usize)?, 1.0)
    };
    let callee = program.resolve_virtual(class, slot);
    if callee == f.method || program.method(callee).opaque {
        return None;
    }
    let budget = budget_for(program, profile, opts, callee)?;
    Some((callee, class, share, budget))
}

/// Classifies a callee against the two budgets.
fn budget_for(
    program: &Program,
    profile: &Profile,
    opts: &InlineOptions,
    callee: MethodId,
) -> Option<InlineBudget> {
    let ir = translate(program, callee, profile.method(callee));
    let static_ops = ir.size();
    if static_ops <= opts.baseline_budget {
        return Some(InlineBudget::Baseline);
    }
    if !opts.aggressive {
        return None;
    }
    // Warm size: blocks that actually executed.
    let warm_ops: u64 = ir
        .block_ids()
        .iter()
        .filter(|b| ir.block(**b).freq > 0)
        .map(|b| ir.block(*b).insts.len() as u64 + 1)
        .sum();
    if warm_ops == 0 || warm_ops > opts.aggressive_budget {
        return None;
    }
    // "Our algorithm will not partially inline methods containing
    // polymorphic calls" (§6.1) — unless the dominant-receiver override is
    // on.
    if !opts.force_dominant_receiver {
        if let Some(p) = profile.method(callee) {
            let polymorphic = p.receivers.values().any(|h| h.len() > 1);
            if polymorphic {
                return None;
            }
        }
    }
    Some(InlineBudget::Aggressive)
}

/// Splices the callee body in place of instruction `idx` of block `b`.
fn splice(
    f: &mut Func,
    program: &Program,
    profile: &Profile,
    b: BlockId,
    idx: usize,
    call_dst: Option<VReg>,
    plan: &Plan,
) -> InlineSite {
    let callee_ir = translate(program, plan.callee, profile.method(plan.callee));
    let site_freq = f.block(b).freq;
    let invocations = profile
        .method(plan.callee)
        .map(|p| p.invocations)
        .unwrap_or(0);
    let scale = if invocations == 0 {
        0.0
    } else {
        site_freq as f64 / invocations as f64
    };

    // 1. Split at the call; the call instruction itself disappears.
    let tail: Vec<Inst> = f.block_mut(b).insts.drain(idx..).collect();
    let caller_term = std::mem::replace(&mut f.block_mut(b).term, Term::Return(None));
    let cont = f.add_block(caller_term);
    f.block_mut(cont).insts = tail[1..].to_vec();
    f.block_mut(cont).freq = site_freq;
    for s in f.succs(cont) {
        for inst in &mut f.block_mut(s).insts {
            if let Op::Phi(ins) = &mut inst.op {
                for (p, _) in ins.iter_mut() {
                    if *p == b {
                        *p = cont;
                    }
                }
            }
        }
    }

    // 2. Copy the callee body.
    let mut vmap: HashMap<VReg, VReg> = HashMap::new();
    for (i, arg) in plan.args.iter().enumerate() {
        vmap.insert(VReg(i as u32), *arg);
    }
    let callee_blocks = callee_ir.block_ids();
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    for &cb in &callee_blocks {
        bmap.insert(cb, f.add_block(Term::Return(None)));
    }
    let mut exits: Vec<(BlockId, Option<VReg>)> = Vec::new();
    for &cb in &callee_blocks {
        let nb = bmap[&cb];
        let mut insts = callee_ir.block(cb).insts.clone();
        for inst in &mut insts {
            if let Some(d) = inst.dst {
                let fresh = *vmap.entry(d).or_insert_with(|| f.vreg());
                inst.dst = Some(fresh);
            }
            if let Op::Phi(ins) = &mut inst.op {
                for (p, _) in ins.iter_mut() {
                    *p = bmap[p];
                }
            }
            for a in inst.op.args_mut() {
                if let Some(n) = vmap.get(a) {
                    *a = *n;
                } else if a.0 >= u32::from(callee_ir.params) {
                    // Forward reference (loop phi input): allocate now.
                    let fresh = f.vreg();
                    vmap.insert(*a, fresh);
                    *a = fresh;
                }
            }
        }
        let mut term = callee_ir.block(cb).term.clone();
        for a in term.args_mut() {
            if let Some(n) = vmap.get(a) {
                *a = *n;
            } else if a.0 >= u32::from(callee_ir.params) {
                let fresh = f.vreg();
                vmap.insert(*a, fresh);
                *a = fresh;
            }
        }
        match term {
            Term::Return(v) => {
                exits.push((nb, v));
                f.block_mut(nb).term = Term::Jump(cont);
            }
            mut other => {
                for s in other.succs() {
                    other.retarget(s, bmap[&s]);
                }
                f.block_mut(nb).term = other;
            }
        }
        f.block_mut(nb).insts = insts;
        f.block_mut(nb).freq = (callee_ir.block(cb).freq as f64 * scale) as u64;
        scale_counts(&mut f.block_mut(nb).term, scale);
    }
    assert!(!exits.is_empty(), "callee {} never returns", callee_ir.name);
    let entry_copy = bmap[&callee_ir.entry];
    f.block_mut(entry_copy).freq = site_freq;

    // 3. Result phi in the continuation.
    let mut result_inputs: Vec<(BlockId, VReg)> = Vec::new();
    if call_dst.is_some() {
        for (eb, v) in &exits {
            let val = match v {
                Some(v) => *v,
                None => {
                    let z = f.vreg();
                    f.block_mut(*eb).insts.push(Inst::with_dst(z, Op::Const(0)));
                    z
                }
            };
            result_inputs.push((*eb, val));
        }
    }

    // 4. Wire the pre block (plus the class guard for virtual sites).
    let mut blocks: HashSet<BlockId> = bmap.values().copied().collect();
    match &plan.guard {
        None => {
            f.block_mut(b).term = Term::Jump(entry_copy);
        }
        Some((class, share, slot, site)) => {
            let cls = f.vreg();
            f.block_mut(b)
                .insts
                .push(Inst::with_dst(cls, Op::LoadClass(plan.args[0])));
            let kc = f.vreg();
            f.block_mut(b)
                .insts
                .push(Inst::with_dst(kc, Op::Const(i64::from(class.0))));
            // Guard-miss path: the original virtual call.
            let slow = f.add_block(Term::Jump(cont));
            let slow_dst = call_dst.map(|_| f.vreg());
            f.block_mut(slow).insts.push(Inst {
                dst: slow_dst,
                op: Op::CallVirtual {
                    slot: *slot,
                    recv: plan.args[0],
                    args: plan.args[1..].to_vec(),
                    site: *site,
                },
            });
            let miss = ((1.0 - share) * site_freq as f64) as u64;
            f.block_mut(slow).freq = miss;
            f.block_mut(b).term = Term::Branch {
                op: CmpOp::Eq,
                a: cls,
                b: kc,
                t: entry_copy,
                f: slow,
                t_count: site_freq.saturating_sub(miss),
                f_count: miss,
            };
            if let Some(sd) = slow_dst {
                result_inputs.push((slow, sd));
            }
            blocks.insert(slow);
        }
    }
    if let Some(d) = call_dst {
        f.block_mut(cont)
            .insts
            .insert(0, Inst::with_dst(d, Op::Phi(result_inputs)));
    }

    InlineSite {
        callee: plan.callee,
        pre: b,
        entry: entry_copy,
        cont,
        blocks,
        dst: call_dst,
        args: plan.args.clone(),
        dispatch: plan.dispatch.clone(),
        budget: plan.budget,
    }
}

fn scale_counts(t: &mut Term, scale: f64) {
    let s = |c: &mut u64| *c = (*c as f64 * scale) as u64;
    match t {
        Term::Branch {
            t_count, f_count, ..
        } => {
            s(t_count);
            s(f_count);
        }
        Term::Switch {
            targets, default, ..
        } => {
            for (_, c) in targets.iter_mut() {
                s(c);
            }
            s(&mut default.1);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::verify;
    use hasp_vm::builder::ProgramBuilder;
    use hasp_vm::bytecode::BinOp;
    use hasp_vm::interp::Interp;

    /// main calls double(x) in a hot loop; B.get is virtual & monomorphic.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let get_a = pb.declare("A.get", 1);
        let get_b = pb.declare("B.get", 1);
        let a = pb.add_class("A", None, &["v"]);
        let slot = pb.add_slot(a, get_a);
        let bcls = pb.add_class("B", Some(a), &[]);
        pb.override_slot(bcls, slot, get_b);
        let fv = pb.field(a, "v");

        for name in ["A.get", "B.get"] {
            let mut m = pb.method(name, 1);
            let r = m.reg();
            m.get_field(r, m.arg(0), fv);
            if name == "B.get" {
                let one = m.imm(1);
                m.bin(BinOp::Add, r, r, one);
            }
            m.ret(Some(r));
            m.finish(&mut pb);
        }

        let mut d = pb.method("double", 1);
        let two = d.imm(2);
        let r = d.reg();
        d.bin(BinOp::Mul, r, d.arg(0), two);
        d.ret(Some(r));
        let double = d.finish(&mut pb);

        let mut m = pb.method("main", 0);
        let o = m.reg();
        m.new_obj(o, bcls);
        let seven = m.imm(7);
        m.put_field(o, fv, seven);
        let sum = m.imm(0);
        let i = m.imm(0);
        let n = m.imm(200);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        let dv = m.reg();
        m.call(Some(dv), double, &[i]);
        let gv = m.reg();
        m.call_virtual(Some(gv), slot, o, &[]);
        m.bin(BinOp::Add, sum, sum, dv);
        m.bin(BinOp::Add, sum, sum, gv);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        m.checksum(sum);
        m.ret(Some(sum));
        let entry = m.finish(&mut pb);
        pb.finish(entry)
    }

    fn profiled(p: &Program) -> Profile {
        let mut interp = Interp::new(p).with_profiling();
        interp.set_fuel(10_000_000);
        interp.run(&[]).unwrap();
        interp.profile
    }

    #[test]
    fn inlines_direct_and_guarded_virtual() {
        let p = program();
        let prof = profiled(&p);
        let entry = p.entry();
        let mut f = translate(&p, entry, prof.method(entry));
        verify(&f).unwrap();
        let sites = run(&mut f, &p, &prof, &InlineOptions::default());
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        assert!(sites.len() >= 2, "both calls inlined, got {}", sites.len());
        // No hot calls remain (the guard-miss virtual call survives but is cold).
        let hot_calls: usize = f
            .block_ids()
            .iter()
            .filter(|b| f.block(**b).freq > 0)
            .map(|b| f.block(*b).insts.iter().filter(|i| i.op.is_call()).count())
            .sum();
        assert_eq!(hot_calls, 0, "{}", f.display());
        // A class guard exists.
        let has_guard = f.block_ids().iter().any(|b| {
            f.block(*b)
                .insts
                .iter()
                .any(|i| matches!(i.op, Op::LoadClass(_)))
        });
        assert!(has_guard);
        // Sites carry correct dispatch kinds.
        assert!(sites.iter().any(|s| s.dispatch == SiteDispatch::Direct));
        assert!(sites
            .iter()
            .any(|s| matches!(s.dispatch, SiteDispatch::Virtual { .. })));
    }

    #[test]
    fn opaque_methods_not_inlined() {
        let mut pb = ProgramBuilder::new();
        let mut op = pb.method("native", 1);
        op.set_opaque();
        op.ret(Some(op.arg(0)));
        let native = op.finish(&mut pb);
        let mut m = pb.method("main", 0);
        let x = m.imm(3);
        let r = m.reg();
        let head = m.new_label();
        let exit = m.new_label();
        let i = m.imm(0);
        let n = m.imm(100);
        let one = m.imm(1);
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        m.call(Some(r), native, &[x]);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        m.ret(Some(r));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let prof = profiled(&p);
        let mut f = translate(&p, entry, prof.method(entry));
        let sites = run(&mut f, &p, &prof, &InlineOptions::default());
        assert!(sites.is_empty());
    }

    #[test]
    fn functional_equivalence_after_inlining_via_structure() {
        // Inlining preserves verification invariants on a nested-call chain.
        let p = program();
        let prof = profiled(&p);
        let entry = p.entry();
        let mut f = translate(&p, entry, prof.method(entry));
        let opts = InlineOptions {
            max_depth: 3,
            ..Default::default()
        };
        run(&mut f, &p, &prof, &opts);
        crate::gvn::run(&mut f);
        crate::constprop::run(&mut f);
        crate::dce::run(&mut f);
        crate::simplify::run(&mut f);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
    }

    #[test]
    fn aggressive_budget_admits_larger_callees() {
        // A callee bigger than baseline budget: rejected normally, accepted
        // aggressively.
        let mut pb = ProgramBuilder::new();
        let mut big = pb.method("big", 1);
        let mut acc = big.imm(0);
        for k in 0..60 {
            let c = big.imm(k);
            let t = big.reg();
            big.bin(BinOp::Add, t, acc, c);
            acc = t;
        }
        big.ret(Some(acc));
        let bigm = big.finish(&mut pb);
        let mut m = pb.method("main", 0);
        let i = m.imm(0);
        let n = m.imm(500);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        let r = m.reg();
        m.call(Some(r), bigm, &[i]);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let prof = profiled(&p);

        let mut f1 = translate(&p, entry, prof.method(entry));
        let base = run(&mut f1, &p, &prof, &InlineOptions::default());
        assert!(base.is_empty(), "callee exceeds baseline budget");

        let mut f2 = translate(&p, entry, prof.method(entry));
        let opts = InlineOptions {
            aggressive: true,
            ..Default::default()
        };
        let aggr = run(&mut f2, &p, &prof, &opts);
        assert_eq!(aggr.len(), 1);
        assert_eq!(aggr[0].budget, InlineBudget::Aggressive);
        verify(&f2).unwrap();
    }
}
