//! # hasp-opt — the optimizing JIT passes
//!
//! The optimization passes of the HASP reproduction of *Hardware Atomicity
//! for Reliable Software Speculation* (ISCA 2007). The headline point of the
//! paper is that every pass in this crate is a *non-speculative* formulation
//! — yet, run after `hasp-core` converts cold paths into asserts inside
//! atomic regions, they perform speculative optimizations with no
//! compensation code:
//!
//! * [`gvn`] — dominator-scoped value numbering: redundant expressions,
//!   safety checks, loads (with store forwarding), and asserts.
//! * [`constprop`] — constant folding, algebraic identities, branch folding.
//! * [`dce`] — assert-aware dead-code elimination.
//! * [`simplify`] — CFG cleanup.
//! * [`inline`] — profile-guided inlining with the baseline/aggressive
//!   budget split that powers partial inlining.
//! * [`sle`] — speculative lock elision within regions.
//! * [`unroll`] — partial loop unrolling within regions.
//! * [`safepoint`] — GC-poll elision for region-enclosed loops.
//! * [`checkelim`] — the §7 post-dominance bounds-check elimination.
//! * [`superblock`] — tail-duplication + compensation-code baseline used to
//!   regenerate the paper's Figures 2–3 comparison.
//! * [`pipeline`] — the four compiler configurations of the evaluation.

#![warn(missing_docs)]

pub mod checkelim;
pub mod constprop;
pub mod dce;
pub mod gvn;
pub mod inline;
pub mod pipeline;
pub mod safepoint;
pub mod simplify;
pub mod sle;
pub mod superblock;
pub mod unroll;

pub use inline::InlineOptions;
pub use pipeline::{compile_method, compile_program, CompiledMethod, CompilerConfig};
