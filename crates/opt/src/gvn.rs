//! Dominator-scoped global value numbering with redundancy elimination.
//!
//! This is the paper's workhorse: a *non-speculative* redundancy-elimination
//! pass that, once cold edges have been converted into asserts, performs
//! *speculative* optimization for free (§2, §4). It removes:
//!
//! * redundant pure expressions (`Bin`, `Cmp`, `ArrayLen`, `InstanceOf`,
//!   `LoadClass`, constants),
//! * redundant safety checks (a dominating equivalent check subsumes a later
//!   one — null checks, bounds checks, div checks, cast checks),
//! * redundant *asserts* ("redundant asserts are eliminated by existing
//!   redundancy elimination passes such as global value numbering", §4),
//! * redundant memory loads, with store-to-load forwarding, using a
//!   memory-versioning discipline: every field (and the array-element space)
//!   carries a version; stores, calls and monitor operations advance it, and
//!   versions merge at control-flow joins — agreeing predecessors keep their
//!   version, disagreeing ones (or back edges) get a fresh one. A load is
//!   redundant only under an equal version, so availability flows through
//!   store-free warm diamonds but dies at joins whose other arm clobbers —
//!   which is exactly why converting cold edges into asserts widens the
//!   optimization scope (Figure 3).
//!
//! Value equivalences are global SSA facts collected in a union-find-style
//! leader table; expression availability is dominator-tree scoped.

use std::collections::HashMap;

use hasp_ir::{AssertKind, BlockId, DomTree, Func, Op, VReg};
use hasp_vm::bytecode::{BinOp, CmpOp};

/// Canonical expression key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(i64),
    ConstNull,
    Bin(BinOp, VReg, VReg),
    Cmp(CmpOp, VReg, VReg),
    ArrayLen(VReg),
    InstanceOf(VReg, u32),
    LoadClass(VReg),
    NullCheck(VReg),
    DivCheck(VReg),
    BoundsCheck(VReg, VReg),
    CastCheck(VReg, u32),
    LoadField(VReg, u16, u64),
    LoadElem(VReg, VReg, u64),
    AssertCmp(CmpOp, VReg, VReg),
    AssertNull(VReg),
    AssertClassNe(VReg, u32),
    AssertLockHeld(VReg),
    AssertIntNe(VReg, i64),
    SleCheck(VReg),
}

/// Statistics from one GVN run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GvnStats {
    /// Pure expressions replaced by earlier values.
    pub exprs: usize,
    /// Safety checks removed as subsumed.
    pub checks: usize,
    /// Loads removed (redundant or store-forwarded).
    pub loads: usize,
    /// Asserts removed as redundant.
    pub asserts: usize,
    /// Copies propagated away.
    pub copies: usize,
}

impl GvnStats {
    /// Total eliminated instructions.
    pub fn total(&self) -> usize {
        self.exprs + self.checks + self.loads + self.asserts + self.copies
    }
}

/// Per-program-point memory version state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct MemState {
    /// Versions of fields that diverged from `default`.
    fields: HashMap<u16, u64>,
    /// Version of every field not in `fields`.
    default: u64,
    /// Version of the array-element space.
    elems: u64,
}

impl MemState {
    fn field(&self, f: u16) -> u64 {
        self.fields.get(&f).copied().unwrap_or(self.default)
    }

    /// Joins predecessor states: agreeing components keep their version,
    /// disagreeing ones take a fresh tick.
    fn merge(states: &[&MemState], tick: &mut u64) -> MemState {
        let first = states[0];
        let mut out = MemState {
            fields: HashMap::new(),
            default: first.default,
            elems: first.elems,
        };
        if states.iter().any(|s| s.default != out.default) {
            *tick += 1;
            out.default = *tick;
        }
        if states.iter().any(|s| s.elems != first.elems) {
            *tick += 1;
            out.elems = *tick;
        } else {
            out.elems = first.elems;
        }
        // Fields that diverge in any state.
        let mut keys: Vec<u16> = Vec::new();
        for s in states {
            for &k in s.fields.keys() {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
        keys.sort_unstable();
        for k in keys {
            let v0 = first.field(k);
            if states.iter().all(|s| s.field(k) == v0) {
                out.fields.insert(k, v0);
            } else {
                *tick += 1;
                out.fields.insert(k, *tick);
            }
        }
        out
    }
}

struct Gvn<'f> {
    f: &'f mut Func,
    dt: DomTree,
    rpo_index: HashMap<BlockId, usize>,
    preds: HashMap<BlockId, Vec<BlockId>>,
    /// Global SSA value equivalences (path-compressed on lookup).
    leader: HashMap<VReg, VReg>,
    /// Scoped availability: stack of (key, Option<replacement value>).
    /// Checks/asserts have no value; presence alone marks availability.
    table: HashMap<Key, Vec<Option<VReg>>>,
    scope_log: Vec<Vec<Key>>,
    /// Memory state at each visited block's exit.
    block_out: HashMap<BlockId, MemState>,
    /// State while processing the current block.
    mem: MemState,
    version_tick: u64,
    stats: GvnStats,
}

/// Runs GVN over `f` until the dominator walk completes. Returns statistics.
pub fn run(f: &mut Func) -> GvnStats {
    let dt = DomTree::compute(f);
    let rpo_index: HashMap<BlockId, usize> = f
        .rpo()
        .into_iter()
        .enumerate()
        .map(|(i, b)| (b, i))
        .collect();
    let preds = f.preds();
    let mut g = Gvn {
        f,
        dt,
        rpo_index,
        preds,
        leader: HashMap::new(),
        table: HashMap::new(),
        scope_log: Vec::new(),
        block_out: HashMap::new(),
        mem: MemState::default(),
        version_tick: 0,
        stats: GvnStats::default(),
    };
    let root = g.dt.root();
    g.walk(root);
    // Loop phis and any forward references pick up leaders in a final sweep.
    g.rewrite_all();
    g.stats
}

impl Gvn<'_> {
    fn resolve(&mut self, v: VReg) -> VReg {
        let mut cur = v;
        let mut chain = Vec::new();
        while let Some(&n) = self.leader.get(&cur) {
            if n == cur {
                break;
            }
            chain.push(cur);
            cur = n;
        }
        for c in chain {
            self.leader.insert(c, cur);
        }
        cur
    }

    fn bump_all_versions(&mut self) {
        self.version_tick += 1;
        self.mem.default = self.version_tick;
        self.mem.fields.clear();
        self.version_tick += 1;
        self.mem.elems = self.version_tick;
    }

    fn field_ver(&mut self, field: u16) -> u64 {
        self.mem.field(field)
    }

    fn bump_field(&mut self, field: u16) {
        self.version_tick += 1;
        self.mem.fields.insert(field, self.version_tick);
    }

    fn bump_elems(&mut self) {
        self.version_tick += 1;
        self.mem.elems = self.version_tick;
    }

    fn lookup(&self, k: &Key) -> Option<Option<VReg>> {
        self.table.get(k).and_then(|v| v.last()).copied()
    }

    fn record(&mut self, k: Key, v: Option<VReg>) {
        self.table.entry(k.clone()).or_default().push(v);
        self.scope_log.last_mut().expect("in scope").push(k);
    }

    fn walk(&mut self, b: BlockId) {
        self.scope_log.push(Vec::new());
        // Memory state at block entry: the join of predecessor exit states.
        // An unvisited predecessor (a back edge) contributes "unknown", which
        // the merge turns into fresh versions.
        {
            let preds: Vec<BlockId> = self.preds.get(&b).cloned().unwrap_or_default();
            let unknown = MemState {
                fields: HashMap::new(),
                default: u64::MAX,
                elems: u64::MAX,
            };
            let states: Vec<&MemState> = preds
                .iter()
                .map(|p| self.block_out.get(p).unwrap_or(&unknown))
                .collect();
            self.mem = if states.is_empty() {
                MemState::default()
            } else {
                let mut tick = self.version_tick;
                let merged = MemState::merge(&states, &mut tick);
                self.version_tick = tick;
                merged
            };
            // `u64::MAX` components (all-unknown joins) become fresh ticks.
            if self.mem.default == u64::MAX {
                self.version_tick += 1;
                self.mem.default = self.version_tick;
            }
            if self.mem.elems == u64::MAX {
                self.version_tick += 1;
                self.mem.elems = self.version_tick;
            }
            let stale: Vec<u16> = self
                .mem
                .fields
                .iter()
                .filter(|(_, &v)| v == u64::MAX)
                .map(|(&k, _)| k)
                .collect();
            for k in stale {
                self.version_tick += 1;
                self.mem.fields.insert(k, self.version_tick);
            }
        }

        let n = self.f.block(b).insts.len();
        let mut kill: Vec<usize> = Vec::new();
        for i in 0..n {
            // Substitute operands through the leader table.
            let mut inst = self.f.block(b).insts[i].clone();
            if !matches!(inst.op, Op::Phi(_)) {
                for a in inst.op.args_mut() {
                    *a = self.resolve(*a);
                }
            }
            let verdict = self.visit(&inst.op, inst.dst);
            match verdict {
                Verdict::Keep => {
                    self.f.block_mut(b).insts[i] = inst;
                }
                Verdict::Replace(lead) => {
                    let dst = inst.dst.expect("replaced inst has a result");
                    self.leader.insert(dst, lead);
                    kill.push(i);
                }
                Verdict::Delete => {
                    kill.push(i);
                }
            }
        }
        for &i in kill.iter().rev() {
            self.f.block_mut(b).insts.remove(i);
        }
        // Terminator operands.
        {
            let mut term = self.f.block(b).term.clone();
            let args: Vec<VReg> = term.args_mut().iter().map(|a| **a).collect();
            let resolved: Vec<VReg> = args.into_iter().map(|a| self.resolve(a)).collect();
            for (slot, r) in term.args_mut().into_iter().zip(resolved) {
                *slot = r;
            }
            self.f.block_mut(b).term = term;
        }

        self.block_out.insert(b, self.mem.clone());

        // Children in reverse postorder so a join's predecessors have their
        // exit states recorded before the join is visited.
        let mut children: Vec<BlockId> = self.dt.children(b).to_vec();
        children.sort_by_key(|c| self.rpo_index.get(c).copied().unwrap_or(usize::MAX));
        for c in children {
            self.walk(c);
        }

        for k in self.scope_log.pop().expect("scope") {
            let stack = self.table.get_mut(&k).expect("recorded");
            stack.pop();
            if stack.is_empty() {
                self.table.remove(&k);
            }
        }
    }

    fn visit(&mut self, op: &Op, dst: Option<VReg>) -> Verdict {
        match op {
            Op::Copy(v) => {
                let lead = self.resolve(*v);
                self.stats.copies += 1;
                Verdict::Replace(lead)
            }
            Op::Phi(ins) => {
                // All-same phi collapses (inputs may reference later defs in
                // loops, so resolve conservatively without mutating).
                let mut vals = ins.iter().map(|(_, v)| *v);
                if let Some(first) = vals.next() {
                    if vals.all(|v| v == first) {
                        // Only collapse if the value dominates this block —
                        // guaranteed when it came from all predecessors.
                        self.stats.copies += 1;
                        return Verdict::Replace(self.resolve(first));
                    }
                }
                Verdict::Keep
            }
            Op::Const(c) => self.pure(Key::Const(*c), dst),
            Op::ConstNull => self.pure(Key::ConstNull, dst),
            Op::Bin(binop, a, b) => {
                let (x, y) = canonical_commutative(*binop, *a, *b);
                self.pure(Key::Bin(*binop, x, y), dst)
            }
            Op::Cmp(c, a, b) => {
                let (c2, x, y) = canonical_cmp(*c, *a, *b);
                self.pure(Key::Cmp(c2, x, y), dst)
            }
            Op::ArrayLen(a) => self.pure(Key::ArrayLen(*a), dst),
            Op::InstanceOf { obj, class } => self.pure(Key::InstanceOf(*obj, class.0), dst),
            Op::LoadClass(v) => self.pure(Key::LoadClass(*v), dst),

            Op::NullCheck(v) => self.check(Key::NullCheck(*v)),
            Op::DivCheck(v) => self.check(Key::DivCheck(*v)),
            Op::BoundsCheck { len, idx } => self.check(Key::BoundsCheck(*len, *idx)),
            Op::CastCheck { obj, class } => self.check(Key::CastCheck(*obj, class.0)),

            Op::Assert { kind, .. } => {
                let key = match kind {
                    AssertKind::Cmp { op, a, b } => {
                        let (c2, x, y) = canonical_cmp(*op, *a, *b);
                        Key::AssertCmp(c2, x, y)
                    }
                    AssertKind::Null(v) => Key::AssertNull(*v),
                    AssertKind::ClassNe { obj, class } => Key::AssertClassNe(*obj, class.0),
                    AssertKind::LockHeld(v) => Key::AssertLockHeld(*v),
                    AssertKind::IntNe { sel, expected } => Key::AssertIntNe(*sel, *expected),
                };
                if self.lookup(&key).is_some() {
                    self.stats.asserts += 1;
                    Verdict::Delete
                } else {
                    self.record(key, None);
                    Verdict::Keep
                }
            }
            Op::SleCheck(v) => self.check(Key::SleCheck(*v)),

            Op::LoadField { obj, field } => {
                let ver = self.field_ver(field.0);
                let key = Key::LoadField(*obj, field.0, ver);
                match self.lookup(&key) {
                    Some(Some(lead)) => {
                        self.stats.loads += 1;
                        Verdict::Replace(lead)
                    }
                    _ => {
                        self.record(key, dst);
                        Verdict::Keep
                    }
                }
            }
            Op::LoadElem { arr, idx } => {
                let key = Key::LoadElem(*arr, *idx, self.mem.elems);
                match self.lookup(&key) {
                    Some(Some(lead)) => {
                        self.stats.loads += 1;
                        Verdict::Replace(lead)
                    }
                    _ => {
                        self.record(key, dst);
                        Verdict::Keep
                    }
                }
            }
            Op::StoreField { obj, field, val } => {
                self.bump_field(field.0);
                let ver = self.field_ver(field.0);
                // Store-to-load forwarding.
                self.record(Key::LoadField(*obj, field.0, ver), Some(*val));
                Verdict::Keep
            }
            Op::StoreElem { arr, idx, val } => {
                self.bump_elems();
                self.record(Key::LoadElem(*arr, *idx, self.mem.elems), Some(*val));
                Verdict::Keep
            }
            Op::Call { .. } | Op::CallVirtual { .. } | Op::MonitorEnter(_) | Op::MonitorExit(_) => {
                self.bump_all_versions();
                Verdict::Keep
            }
            _ => Verdict::Keep,
        }
    }

    fn pure(&mut self, key: Key, dst: Option<VReg>) -> Verdict {
        match self.lookup(&key) {
            Some(Some(lead)) => {
                self.stats.exprs += 1;
                Verdict::Replace(lead)
            }
            _ => {
                self.record(key, dst);
                Verdict::Keep
            }
        }
    }

    fn check(&mut self, key: Key) -> Verdict {
        if self.lookup(&key).is_some() {
            self.stats.checks += 1;
            Verdict::Delete
        } else {
            self.record(key, None);
            Verdict::Keep
        }
    }

    /// Final substitution sweep: phi inputs (which may reference values only
    /// resolved later in the walk) and everything else.
    fn rewrite_all(&mut self) {
        for b in self.f.block_ids() {
            let n = self.f.block(b).insts.len();
            for i in 0..n {
                let mut inst = self.f.block(b).insts[i].clone();
                for a in inst.op.args_mut() {
                    *a = self.resolve(*a);
                }
                self.f.block_mut(b).insts[i] = inst;
            }
            let mut term = self.f.block(b).term.clone();
            let args: Vec<VReg> = term.args_mut().iter().map(|a| **a).collect();
            let resolved: Vec<VReg> = args.into_iter().map(|a| self.resolve(a)).collect();
            for (slot, r) in term.args_mut().into_iter().zip(resolved) {
                *slot = r;
            }
            self.f.block_mut(b).term = term;
        }
    }
}

enum Verdict {
    Keep,
    Replace(VReg),
    Delete,
}

fn canonical_commutative(op: BinOp, a: VReg, b: VReg) -> (VReg, VReg) {
    match op {
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor if b < a => (b, a),
        _ => (a, b),
    }
}

fn canonical_cmp(op: CmpOp, a: VReg, b: VReg) -> (CmpOp, VReg, VReg) {
    if b < a {
        (op.swap(), b, a)
    } else {
        (op, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst, Term};
    use hasp_vm::bytecode::{FieldId, MethodId};

    fn count_op(f: &Func, pred: impl Fn(&Op) -> bool) -> usize {
        f.block_ids()
            .iter()
            .map(|b| f.block(*b).insts.iter().filter(|i| pred(&i.op)).count())
            .sum()
    }

    #[test]
    fn removes_redundant_checks_and_loads() {
        // Two back-to-back field accesses on the same object: the second
        // null check and load are redundant (Figure 3's optimization).
        let mut f = Func::new("t", MethodId(0), 1);
        let o = VReg(0);
        let d1 = f.vreg();
        let d2 = f.vreg();
        let sum = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::effect(Op::NullCheck(o)));
        e.insts.push(Inst::with_dst(
            d1,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        e.insts.push(Inst::effect(Op::NullCheck(o)));
        e.insts.push(Inst::with_dst(
            d2,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        e.insts
            .push(Inst::with_dst(sum, Op::Bin(BinOp::Add, d1, d2)));
        e.term = Term::Return(Some(sum));

        let stats = run(&mut f);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        assert_eq!(stats.checks, 1);
        assert_eq!(stats.loads, 1);
        assert_eq!(count_op(&f, |o| matches!(o, Op::NullCheck(_))), 1);
        assert_eq!(count_op(&f, |o| matches!(o, Op::LoadField { .. })), 1);
        // The Bin now adds d1 to itself.
        let bin = f.block(f.entry).insts.last().unwrap();
        assert_eq!(bin.op.args(), vec![d1, d1]);
    }

    #[test]
    fn store_kills_load_availability_but_forwards() {
        let mut f = Func::new("t", MethodId(0), 2);
        let o = VReg(0);
        let v = VReg(1);
        let d1 = f.vreg();
        let d2 = f.vreg();
        let sum = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::with_dst(
            d1,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        e.insts.push(Inst::effect(Op::StoreField {
            obj: o,
            field: FieldId(0),
            val: v,
        }));
        e.insts.push(Inst::with_dst(
            d2,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        e.insts
            .push(Inst::with_dst(sum, Op::Bin(BinOp::Add, d1, d2)));
        e.term = Term::Return(Some(sum));

        let stats = run(&mut f);
        verify(&f).unwrap();
        // d2 is forwarded from the store (value v), not from d1.
        assert_eq!(stats.loads, 1);
        let bin = f
            .block(f.entry)
            .insts
            .iter()
            .find(|i| matches!(i.op, Op::Bin(..)))
            .unwrap();
        assert_eq!(bin.op.args(), vec![d1, v]);
    }

    #[test]
    fn clobbering_merge_kills_availability() {
        // load; diamond where ONE arm stores the field; load after the join
        // — the reload must survive (the store arm changed the version).
        let mut f = Func::new("t", MethodId(0), 2);
        let (o, v) = (VReg(0), VReg(1));
        let join = f.add_block(Term::Return(None));
        let l = f.add_block(Term::Jump(join));
        let r = f.add_block(Term::Jump(join));
        f.block_mut(l).insts.push(Inst::effect(Op::StoreField {
            obj: o,
            field: FieldId(0),
            val: v,
        }));
        let d1 = f.vreg();
        f.block_mut(f.entry).insts.push(Inst::with_dst(
            d1,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        let z = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(z, Op::Const(0)));
        f.block_mut(f.entry).term = Term::Branch {
            op: CmpOp::Eq,
            a: d1,
            b: z,
            t: l,
            f: r,
            t_count: 1,
            f_count: 1,
        };
        let d2 = f.vreg();
        f.block_mut(join).insts.push(Inst::with_dst(
            d2,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        f.block_mut(join).term = Term::Return(Some(d2));

        let stats = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(stats.loads, 0, "clobbering merge must kill availability");
        assert_eq!(count_op(&f, |o| matches!(o, Op::LoadField { .. })), 2);
    }

    #[test]
    fn store_free_diamond_preserves_availability() {
        // load; store-free diamond; load — versions agree at the join, so
        // the reload is redundant (per-field memory versioning).
        let mut f = Func::new("t", MethodId(0), 1);
        let o = VReg(0);
        let join = f.add_block(Term::Return(None));
        let l = f.add_block(Term::Jump(join));
        let r = f.add_block(Term::Jump(join));
        let d1 = f.vreg();
        f.block_mut(f.entry).insts.push(Inst::with_dst(
            d1,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        let z = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(z, Op::Const(0)));
        f.block_mut(f.entry).term = Term::Branch {
            op: CmpOp::Eq,
            a: d1,
            b: z,
            t: l,
            f: r,
            t_count: 1,
            f_count: 1,
        };
        let d2 = f.vreg();
        f.block_mut(join).insts.push(Inst::with_dst(
            d2,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        f.block_mut(join).term = Term::Return(Some(d2));

        let stats = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(stats.loads, 1, "store-free diamond must forward");
        match f.block(join).term {
            Term::Return(Some(ret)) => assert_eq!(ret, d1),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn straightline_chain_keeps_availability_across_blocks() {
        // Single-pred chain: availability flows through.
        let mut f = Func::new("t", MethodId(0), 1);
        let o = VReg(0);
        let b2 = f.add_block(Term::Return(None));
        let d1 = f.vreg();
        f.block_mut(f.entry).insts.push(Inst::with_dst(
            d1,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        f.block_mut(f.entry).term = Term::Jump(b2);
        let d2 = f.vreg();
        f.block_mut(b2).insts.push(Inst::with_dst(
            d2,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        f.block_mut(b2).term = Term::Return(Some(d2));

        let stats = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(stats.loads, 1);
        match f.block(b2).term {
            Term::Return(Some(v)) => assert_eq!(v, d1),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn redundant_asserts_removed() {
        use hasp_ir::{RegionId, RegionInfo};
        let mut f = Func::new("t", MethodId(0), 2);
        let exit = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(exit));
        let abort = f.add_block(Term::Jump(exit));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 1,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        let (a, b) = (VReg(0), VReg(1));
        let id1 = f.new_assert(RegionId(0), "one");
        let id2 = f.new_assert(RegionId(0), "two");
        f.block_mut(body).insts.push(Inst::effect(Op::Assert {
            kind: AssertKind::Cmp {
                op: CmpOp::Ge,
                a,
                b,
            },
            id: id1,
        }));
        f.block_mut(body).insts.push(Inst::effect(Op::Assert {
            kind: AssertKind::Cmp {
                op: CmpOp::Ge,
                a,
                b,
            },
            id: id2,
        }));
        f.block_mut(body).insts.push(Inst::effect(Op::RegionEnd(r)));

        let stats = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(stats.asserts, 1);
    }

    #[test]
    fn commutative_canonicalization() {
        let mut f = Func::new("t", MethodId(0), 2);
        let (a, b) = (VReg(0), VReg(1));
        let d1 = f.vreg();
        let d2 = f.vreg();
        let s = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::with_dst(d1, Op::Bin(BinOp::Add, a, b)));
        e.insts.push(Inst::with_dst(d2, Op::Bin(BinOp::Add, b, a)));
        e.insts.push(Inst::with_dst(s, Op::Bin(BinOp::Sub, d1, d2)));
        e.term = Term::Return(Some(s));
        let stats = run(&mut f);
        assert_eq!(stats.exprs, 1);
        // Sub is not commutative: a-b != b-a must NOT merge.
        let mut g = Func::new("t2", MethodId(0), 2);
        let d1 = g.vreg();
        let d2 = g.vreg();
        let s = g.vreg();
        let e = g.block_mut(g.entry);
        e.insts.push(Inst::with_dst(d1, Op::Bin(BinOp::Sub, a, b)));
        e.insts.push(Inst::with_dst(d2, Op::Bin(BinOp::Sub, b, a)));
        e.insts.push(Inst::with_dst(s, Op::Bin(BinOp::Add, d1, d2)));
        e.term = Term::Return(Some(s));
        let stats = run(&mut g);
        assert_eq!(stats.exprs, 0);
    }

    #[test]
    fn loop_header_merge_prevents_cross_iteration_forwarding() {
        // load in preheader; loop body stores; load in header must survive.
        let mut f = Func::new("t", MethodId(0), 2);
        let o = VReg(0);
        let v = VReg(1);
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let d0 = f.vreg();
        f.block_mut(f.entry).insts.push(Inst::with_dst(
            d0,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        f.block_mut(f.entry).term = Term::Jump(head);
        let d1 = f.vreg();
        f.block_mut(head).insts.push(Inst::with_dst(
            d1,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: d1,
            b: v,
            t: body,
            f: exit,
            t_count: 10,
            f_count: 1,
        };
        f.block_mut(body).insts.push(Inst::effect(Op::StoreField {
            obj: o,
            field: FieldId(0),
            val: v,
        }));

        let stats = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(stats.loads, 0, "header load must survive the loop store");
    }
}
