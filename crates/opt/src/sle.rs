//! Speculative lock elision (paper §4, ~400 LOC in the authors' compiler).
//!
//! Atomic regions often contain balanced monitor enter/exit pairs on
//! uncontended locks. Hardware atomicity already isolates the region from
//! other threads, so the pair can be elided: the enter becomes a single load
//! of the lock word plus a held-by-another-thread test (abort if held), and
//! the exit disappears entirely — "in the common case, no action is needed
//! at the monitor exit".

use std::collections::HashMap;

use hasp_ir::{BlockId, DomTree, Func, Op, PostDomTree, VReg};

/// Elides balanced monitor pairs inside atomic regions. Returns the number
/// of pairs elided.
pub fn run(f: &mut Func) -> usize {
    if f.regions.is_empty() {
        return 0;
    }
    let dt = DomTree::compute(f);
    let pdt = PostDomTree::compute(f);

    // Collect monitor ops per (region, lock value).
    type Site = (BlockId, usize);
    let mut enters: HashMap<(u32, VReg), Vec<Site>> = HashMap::new();
    let mut exits: HashMap<(u32, VReg), Vec<Site>> = HashMap::new();
    for b in f.block_ids() {
        let Some(r) = f.block(b).region else { continue };
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            match inst.op {
                Op::MonitorEnter(v) => enters.entry((r.0, v)).or_default().push((b, i)),
                Op::MonitorExit(v) => exits.entry((r.0, v)).or_default().push((b, i)),
                _ => {}
            }
        }
    }

    // Greedy ordered pairing: sort each lock's enters and exits by
    // (dominance-compatible) program order and match the i-th enter with the
    // i-th exit. A pair is elidable when the enter dominates the exit and
    // the exit post-dominates the enter — every region path acquires and
    // releases together. (For nested pairs this elides inner pairs first,
    // which is also correct.)
    let rpo_index: HashMap<BlockId, usize> = f
        .rpo()
        .into_iter()
        .enumerate()
        .map(|(i, b)| (b, i))
        .collect();
    let order_key =
        |(b, i): Site| -> (usize, usize) { (rpo_index.get(&b).copied().unwrap_or(usize::MAX), i) };
    let mut rewrites: Vec<(Site, Site, VReg)> = Vec::new();
    for (key, ens) in &enters {
        let Some(exs) = exits.get(key) else { continue };
        if ens.len() != exs.len() {
            continue;
        }
        let mut ens = ens.clone();
        let mut exs = exs.clone();
        ens.sort_by_key(|s| order_key(*s));
        exs.sort_by_key(|s| order_key(*s));
        let mut ok = true;
        let mut pairs = Vec::new();
        for (&(eb, ei), &(xb, xi)) in ens.iter().zip(&exs) {
            let ordered = if eb == xb {
                ei < xi
            } else {
                dt.dominates(eb, xb) && pdt.post_dominates(xb, eb)
            };
            if !ordered {
                ok = false;
                break;
            }
            pairs.push(((eb, ei), (xb, xi), key.1));
        }
        if ok {
            rewrites.extend(pairs);
        }
    }

    // Apply: enter -> SleCheck, exit -> removed. Process removals from the
    // highest index so earlier indices stay valid.
    let mut removals: Vec<Site> = Vec::new();
    for ((eb, ei), (xb, xi), v) in &rewrites {
        f.block_mut(*eb).insts[*ei].op = Op::SleCheck(*v);
        removals.push((*xb, *xi));
    }
    removals.sort_by(|a, b| b.cmp(a));
    for (xb, xi) in removals {
        f.block_mut(xb).insts.remove(xi);
    }
    rewrites.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst, RegionInfo, Term};
    use hasp_vm::bytecode::MethodId;

    fn region_with_monitor_pair(balanced: bool) -> (Func, BlockId) {
        let mut f = Func::new("t", MethodId(0), 1);
        let lock = hasp_ir::VReg(0);
        let exit = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Return(None));
        let abort = f.add_block(Term::Jump(exit));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 4,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        f.block_mut(body)
            .insts
            .push(Inst::effect(Op::MonitorEnter(lock)));
        if balanced {
            f.block_mut(body)
                .insts
                .push(Inst::effect(Op::MonitorExit(lock)));
        }
        f.block_mut(body).insts.push(Inst::effect(Op::RegionEnd(r)));
        f.block_mut(body).term = Term::Jump(exit);
        (f, body)
    }

    #[test]
    fn elides_balanced_pair() {
        let (mut f, body) = region_with_monitor_pair(true);
        assert_eq!(run(&mut f), 1);
        verify(&f).unwrap();
        let ops: Vec<&Op> = f.block(body).insts.iter().map(|i| &i.op).collect();
        assert!(matches!(ops[0], Op::SleCheck(_)));
        assert!(!ops
            .iter()
            .any(|o| matches!(o, Op::MonitorExit(_) | Op::MonitorEnter(_))));
    }

    #[test]
    fn unbalanced_pair_untouched() {
        let (mut f, body) = region_with_monitor_pair(false);
        assert_eq!(run(&mut f), 0);
        assert!(f
            .block(body)
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::MonitorEnter(_))));
    }

    #[test]
    fn monitors_outside_regions_untouched() {
        let mut f = Func::new("t", MethodId(0), 1);
        let lock = hasp_ir::VReg(0);
        f.block_mut(f.entry)
            .insts
            .push(Inst::effect(Op::MonitorEnter(lock)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::effect(Op::MonitorExit(lock)));
        f.block_mut(f.entry).term = Term::Return(None);
        assert_eq!(run(&mut f), 0);
        assert_eq!(f.block(f.entry).insts.len(), 2);
    }

    #[test]
    fn exit_not_postdominating_is_skipped() {
        // enter in body, exit only on one side of a diamond: not elidable.
        use hasp_vm::bytecode::CmpOp;
        let mut f = Func::new("t", MethodId(0), 2);
        let lock = hasp_ir::VReg(0);
        let cond = hasp_ir::VReg(1);
        let ret = f.add_block(Term::Return(None));
        let join = f.add_block(Term::Return(None));
        let left = f.add_block(Term::Jump(join));
        let right = f.add_block(Term::Jump(join));
        let body = f.add_block(Term::Return(None));
        let abort = f.add_block(Term::Jump(ret));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 8,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        for b in [body, left, right, join] {
            f.block_mut(b).region = Some(r);
        }
        f.block_mut(body)
            .insts
            .push(Inst::effect(Op::MonitorEnter(lock)));
        f.block_mut(body).term = Term::Branch {
            op: CmpOp::Eq,
            a: cond,
            b: cond,
            t: left,
            f: right,
            t_count: 1,
            f_count: 1,
        };
        f.block_mut(left)
            .insts
            .push(Inst::effect(Op::MonitorExit(lock)));
        f.block_mut(join).insts.push(Inst::effect(Op::RegionEnd(r)));
        f.block_mut(join).term = Term::Jump(ret);
        assert_eq!(run(&mut f), 0, "exit must post-dominate enter");
    }
}
