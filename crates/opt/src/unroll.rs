//! Partial loop unrolling inside atomic regions (paper §4, ~200 LOC in the
//! authors' compiler).
//!
//! A loop fully enclosed in an atomic region gets its body duplicated once
//! (factor 2): iteration pairs then form straight-line code across which GVN
//! removes redundant checks and loads — the paper's Figure 3 effect across
//! iterations. Cold paths inside the body were already converted to asserts,
//! so only the hot body is duplicated: that is what makes the unrolling
//! *partial*.
//!
//! Values defined in the loop may escape through its exits; after the copy,
//! a reaching-definition SSA repair inserts the join phis that merge the
//! iteration-1 and iteration-2 definitions wherever they are consumed.

use std::collections::{HashMap, HashSet};

use hasp_core::RegionConfig;
use hasp_ir::{BlockId, DomTree, Func, LoopForest, Op, Term, VReg};

/// Unrolls eligible region-enclosed loops by a factor of 2. Returns the
/// number of loops unrolled.
pub fn run(f: &mut Func, cfg: &RegionConfig) -> usize {
    if f.regions.is_empty() {
        return 0;
    }
    let dt = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dt);
    let mut unrolled = 0;
    // Only innermost loops (a body copy invalidates outer-loop block sets).
    let candidates: Vec<_> = forest
        .post_order()
        .iter()
        .filter(|l| {
            l.depth
                == forest
                    .post_order()
                    .iter()
                    .map(|x| x.depth)
                    .max()
                    .unwrap_or(0)
        })
        .cloned()
        .collect();
    for l in candidates {
        if try_unroll(f, cfg, &l) {
            unrolled += 1;
        }
    }
    unrolled
}

fn try_unroll(f: &mut Func, cfg: &RegionConfig, l: &hasp_ir::Loop) -> bool {
    let trace = std::env::var("HASP_TRACE_UNROLL").is_ok();
    // Fully inside one region.
    let Some(region) = f.block(l.header).region else {
        if trace {
            eprintln!("unroll {:?}: header not in region", l.header);
        }
        return false;
    };
    if !l.blocks.iter().all(|b| f.block(*b).region == Some(region)) {
        if trace {
            eprintln!("unroll {:?}: straddles region", l.header);
        }
        return false;
    }
    // Single latch.
    let latches = l.latches(f);
    if latches.len() != 1 {
        if trace {
            eprintln!("unroll {:?}: {} latches", l.header, latches.len());
        }
        return false;
    }
    let latch = latches[0];
    // Size budget: doubling must stay within the region cap.
    let loop_ops: u64 = l
        .blocks
        .iter()
        .map(|&b| f.block(b).insts.len() as u64 + 1)
        .sum();
    if loop_ops * 2 > cfg.max_region_ops {
        if trace {
            eprintln!("unroll {:?}: too big ({loop_ops})", l.header);
        }
        return false;
    }
    let _ = trace;
    let defs: HashSet<VReg> = l
        .blocks
        .iter()
        .flat_map(|&b| f.block(b).insts.iter().filter_map(|i| i.dst))
        .collect();
    let exit_targets: HashSet<BlockId> = l.exit_targets(f).into_iter().collect();

    // ---- Copy the body (iteration 2). ----
    let mut vmap: HashMap<VReg, VReg> = HashMap::new();
    for &d in &defs {
        let fresh = f.vreg();
        vmap.insert(d, fresh);
    }
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    let blocks: Vec<BlockId> = {
        let mut v: Vec<_> = l.blocks.iter().copied().collect();
        v.sort();
        v
    };
    for &b in &blocks {
        let nb = f.add_block(Term::Return(None));
        bmap.insert(b, nb);
    }
    // Latch-carried values feeding the header phis of iteration 2.
    let header_phis: Vec<(VReg, VReg)> = f
        .block(l.header)
        .phis()
        .map(|inst| {
            let Op::Phi(ins) = &inst.op else {
                unreachable!()
            };
            let latch_val = ins
                .iter()
                .find(|(p, _)| *p == latch)
                .map(|(_, v)| *v)
                .expect("header phi must have a latch input");
            (inst.dst.expect("phi has dst"), latch_val)
        })
        .collect();

    for &b in &blocks {
        let nb = bmap[&b];
        let mut insts = f.block(b).insts.clone();
        for inst in &mut insts {
            if let Some(d) = inst.dst {
                inst.dst = Some(vmap[&d]);
            }
            if let Op::Phi(ins) = &mut inst.op {
                for (p, _) in ins.iter_mut() {
                    if let Some(np) = bmap.get(p) {
                        *p = *np;
                    }
                }
            }
            for a in inst.op.args_mut() {
                if let Some(n) = vmap.get(a) {
                    *a = *n;
                }
            }
        }
        // Iteration 2's header phis become copies of iteration 1's
        // latch-carried values.
        if b == l.header {
            for (slot, (phi_dst, latch_val)) in header_phis.iter().enumerate() {
                let inst = &mut insts[slot];
                debug_assert_eq!(inst.dst, Some(vmap[phi_dst]));
                inst.op = Op::Copy(*latch_val);
            }
        }
        let mut term = f.block(b).term.clone();
        for a in term.args_mut() {
            if let Some(n) = vmap.get(a) {
                *a = *n;
            }
        }
        // Retarget: in-loop -> copy; header backedge from copied latch ->
        // original header; exits stay (phi inputs patched below).
        for s in term.succs() {
            if s == l.header && b == latch {
                // keep pointing at the original header (closes iter 2 -> 1)
            } else if let Some(&ns) = bmap.get(&s) {
                term.retarget(s, ns);
            }
        }
        let freq = f.block(b).freq / 2;
        f.block_mut(nb).insts = insts;
        f.block_mut(nb).term = term;
        f.block_mut(nb).freq = freq;
        f.block_mut(nb).region = Some(region);
        f.block_mut(b).freq -= freq;
    }

    // Exit-target phis: inputs for the copied exiting blocks (the direct
    // merges; deeper escapes are handled by the SSA repair below).
    for t in &exit_targets {
        let mut additions: Vec<(usize, BlockId, VReg)> = Vec::new();
        for (idx, inst) in f.block(*t).insts.iter().enumerate() {
            if let Op::Phi(ins) = &inst.op {
                for (p, v) in ins {
                    if let Some(&np) = bmap.get(p) {
                        if f.succs(np).contains(t) {
                            additions.push((idx, np, *vmap.get(v).unwrap_or(v)));
                        }
                    }
                }
            }
        }
        for (idx, np, v) in additions {
            if let Op::Phi(ins) = &mut f.block_mut(*t).insts[idx].op {
                ins.push((np, v));
            }
        }
    }

    // Original latch now feeds iteration 2 instead of the header.
    f.block_mut(latch).term.retarget(l.header, bmap[&l.header]);
    // Header phis: the latch input now arrives from the copied latch.
    let latch2 = bmap[&latch];
    for inst in &mut f.block_mut(l.header).insts {
        if let Op::Phi(ins) = &mut inst.op {
            for (p, v) in ins.iter_mut() {
                if *p == latch {
                    *p = latch2;
                    *v = *vmap.get(v).unwrap_or(v);
                }
            }
        }
    }

    // Reaching-definition repair for every duplicated value: escapes through
    // the loop exits get their iteration-1/iteration-2 join phis.
    let rdt = hasp_ir::DomTree::compute(f);
    let rfronts = rdt.frontiers(f);
    let mut pairs: Vec<(VReg, VReg)> = vmap.into_iter().collect();
    pairs.sort();
    for (d, d2) in pairs {
        hasp_ir::ssa_repair::repair_with(f, &[d, d2], &rdt, &rfronts);
    }
    hasp_ir::ssa_repair::materialize_undef_inputs(f);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst, RegionInfo};
    use hasp_vm::bytecode::{BinOp, CmpOp, FieldId, MethodId};

    /// A store-only counted loop fully inside a region:
    /// for (i = 0; i < n; ++i) obj.f = i;
    fn enclosed_store_loop() -> Func {
        let mut f = Func::new("t", MethodId(0), 2);
        let (n, obj) = (VReg(0), VReg(1));
        let ret = f.add_block(Term::Return(None));
        let ehelp = f.add_block(Term::Jump(ret));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let abort = f.add_block(Term::Jump(ret));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 9,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body: head,
            abort,
        };
        for b in [head, body, ehelp] {
            f.block_mut(b).region = Some(r);
        }
        let i0 = f.vreg();
        let iphi = f.vreg();
        let i1 = f.vreg();
        let one = f.vreg();
        let begin = f.entry;
        f.block_mut(begin)
            .insts
            .push(Inst::with_dst(i0, Op::Const(0)));
        f.block_mut(head)
            .insts
            .push(Inst::with_dst(iphi, Op::Phi(vec![(begin, i0), (body, i1)])));
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: iphi,
            b: n,
            t: body,
            f: ehelp,
            t_count: 1000,
            f_count: 10,
        };
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(one, Op::Const(1)));
        f.block_mut(body).insts.push(Inst::effect(Op::StoreField {
            obj,
            field: FieldId(0),
            val: iphi,
        }));
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(i1, Op::Bin(BinOp::Add, iphi, one)));
        f.block_mut(ehelp)
            .insts
            .push(Inst::effect(Op::RegionEnd(r)));
        f.block_mut(head).freq = 1010;
        f.block_mut(body).freq = 1000;
        f
    }

    #[test]
    fn unrolls_store_loop_by_two() {
        let mut f = enclosed_store_loop();
        // RegionBegin terminators put phis at the header via formation in
        // real flows; here the begin block itself carries the init.
        let n = run(&mut f, &RegionConfig::default());
        assert_eq!(n, 1);
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        // Two stores now exist (one per unrolled iteration).
        let stores: usize = f
            .block_ids()
            .iter()
            .map(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .filter(|i| matches!(i.op, Op::StoreField { .. }))
                    .count()
            })
            .sum();
        assert_eq!(stores, 2);
    }

    #[test]
    fn loop_with_external_use_gets_repair_phi() {
        let mut f = enclosed_store_loop();
        // The exit helper consumes the loop variable directly: after
        // unrolling, the SSA repair must merge the iteration-1/iteration-2
        // definitions on the way out.
        let head = BlockId(3);
        let iphi = f.block(head).phis().next().and_then(|i| i.dst).unwrap();
        let ehelp = BlockId(2);
        f.block_mut(ehelp).insts.push(Inst::effect(Op::StoreField {
            obj: VReg(1),
            field: FieldId(1),
            val: iphi,
        }));
        assert_eq!(run(&mut f, &RegionConfig::default()), 1);
        verify(&f).unwrap_or_else(|e| {
            panic!(
                "{e}
{}",
                f.display()
            )
        });
        // The escaping use was rewritten (to a join phi or reaching def).
        let still_direct = f
            .block(ehelp)
            .insts
            .iter()
            .any(|i| !matches!(i.op, Op::Phi(_)) && i.op.args().contains(&iphi));
        assert!(
            !still_direct,
            "escaping use must go through the repair:
{}",
            f.display()
        );
    }

    #[test]
    fn loop_outside_region_skipped() {
        let mut f = enclosed_store_loop();
        for b in f.block_ids() {
            f.block_mut(b).region = None;
        }
        f.regions.clear();
        assert_eq!(run(&mut f, &RegionConfig::default()), 0);
    }
}
