//! GC safepoint elision for loops fully encapsulated in atomic regions
//! (paper §6.4): the per-iteration safepoint poll is replaced by a single
//! yield-flag load before the region — if a collection were requested, the
//! region aborts and the non-speculative code (which still polls) runs.

use hasp_ir::{DomTree, Func, Inst, LoopForest, Op};
use hasp_vm::bytecode::Intrinsic;

/// Elides safepoints in region-enclosed loops. Returns the number of
/// safepoint polls removed.
pub fn run(f: &mut Func) -> usize {
    if f.regions.is_empty() {
        return 0;
    }
    let dt = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dt);
    let mut removed = 0;
    let mut touched_regions = Vec::new();
    for l in forest.post_order() {
        // Fully inside one region?
        let Some(region) = f.block(l.header).region else {
            continue;
        };
        if !l.blocks.iter().all(|b| f.block(*b).region == Some(region)) {
            continue;
        }
        for &b in &l.blocks {
            let before = f.block(b).insts.len();
            f.block_mut(b)
                .insts
                .retain(|i| !matches!(i.op, Op::Safepoint));
            removed += before - f.block(b).insts.len();
        }
        if !touched_regions.contains(&region) {
            touched_regions.push(region);
        }
    }
    // One yield-flag load per affected region, in its begin block.
    for r in touched_regions {
        let begin = f.regions[r.0 as usize].begin;
        let phi_count = f.block(begin).phi_count();
        f.block_mut(begin).insts.insert(
            phi_count,
            Inst::effect(Op::Intrin {
                kind: Intrinsic::YieldFlag,
                args: vec![],
            }),
        );
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{BlockId, RegionInfo, Term, VReg};
    use hasp_vm::bytecode::{CmpOp, MethodId};

    /// A whole loop inside one region, with a safepoint in its body.
    fn enclosed_loop() -> Func {
        let mut f = Func::new("t", MethodId(0), 2);
        let (a, b) = (VReg(0), VReg(1));
        let ret = f.add_block(Term::Return(None));
        let exit_helper = f.add_block(Term::Jump(ret));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let abort = f.add_block(Term::Jump(ret));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 8,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body: head,
            abort,
        };
        for blk in [head, body, exit_helper] {
            f.block_mut(blk).region = Some(r);
        }
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a,
            b,
            t: body,
            f: exit_helper,
            t_count: 100,
            f_count: 10,
        };
        f.block_mut(body)
            .insts
            .push(hasp_ir::Inst::effect(Op::Safepoint));
        f.block_mut(exit_helper)
            .insts
            .push(hasp_ir::Inst::effect(Op::RegionEnd(r)));
        f
    }

    #[test]
    fn removes_safepoint_and_adds_yield_load() {
        let mut f = enclosed_loop();
        assert_eq!(run(&mut f), 1);
        hasp_ir::verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        let body = BlockId(3);
        assert!(f.block(body).insts.is_empty());
        let begin = f.entry;
        assert!(f.block(begin).insts.iter().any(|i| matches!(
            i.op,
            Op::Intrin {
                kind: Intrinsic::YieldFlag,
                ..
            }
        )));
    }

    #[test]
    fn loop_straddling_region_untouched() {
        let mut f = enclosed_loop();
        // Pull the body out of the region: loop no longer fully enclosed.
        f.block_mut(BlockId(3)).region = None;
        // (This is not a verifiable region layout, but the pass must still
        // leave the safepoint alone.)
        assert_eq!(run(&mut f), 0);
    }
}
