//! Superblock formation (Hwu et al.) — the *conventional* speculative
//! optimization baseline of the paper's Figures 2–3: tail duplication
//! removes side entrances from the hot path so block-local redundancy
//! elimination can work, at the cost of code replication (and, in a full
//! implementation, compensation code at hot-path exits).
//!
//! This implementation performs profile-driven tail duplication: for the
//! dominant path through a seed block, every path block with multiple
//! predecessors is duplicated so the hot path has no side entrances. It
//! deliberately stops short of speculative downward code motion (which would
//! need compensation blocks) — that is the complexity the paper's hardware
//! atomicity removes, and the Figure 2/3 bench quantifies the difference.

use std::collections::{HashMap, HashSet};

use hasp_ir::{BlockId, DomTree, Func, LoopForest, Op, VReg};

/// Forms superblocks along dominant paths. Returns the number of blocks
/// tail-duplicated.
pub fn run(f: &mut Func) -> usize {
    let dt = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dt);
    let preds = f.preds();
    let max_freq = f
        .block_ids()
        .iter()
        .map(|b| f.block(*b).freq)
        .max()
        .unwrap_or(0);
    if max_freq == 0 {
        return 0;
    }
    // Dominant path from the hottest block.
    let seed = f
        .block_ids()
        .into_iter()
        .max_by_key(|b| (f.block(*b).freq, u32::MAX - b.0))
        .expect("nonempty function");
    let path = hasp_core::trace::trace_dominant_path(f, &preds, &forest, seed, &HashSet::new());

    // Duplicate every path block (after the first) that has side entrances,
    // so the path becomes single-entry.
    let mut duplicated = 0;
    let mut prev = path[0];
    for &b in &path[1..] {
        let preds = f.preds();
        let n_preds = preds.get(&b).map_or(0, Vec::len);
        if n_preds <= 1 || !f.succs(prev).contains(&b) {
            prev = b;
            continue;
        }
        let copy = duplicate_block(f, b, prev);
        duplicated += 1;
        prev = copy;
    }
    duplicated
}

/// Copies `b` so that `from` (and only `from`) enters the copy; other
/// predecessors keep the original. Phis in the copy collapse to the
/// `from`-edge values. Every duplicated definition gets an SSA repair so
/// downstream uses see reaching-definition phis.
fn duplicate_block(f: &mut Func, b: BlockId, from: BlockId) -> BlockId {
    let copy = f.add_block(f.block(b).term.clone());
    let mut vmap: HashMap<VReg, VReg> = HashMap::new();
    let mut insts = f.block(b).insts.clone();
    for inst in &mut insts {
        if let Some(d) = inst.dst {
            let fresh = f.vreg();
            vmap.insert(d, fresh);
            inst.dst = Some(fresh);
        }
    }
    // Phis collapse to the value flowing along from->b; other operands are
    // either outside defs or earlier copies in this block.
    for inst in &mut insts {
        if let Op::Phi(ins) = &inst.op {
            let v = ins
                .iter()
                .find(|(p, _)| *p == from)
                .map(|(_, v)| *v)
                .expect("phi must have an input for the duplicating pred");
            inst.op = Op::Copy(*vmap.get(&v).unwrap_or(&v));
        } else {
            for a in inst.op.args_mut() {
                if let Some(n) = vmap.get(a) {
                    *a = *n;
                }
            }
        }
    }
    let mut term = f.block(copy).term.clone();
    for a in term.args_mut() {
        if let Some(n) = vmap.get(a) {
            *a = *n;
        }
    }
    let edge_freq = f.edge_count(from, b);
    f.block_mut(copy).insts = insts;
    f.block_mut(copy).term = term;
    f.block_mut(copy).freq = edge_freq;
    f.block_mut(copy).region = f.block(b).region;
    f.block_mut(b).freq = f.block(b).freq.saturating_sub(edge_freq);

    // Reroute from -> copy; drop from's phi inputs in b.
    f.block_mut(from).term.retarget(b, copy);
    for inst in &mut f.block_mut(b).insts {
        if let Op::Phi(ins) = &mut inst.op {
            ins.retain(|(p, _)| *p != from);
        }
    }
    // The copy's successors gain a predecessor: extend their phis with the
    // copy's values.
    let succs: Vec<BlockId> = {
        let mut s = f.succs(copy);
        s.dedup();
        s
    };
    for s in succs {
        let mut additions: Vec<(usize, VReg)> = Vec::new();
        for (idx, inst) in f.block(s).insts.iter().enumerate() {
            if let Op::Phi(ins) = &inst.op {
                let v = ins
                    .iter()
                    .find(|(p, _)| *p == b)
                    .map(|(_, v)| *v)
                    .expect("phi input for duplicated pred");
                additions.push((idx, *vmap.get(&v).unwrap_or(&v)));
            }
        }
        for (idx, v) in additions {
            if let Op::Phi(ins) = &mut f.block_mut(s).insts[idx].op {
                ins.push((copy, v));
            }
        }
    }
    // Reaching-definition repair for the duplicated values.
    let rdt = hasp_ir::DomTree::compute(f);
    let rfronts = rdt.frontiers(f);
    let mut pairs: Vec<(VReg, VReg)> = vmap.into_iter().collect();
    pairs.sort();
    for (d, d2) in pairs {
        hasp_ir::ssa_repair::repair_with(f, &[d, d2], &rdt, &rfronts);
    }
    hasp_ir::ssa_repair::materialize_undef_inputs(f);
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst, Term};
    use hasp_vm::bytecode::{BinOp, CmpOp, MethodId};

    /// Figure 2(b)-style: hot path a1 -> b1 -> a2 -> b2, with a cold edge
    /// c1 -> a2 (a side entrance into the hot path).
    fn hot_path_with_side_entrance() -> Func {
        let mut f = Func::new("t", MethodId(0), 2);
        let (x, y) = (VReg(0), VReg(1));
        let ret = f.add_block(Term::Return(None)); // b1
        let b2 = f.add_block(Term::Jump(ret)); // b2
        let a2 = f.add_block(Term::Jump(b2)); // b3
        let c1 = f.add_block(Term::Jump(a2)); // b4 (cold side entrance)
        let b1 = f.add_block(Term::Jump(a2)); // b5
        let a1 = f.add_block(Term::Branch {
            op: CmpOp::Eq,
            a: x,
            b: y,
            t: c1,
            f: b1,
            t_count: 2,
            f_count: 998,
        }); // b6
        f.block_mut(f.entry).term = Term::Jump(a1);
        let d = f.vreg();
        f.block_mut(a2)
            .insts
            .push(Inst::with_dst(d, Op::Bin(BinOp::Add, x, y)));
        for (blk, fr) in [
            (f.entry, 1000),
            (a1, 1000),
            (b1, 998),
            (c1, 2),
            (a2, 1000),
            (b2, 1000),
            (ret, 1000),
        ] {
            f.block_mut(blk).freq = fr;
        }
        f
    }

    #[test]
    fn removes_side_entrance_by_duplication() {
        let mut f = hot_path_with_side_entrance();
        let n = run(&mut f);
        assert!(n >= 1, "expected tail duplication");
        verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));
        // The original a2 keeps only the cold predecessor now.
        let preds = f.preds();
        let a2 = BlockId(3);
        assert_eq!(preds[&a2], vec![BlockId(4)], "{}", f.display());
    }
}
