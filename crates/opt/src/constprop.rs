//! Constant propagation, algebraic simplification, and branch folding.
//!
//! Inside atomic regions this pass "eliminates branches via constant
//! propagation previously inhibited by cold control flow" (paper §6): once
//! cold edges are asserts, values that were merge-dependent become constants.

use std::collections::HashMap;

use hasp_ir::{AssertKind, Func, Op, Term, VReg};
use hasp_vm::bytecode::BinOp;

/// Statistics from one constant-propagation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstPropStats {
    /// Instructions folded to constants or simplified to copies.
    pub folded: usize,
    /// Conditional branches/switches folded to jumps.
    pub branches: usize,
    /// Statically-false asserts removed.
    pub asserts: usize,
}

/// Runs constant propagation over `f`. Returns statistics.
pub fn run(f: &mut Func) -> ConstPropStats {
    let mut stats = ConstPropStats::default();
    let mut consts: HashMap<VReg, i64> = HashMap::new();

    // Collect constants (SSA: one def each, so a single scan suffices; copies
    // were collapsed by GVN).
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            if let (Some(d), Op::Const(c)) = (inst.dst, &inst.op) {
                consts.insert(d, *c);
            }
        }
    }

    // Fold instructions.
    for b in f.block_ids() {
        let n = f.block(b).insts.len();
        for i in 0..n {
            let inst = f.block(b).insts[i].clone();
            let new_op = match &inst.op {
                Op::Bin(op, x, y) => match (consts.get(x), consts.get(y)) {
                    (Some(&cx), Some(&cy)) => op.eval(cx, cy).map(Op::Const),
                    (_, Some(0))
                        if matches!(
                            op,
                            BinOp::Add
                                | BinOp::Sub
                                | BinOp::Or
                                | BinOp::Xor
                                | BinOp::Shl
                                | BinOp::Shr
                        ) =>
                    {
                        Some(Op::Copy(*x))
                    }
                    (Some(0), _) if matches!(op, BinOp::Add | BinOp::Or | BinOp::Xor) => {
                        Some(Op::Copy(*y))
                    }
                    (_, Some(1)) if matches!(op, BinOp::Mul | BinOp::Div) => Some(Op::Copy(*x)),
                    (Some(1), _) if matches!(op, BinOp::Mul) => Some(Op::Copy(*y)),
                    (Some(0), _) if matches!(op, BinOp::Mul | BinOp::And) => Some(Op::Const(0)),
                    (_, Some(0)) if matches!(op, BinOp::Mul | BinOp::And) => Some(Op::Const(0)),
                    _ => None,
                },
                Op::Cmp(op, x, y) => match (consts.get(x), consts.get(y)) {
                    (Some(&cx), Some(&cy)) => Some(Op::Const(i64::from(op.eval_int(cx, cy)))),
                    _ if x == y => Some(Op::Const(i64::from(op.eval_int(0, 0)))),
                    _ => None,
                },
                // Div checks against nonzero constants are removed in the
                // retain pass below.
                Op::Assert {
                    kind: AssertKind::Cmp { op, a, b: y },
                    ..
                } => {
                    match (consts.get(a), consts.get(y)) {
                        (Some(&ca), Some(&cb)) if !op.eval_int(ca, cb) => {
                            stats.asserts += 1;
                            f.block_mut(b).insts[i].op = Op::Marker(u32::MAX); // tombstone
                            None
                        }
                        _ => None,
                    }
                }
                Op::Assert {
                    kind: AssertKind::IntNe { sel, expected },
                    ..
                } => match consts.get(sel) {
                    Some(&c) if c == *expected => {
                        stats.asserts += 1;
                        f.block_mut(b).insts[i].op = Op::Marker(u32::MAX);
                        None
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(op) = new_op {
                if let Op::Const(c) = &op {
                    if let Some(d) = inst.dst {
                        consts.insert(d, *c);
                    }
                }
                f.block_mut(b).insts[i].op = op;
                stats.folded += 1;
            }
        }
        // Remove statically-satisfied div checks and assert tombstones.
        let before = f.block(b).insts.len();
        f.block_mut(b).insts.retain(|i| match &i.op {
            Op::Marker(u32::MAX) => false,
            Op::DivCheck(v) => !matches!(consts.get(v), Some(&c) if c != 0),
            _ => true,
        });
        stats.folded += before - f.block(b).insts.len();
    }

    // Fold conditional terminators with known outcomes.
    for b in f.block_ids() {
        let term = f.block(b).term.clone();
        match term {
            Term::Branch {
                op,
                a,
                b: y,
                t,
                f: fb,
                ..
            } => {
                let known = match (consts.get(&a), consts.get(&y)) {
                    (Some(&ca), Some(&cb)) => Some(op.eval_int(ca, cb)),
                    _ if a == y => Some(op.eval_int(0, 0)),
                    _ => None,
                };
                if let Some(taken) = known {
                    let (keep, drop) = if taken { (t, fb) } else { (fb, t) };
                    f.block_mut(b).term = Term::Jump(keep);
                    stats.branches += 1;
                    if drop != keep {
                        prune_phi_inputs(f, b, drop);
                    }
                }
            }
            Term::Switch {
                sel,
                ref targets,
                default,
            } => {
                if let Some(&c) = consts.get(&sel) {
                    let chosen = if c >= 0 && (c as usize) < targets.len() {
                        targets[c as usize].0
                    } else {
                        default.0
                    };
                    let drops: Vec<_> = targets
                        .iter()
                        .map(|(t, _)| *t)
                        .chain([default.0])
                        .filter(|x| *x != chosen)
                        .collect();
                    f.block_mut(b).term = Term::Jump(chosen);
                    stats.branches += 1;
                    for d in drops {
                        prune_phi_inputs(f, b, d);
                    }
                }
            }
            _ => {}
        }
    }
    if stats.branches > 0 {
        f.remove_unreachable();
    }
    stats
}

/// Removes `from`'s phi inputs in `to` after the edge `from -> to` was
/// deleted (unless another edge from `from` to `to` survives).
fn prune_phi_inputs(f: &mut Func, from: hasp_ir::BlockId, to: hasp_ir::BlockId) {
    if f.succs(from).contains(&to) {
        return;
    }
    for inst in &mut f.block_mut(to).insts {
        if let Op::Phi(ins) = &mut inst.op {
            ins.retain(|(p, _)| *p != from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst};
    use hasp_vm::bytecode::{CmpOp, MethodId};

    #[test]
    fn folds_constants_and_identities() {
        let mut f = Func::new("t", MethodId(0), 1);
        let x = VReg(0);
        let c2 = f.vreg();
        let c3 = f.vreg();
        let s = f.vreg();
        let z = f.vreg();
        let id = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::with_dst(c2, Op::Const(2)));
        e.insts.push(Inst::with_dst(c3, Op::Const(3)));
        e.insts.push(Inst::with_dst(s, Op::Bin(BinOp::Add, c2, c3)));
        e.insts.push(Inst::with_dst(z, Op::Const(0)));
        e.insts.push(Inst::with_dst(id, Op::Bin(BinOp::Add, x, z)));
        e.term = Term::Return(Some(id));
        let stats = run(&mut f);
        verify(&f).unwrap();
        assert!(stats.folded >= 2);
        assert!(matches!(f.block(f.entry).insts[2].op, Op::Const(5)));
        assert!(matches!(f.block(f.entry).insts[4].op, Op::Copy(v) if v == x));
    }

    #[test]
    fn folds_constant_branch_and_prunes_phi() {
        let mut f = Func::new("t", MethodId(0), 0);
        let join = f.add_block(Term::Return(None));
        let t = f.add_block(Term::Jump(join));
        let e = f.add_block(Term::Jump(join));
        let c1 = f.vreg();
        let c2 = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(c1, Op::Const(1)));
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(c2, Op::Const(2)));
        f.block_mut(f.entry).term = Term::Branch {
            op: CmpOp::Lt,
            a: c1,
            b: c2,
            t,
            f: e,
            t_count: 0,
            f_count: 0,
        };
        let va = f.vreg();
        let vb = f.vreg();
        let ph = f.vreg();
        f.block_mut(t).insts.push(Inst::with_dst(va, Op::Const(10)));
        f.block_mut(e).insts.push(Inst::with_dst(vb, Op::Const(20)));
        f.block_mut(join)
            .insts
            .push(Inst::with_dst(ph, Op::Phi(vec![(t, va), (e, vb)])));
        f.block_mut(join).term = Term::Return(Some(ph));

        let stats = run(&mut f);
        verify(&f).unwrap_or_else(|err| panic!("{err}\n{}", f.display()));
        assert_eq!(stats.branches, 1);
        assert!(f.block(e).dead, "untaken arm removed");
        match &f.block(join).insts[0].op {
            Op::Phi(ins) => assert_eq!(ins.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn removes_false_asserts() {
        use hasp_ir::{RegionId, RegionInfo};
        let mut f = Func::new("t", MethodId(0), 0);
        let exit = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(exit));
        let abort = f.add_block(Term::Jump(exit));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 1,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        let c1 = f.vreg();
        let c2 = f.vreg();
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(c1, Op::Const(1)));
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(c2, Op::Const(2)));
        let id = f.new_assert(RegionId(0), "x");
        f.block_mut(body).insts.push(Inst::effect(Op::Assert {
            kind: AssertKind::Cmp {
                op: CmpOp::Gt,
                a: c1,
                b: c2,
            },
            id,
        }));
        f.block_mut(body).insts.push(Inst::effect(Op::RegionEnd(r)));
        let stats = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(stats.asserts, 1);
    }

    #[test]
    fn same_operand_cmp_folds() {
        let mut f = Func::new("t", MethodId(0), 1);
        let x = VReg(0);
        let d = f.vreg();
        f.block_mut(f.entry)
            .insts
            .push(Inst::with_dst(d, Op::Cmp(CmpOp::Eq, x, x)));
        f.block_mut(f.entry).term = Term::Return(Some(d));
        run(&mut f);
        assert!(matches!(f.block(f.entry).insts[0].op, Op::Const(1)));
    }
}
