//! Dead-code elimination (effect-aware, SSA mark/sweep).
//!
//! Per the paper (§4), only DCE "needs to be informed that asserts are
//! essential and should not be removed" — [`hasp_ir::Op::has_side_effect`]
//! encodes that, along with checks, stores, calls, monitors, allocation,
//! markers, safepoints, and region bookkeeping.

use std::collections::HashSet;

use hasp_ir::{Func, VReg};

/// Removes pure instructions whose results are never used. Returns the
/// number of instructions deleted.
pub fn run(f: &mut Func) -> usize {
    let blocks = f.block_ids();
    // Mark phase: everything feeding an effectful op or a terminator.
    let mut live: HashSet<VReg> = HashSet::new();
    let mut work: Vec<VReg> = Vec::new();
    for &b in &blocks {
        for inst in &f.block(b).insts {
            if inst.op.has_side_effect() {
                for a in inst.op.args() {
                    if live.insert(a) {
                        work.push(a);
                    }
                }
            }
        }
        for a in f.block(b).term.args() {
            if live.insert(a) {
                work.push(a);
            }
        }
    }
    // Def lookup.
    let mut def_of: std::collections::HashMap<VReg, (hasp_ir::BlockId, usize)> =
        std::collections::HashMap::new();
    for &b in &blocks {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if let Some(d) = inst.dst {
                def_of.insert(d, (b, i));
            }
        }
    }
    while let Some(v) = work.pop() {
        if let Some(&(b, i)) = def_of.get(&v) {
            for a in f.block(b).insts[i].op.args() {
                if live.insert(a) {
                    work.push(a);
                }
            }
        }
    }
    // Sweep.
    let mut removed = 0;
    for &b in &blocks {
        let before = f.block(b).insts.len();
        f.block_mut(b)
            .insts
            .retain(|inst| inst.op.has_side_effect() || inst.dst.is_none_or(|d| live.contains(&d)));
        removed += before - f.block(b).insts.len();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst, Op, Term};
    use hasp_vm::bytecode::{BinOp, FieldId, MethodId};

    #[test]
    fn removes_unused_pure_chain() {
        let mut f = Func::new("t", MethodId(0), 1);
        let x = VReg(0);
        let a = f.vreg();
        let b = f.vreg();
        let used = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::with_dst(a, Op::Const(5)));
        e.insts.push(Inst::with_dst(b, Op::Bin(BinOp::Add, a, a))); // dead chain
        e.insts
            .push(Inst::with_dst(used, Op::Bin(BinOp::Add, x, x)));
        e.term = Term::Return(Some(used));
        let _ = b;
        let n = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(n, 2);
        assert_eq!(f.block(f.entry).insts.len(), 1);
    }

    #[test]
    fn keeps_effects_and_their_inputs() {
        let mut f = Func::new("t", MethodId(0), 2);
        let (o, v) = (VReg(0), VReg(1));
        let unused_load = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::with_dst(
            unused_load,
            Op::LoadField {
                obj: o,
                field: FieldId(0),
            },
        ));
        e.insts.push(Inst::effect(Op::StoreField {
            obj: o,
            field: FieldId(0),
            val: v,
        }));
        e.insts.push(Inst::effect(Op::NullCheck(o)));
        e.term = Term::Return(None);
        let n = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(n, 1, "only the unused load dies");
        assert_eq!(f.block(f.entry).insts.len(), 2);
    }

    #[test]
    fn dead_phi_cycle_removed() {
        // A loop-carried phi used only by itself (and an add feeding it back)
        // must die: phi -> add -> phi with no external use.
        use hasp_vm::bytecode::CmpOp;
        let mut f = Func::new("t", MethodId(0), 1);
        let p = VReg(0);
        let exit = f.add_block(Term::Return(None));
        let head = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(head));
        let phi = f.vreg();
        let nxt = f.vreg();
        let entry = f.entry;
        f.block_mut(entry).term = Term::Jump(head);
        f.block_mut(head)
            .insts
            .push(Inst::with_dst(phi, Op::Phi(vec![(entry, p), (body, nxt)])));
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: p,
            b: p,
            t: body,
            f: exit,
            t_count: 1,
            f_count: 1,
        };
        f.block_mut(body)
            .insts
            .push(Inst::with_dst(nxt, Op::Bin(BinOp::Add, phi, p)));
        let n = run(&mut f);
        verify(&f).unwrap();
        assert_eq!(n, 2, "phi and add both dead");
    }
}
