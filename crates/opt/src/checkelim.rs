//! Post-dominance bounds-check elimination inside atomic regions — the
//! paper's §7 future-work optimization, implemented here.
//!
//! Ordinarily a check `A` is removable only when a subsuming check dominates
//! it. Inside an atomic region it also becomes safe to remove a check `A`
//! that is *post-dominated* by a subsuming check `B`: if `B` fails, the
//! region aborts and the non-speculative code re-executes both checks and
//! reports the failing one precisely. The paper's example removes
//! `check_bounds(c_length, i)` because `check_bounds(c_length, i+1)`
//! post-dominates it within the region.

use std::collections::HashMap;

use hasp_ir::{BlockId, Func, Op, PostDomTree, VReg};
use hasp_vm::bytecode::BinOp;

/// Removes region-internal bounds checks post-dominated by subsuming ones.
/// Returns the number of checks removed.
pub fn run(f: &mut Func) -> usize {
    if f.regions.is_empty() {
        return 0;
    }
    let pdt = PostDomTree::compute(f);

    // Def table for recognizing `idx2 = idx + c`.
    let mut defs: HashMap<VReg, Op> = HashMap::new();
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            if let Some(d) = inst.dst {
                defs.insert(d, inst.op.clone());
            }
        }
    }
    let const_of = |v: VReg| -> Option<i64> {
        match defs.get(&v) {
            Some(Op::Const(c)) => Some(*c),
            _ => None,
        }
    };
    // True if checking (len, idx2) subsumes checking (len, idx1):
    // idx2 = idx1 + c with c >= 0 (same upper-bound direction; the paper's
    // example pattern).
    let subsumes = |len2: VReg, idx2: VReg, len1: VReg, idx1: VReg| -> bool {
        if len1 != len2 {
            return false;
        }
        if idx1 == idx2 {
            return true;
        }
        match defs.get(&idx2) {
            Some(Op::Bin(BinOp::Add, a, b)) => {
                (*a == idx1 && const_of(*b).is_some_and(|c| c >= 0))
                    || (*b == idx1 && const_of(*a).is_some_and(|c| c >= 0))
            }
            _ => false,
        }
    };

    // Collect bounds checks per region.
    type Site = (BlockId, usize, VReg, VReg);
    let mut by_region: HashMap<u32, Vec<Site>> = HashMap::new();
    for b in f.block_ids() {
        let Some(r) = f.block(b).region else { continue };
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if let Op::BoundsCheck { len, idx } = inst.op {
                by_region.entry(r.0).or_default().push((b, i, len, idx));
            }
        }
    }

    let mut kill: Vec<(BlockId, usize)> = Vec::new();
    for sites in by_region.values() {
        for &(ab, ai, alen, aidx) in sites {
            let removable = sites.iter().any(|&(bb, bi, blen, bidx)| {
                if (ab, ai) == (bb, bi) || !subsumes(blen, bidx, alen, aidx) {
                    return false;
                }
                if ab == bb {
                    bi > ai
                } else {
                    pdt.post_dominates(bb, ab)
                }
            });
            if removable {
                kill.push((ab, ai));
            }
        }
    }
    kill.sort_by(|a, b| b.cmp(a));
    kill.dedup();
    let n = kill.len();
    for (b, i) in kill {
        f.block_mut(b).insts.remove(i);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{verify, Inst, RegionInfo, Term};
    use hasp_vm::bytecode::MethodId;

    /// A region containing check(len, i) followed by check(len, i+1) — the
    /// §7 example.
    fn region_with_checks() -> (Func, BlockId) {
        let mut f = Func::new("t", MethodId(0), 2);
        let (len, i) = (VReg(0), VReg(1));
        let ret = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(ret));
        let abort = f.add_block(Term::Jump(ret));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 8,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        let one = f.vreg();
        let ip1 = f.vreg();
        let blk = f.block_mut(body);
        blk.insts
            .push(Inst::effect(Op::BoundsCheck { len, idx: i }));
        blk.insts.push(Inst::with_dst(one, Op::Const(1)));
        blk.insts
            .push(Inst::with_dst(ip1, Op::Bin(BinOp::Add, i, one)));
        blk.insts
            .push(Inst::effect(Op::BoundsCheck { len, idx: ip1 }));
        blk.insts.push(Inst::effect(Op::RegionEnd(r)));
        (f, body)
    }

    #[test]
    fn removes_postdominated_weaker_check() {
        let (mut f, body) = region_with_checks();
        assert_eq!(run(&mut f), 1);
        verify(&f).unwrap();
        let checks = f
            .block(body)
            .insts
            .iter()
            .filter(|i| matches!(i.op, Op::BoundsCheck { .. }))
            .count();
        assert_eq!(checks, 1, "only the stronger i+1 check remains");
        // The surviving check is the i+1 one.
        let survivor = f
            .block(body)
            .insts
            .iter()
            .find_map(|ins| match ins.op {
                Op::BoundsCheck { idx, .. } => Some(idx),
                _ => None,
            })
            .unwrap();
        assert_ne!(survivor, VReg(1));
    }

    #[test]
    fn outside_regions_untouched() {
        let mut f = Func::new("t", MethodId(0), 2);
        let (len, i) = (VReg(0), VReg(1));
        let one = f.vreg();
        let ip1 = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::effect(Op::BoundsCheck { len, idx: i }));
        e.insts.push(Inst::with_dst(one, Op::Const(1)));
        e.insts
            .push(Inst::with_dst(ip1, Op::Bin(BinOp::Add, i, one)));
        e.insts
            .push(Inst::effect(Op::BoundsCheck { len, idx: ip1 }));
        e.term = Term::Return(None);
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn negative_offset_not_subsuming() {
        let (mut f, body) = region_with_checks();
        // Change the constant to -1: check(len, i-1) does not subsume.
        for inst in &mut f.block_mut(body).insts {
            if let Op::Const(c) = &mut inst.op {
                *c = -1;
            }
        }
        assert_eq!(run(&mut f), 0);
    }
}
