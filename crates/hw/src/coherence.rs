//! # Sharded coherence directory — organic conflicts from real threads
//!
//! The multi-core substrate (DESIGN §17): N [`Machine`](crate::Machine)s on
//! real OS threads share one [`Directory`], a MESI-ish per-line owner/sharer
//! map layered *over* each core's private per-line speculative R/W bits.
//! Every data access a core performs publishes its read/write intent; a
//! remote write to a line a core has speculatively read (or a remote read
//! of a line it has speculatively written) delivers an asynchronous
//! conflict message to that core's mailbox, which the core drains at its
//! next memory access and converts into a `Conflict` (or, for the fallback
//! lock line, `Sle`) abort through the exact same mid-block unapply path an
//! overflow takes. Injected conflicts (`FaultPlan`) remain available as an
//! ablation; this module makes the organic ones.
//!
//! ## Sharding
//!
//! Line states live in cache-line-padded stripes selected by a
//! multiplicative hash of the line index, so directory traffic from
//! different lines takes different locks and scales with core count
//! instead of serializing on one mutex. Critical sections are a single
//! hash-map operation plus at most `MAX_CORES` mailbox pushes. The only
//! lock order is stripe → mailbox; no path takes a stripe lock while
//! holding a mailbox lock, so the directory cannot deadlock.
//!
//! ## Address spaces
//!
//! Keys are `(asid, line)` packed into one word: cores attached with
//! different address-space ids (different tenants in the `mt` harness)
//! never interact — their heaps are logically distinct even though the
//! simulated addresses collide numerically. Cores sharing an asid model
//! workers serving the same tenant over shared state: that is where
//! contention, SLE lock collisions, and governor-ladder climbs emerge.
//!
//! ## Conservation
//!
//! Every *signaled* message (one whose victim held a directory-registered
//! speculative claim on the line when the remote op was published) is
//! eventually classified by the victim at drain time as either a conflict
//! abort (`sig_aborts` — the local current-epoch spec bit was still live)
//! or a benign race with a completed region (`sig_raced` — the victim
//! committed or aborted between the signal and the drain, so the local bit
//! was already flash-cleared; the remote op serialized after that commit).
//! After all mailboxes drain, `Directory::signaled()` equals the sum of
//! both buckets across cores — the stress tests and the `mt` harness gate
//! on this identity.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::cache::CacheSim;
use crate::fxhash::FxHashMap;
use crate::machine::FALLBACK_LOCK_ADDR;
use crate::stats::AbortReason;

/// A core's identity within one [`Directory`] (index into mailboxes and
/// the per-line sharer bitmasks).
pub type CoreId = u8;

/// Maximum cores per directory — sharer sets are one `u64` bitmask.
pub const MAX_CORES: usize = 64;

/// Bits of the packed key that hold the line index; the asid sits above.
const LINE_BITS: u32 = 48;
const LINE_MASK: u64 = (1 << LINE_BITS) - 1;

/// Directory-visible state of one (asid, line): at most one exclusive
/// owner XOR any number of sharers, plus which cores currently hold a
/// *speculative* (in-region) claim registered with the directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineState {
    /// Exclusive writer, if any (always also set in `sharers`).
    pub owner: Option<CoreId>,
    /// Bitmask of cores holding the line (shared or exclusive).
    pub sharers: u64,
    /// Bitmask of cores with a live speculative-read registration.
    pub spec_readers: u64,
    /// Core with a live speculative-write registration, if any.
    pub spec_writer: Option<CoreId>,
}

impl LineState {
    fn is_empty(&self) -> bool {
        self.owner.is_none()
            && self.sharers == 0
            && self.spec_readers == 0
            && self.spec_writer.is_none()
    }
}

/// One coherence message queued to a core's mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohMsg {
    /// Packed (asid, line) key the remote op touched.
    pub key: u64,
    /// `true` = remote write (invalidate), `false` = remote read (downgrade).
    pub write: bool,
    /// The victim held a directory-registered speculative claim that the
    /// remote op collides with, sampled atomically under the stripe lock.
    /// Every signaled message must be accounted as an abort or a commit
    /// race (see the module docs on conservation).
    pub signal: bool,
}

impl CohMsg {
    /// The line index (asid stripped) — what the victim's cache keys on.
    pub fn line(&self) -> u64 {
        self.key & LINE_MASK
    }
}

/// One padded directory shard: a map slice guarded by its own mutex.
/// The alignment keeps hot stripes on distinct cache lines so uncontended
/// cores do not false-share lock words.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Stripe {
    map: Mutex<FxHashMap<u64, LineState>>,
}

/// One core's incoming message queue. `pending` is the lock-free fast
/// path: a core's access hook reads one relaxed atomic and only takes the
/// queue lock when a message is actually waiting.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Mailbox {
    pending: AtomicU64,
    msgs: Mutex<VecDeque<CohMsg>>,
}

/// The sharded line directory shared (via `Arc`) by every core.
#[derive(Debug)]
pub struct Directory {
    stripes: Box<[Stripe]>,
    /// `stripes.len() - 1` (stripe count is a power of two).
    mask: u64,
    mailboxes: Box<[Mailbox]>,
    /// Messages sent with `signal = true` (conservation numerator).
    signaled: AtomicU64,
    /// Invalidation messages sent (remote writes).
    invalidations: AtomicU64,
    /// Downgrade messages sent (remote reads of an owned line).
    downgrades: AtomicU64,
    /// Directory transactions taken (post-dedup publishes).
    publishes: AtomicU64,
}

/// Default stripe count: enough that 8 hot cores rarely collide on a
/// stripe lock even with skewed line popularity.
const DEFAULT_STRIPES: usize = 64;

impl Directory {
    /// A directory for up to `cores` cores with the default stripe count.
    pub fn new(cores: usize) -> Arc<Directory> {
        Directory::with_stripes(cores, DEFAULT_STRIPES)
    }

    /// A directory with an explicit stripe count (rounded up to a power of
    /// two; the proptests use 1 stripe to force every line onto one lock).
    pub fn with_stripes(cores: usize, stripes: usize) -> Arc<Directory> {
        assert!((1..=MAX_CORES).contains(&cores), "1..={MAX_CORES} cores");
        let n = stripes.max(1).next_power_of_two();
        Arc::new(Directory {
            stripes: (0..n).map(|_| Stripe::default()).collect(),
            mask: n as u64 - 1,
            mailboxes: (0..cores).map(|_| Mailbox::default()).collect(),
            signaled: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            downgrades: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        })
    }

    /// Number of cores (mailboxes) this directory serves.
    pub fn cores(&self) -> usize {
        self.mailboxes.len()
    }

    fn stripe(&self, key: u64) -> &Stripe {
        // Multiplicative mix (same constant family as the fxhash module):
        // adjacent lines land on different stripes, and the asid in the
        // high bits perturbs the whole sequence per tenant.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.stripes[(h >> 40 & self.mask) as usize]
    }

    fn post(&self, to: CoreId, msg: CohMsg) {
        if msg.signal {
            self.signaled.fetch_add(1, Ordering::Relaxed);
        }
        if msg.write {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.downgrades.fetch_add(1, Ordering::Relaxed);
        }
        let mb = &self.mailboxes[to as usize];
        mb.msgs.lock().expect("mailbox").push_back(msg);
        // Release-publish after the push so a victim that observes
        // `pending > 0` always finds the message under the queue lock.
        mb.pending.fetch_add(1, Ordering::Release);
    }

    /// Publishes core `me`'s write intent for `key`: every other holder is
    /// invalidated (signaled iff it held a colliding speculative claim),
    /// `me` becomes exclusive owner, and — when `spec` — `me`'s
    /// speculative-write registration is recorded.
    pub fn publish_write(&self, me: CoreId, key: u64, spec: bool) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        let my_bit = 1u64 << me;
        let mut map = self.stripe(key).map.lock().expect("stripe");
        let st = map.entry(key).or_default();
        let victims = st.sharers & !my_bit;
        let signaled_spec = st.spec_readers & !my_bit;
        let spec_writer = st.spec_writer.filter(|&w| w != me);
        st.owner = Some(me);
        st.sharers = my_bit;
        st.spec_readers &= my_bit;
        if st.spec_writer != Some(me) {
            st.spec_writer = None;
        }
        if spec {
            st.spec_writer = Some(me);
        }
        // Post while still holding the stripe lock (stripe → mailbox is the
        // one sanctioned lock order). This makes signal delivery atomic with
        // the spec-bit sampling above: a victim's `release_spec` — its exit
        // visa — takes this same stripe lock, so every signaled message is
        // enqueued strictly before the release that would let the victim
        // drain and detach. Posting after dropping the lock opens a window
        // where the victim quiesces and exits with the signal still in
        // flight, breaking the `signaled == sig_aborts + sig_raced`
        // conservation identity.
        for v in 0..self.mailboxes.len() as u8 {
            let bit = 1u64 << v;
            if victims & bit != 0 {
                let signal = signaled_spec & bit != 0 || spec_writer == Some(v);
                self.post(
                    v,
                    CohMsg {
                        key,
                        write: true,
                        signal,
                    },
                );
            }
        }
        drop(map);
    }

    /// Publishes core `me`'s read intent for `key`: a remote exclusive
    /// owner is downgraded to sharer (signaled iff it held a speculative
    /// *write* registration — speculative readers coexist), `me` joins the
    /// sharers, and — when `spec` — `me`'s speculative-read registration
    /// is recorded.
    pub fn publish_read(&self, me: CoreId, key: u64, spec: bool) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        let my_bit = 1u64 << me;
        let mut map = self.stripe(key).map.lock().expect("stripe");
        let st = map.entry(key).or_default();
        let victim = st.owner.filter(|&o| o != me);
        let signal = victim.is_some() && st.spec_writer == victim;
        if victim.is_some() {
            // The old owner keeps a shared copy; its spec-write claim (if
            // any) is consumed by the signal.
            st.owner = None;
            if signal {
                st.spec_writer = None;
            }
        }
        st.sharers |= my_bit;
        if spec {
            st.spec_readers |= my_bit;
        }
        // Under the stripe lock for the same conservation reason as
        // `publish_write`: the downgrade signal must be enqueued before the
        // victim's `release_spec` can observe its bits cleared and let the
        // victim quiesce.
        if let Some(v) = victim {
            self.post(
                v,
                CohMsg {
                    key,
                    write: false,
                    signal,
                },
            );
        }
        drop(map);
    }

    /// Withdraws core `me`'s speculative registrations on `key` — called
    /// for every line in a core's spec set when its region commits or
    /// aborts, strictly *after* the local cache's epoch bump (so a remote
    /// signal sampled before the release always finds a raced-with-commit
    /// victim, never a live one it fails to abort).
    pub fn release_spec(&self, me: CoreId, key: u64) {
        let my_bit = 1u64 << me;
        let mut map = self.stripe(key).map.lock().expect("stripe");
        if let Some(st) = map.get_mut(&key) {
            st.spec_readers &= !my_bit;
            if st.spec_writer == Some(me) {
                st.spec_writer = None;
            }
            if st.is_empty() {
                map.remove(&key);
            }
        }
    }

    /// `true` if core `me` has undelivered messages (one relaxed load —
    /// the per-access fast path).
    pub fn pending(&self, me: CoreId) -> bool {
        self.mailboxes[me as usize].pending.load(Ordering::Acquire) != 0
    }

    /// Pops the oldest undelivered message for core `me`, if any.
    pub fn pop_msg(&self, me: CoreId) -> Option<CohMsg> {
        let mb = &self.mailboxes[me as usize];
        let msg = mb.msgs.lock().expect("mailbox").pop_front();
        if msg.is_some() {
            mb.pending.fetch_sub(1, Ordering::Release);
        }
        msg
    }

    /// Snapshot of one line's directory state (tests / inspection).
    pub fn line_state(&self, key: u64) -> LineState {
        self.stripe(key)
            .map
            .lock()
            .expect("stripe")
            .get(&key)
            .copied()
            .unwrap_or_default()
    }

    /// Total messages sent with a live speculative collision (conservation
    /// numerator; see the module docs).
    pub fn signaled(&self) -> u64 {
        self.signaled.load(Ordering::Relaxed)
    }

    /// Total invalidation messages sent (remote writes).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Total downgrade messages sent (remote reads of owned lines).
    pub fn downgrades(&self) -> u64 {
        self.downgrades.load(Ordering::Relaxed)
    }

    /// Total directory transactions (post-dedup publishes).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Any key on which a core *other than* `me` currently holds a
    /// speculative registration, and whether that claim is a write. The
    /// antagonist in the 2-core stress test uses this to aim conflicting
    /// traffic at whatever the victim is speculating on right now.
    pub fn any_remote_spec_key(&self, me: CoreId) -> Option<(u64, bool)> {
        let my_bit = 1u64 << me;
        for s in self.stripes.iter() {
            let map = s.map.lock().expect("stripe");
            for (&key, st) in map.iter() {
                if st.spec_readers & !my_bit != 0 {
                    return Some((key, false));
                }
                if st.spec_writer.is_some() && st.spec_writer != Some(me) {
                    return Some((key, true));
                }
            }
        }
        None
    }
}

/// What a core currently believes it holds (local dedup of published
/// intent; kept coherent by applying incoming messages to it at drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Held {
    Shared,
    Owned,
}

/// Per-core coherence-traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Directory transactions this core published (post-dedup).
    pub published: u64,
    /// Messages this core drained from its mailbox.
    pub drained: u64,
    /// Signaled messages that found a live local speculative bit and
    /// aborted the region (conservation bucket 1).
    pub sig_aborts: u64,
    /// Signaled messages whose local speculative bit was already
    /// flash-cleared by a commit or abort (conservation bucket 2).
    pub sig_raced: u64,
    /// Unsignaled messages (plain capacity/sharing traffic).
    pub benign: u64,
}

/// One core's attachment to a shared [`Directory`]: identity, address
/// space, local dedup state, and the speculative registration set that
/// must be withdrawn at region commit/abort.
#[derive(Debug)]
pub struct CoreLink {
    dir: Arc<Directory>,
    core: CoreId,
    /// Asid tag pre-shifted into the key's high bits.
    tag: u64,
    /// Lines this core believes it holds (see [`Held`]); publishing is
    /// skipped when the directory already knows everything this access
    /// would tell it, which makes repeat accesses to resident lines a
    /// single local map probe.
    held: FxHashMap<u64, Held>,
    /// Speculative registrations live in the directory: key → bitmask of
    /// `SPEC_R | SPEC_W`.
    spec: FxHashMap<u64, u8>,
    /// Insertion-ordered spec keys for release.
    spec_keys: Vec<u64>,
    /// The abort reason a conflicting drain produced, parked until the
    /// machine's overflow-style bail path consumes it (the access hook
    /// reports failure as a `bool`, exactly like a region overflow, and
    /// the abort site asks here which reason to record).
    pending_abort: Option<AbortReason>,
    /// Traffic counters.
    pub stats: LinkStats,
}

const SPEC_R: u8 = 1;
const SPEC_W: u8 = 2;

impl CoreLink {
    /// Attaches core `core` (address space `asid`) to `dir`.
    pub fn new(dir: Arc<Directory>, core: CoreId, asid: u16) -> CoreLink {
        assert!((core as usize) < dir.cores(), "core id out of range");
        CoreLink {
            dir,
            core,
            tag: u64::from(asid) << LINE_BITS,
            held: FxHashMap::default(),
            spec: FxHashMap::default(),
            spec_keys: Vec::new(),
            pending_abort: None,
            stats: LinkStats::default(),
        }
    }

    /// Takes the abort reason a conflicting [`CoreLink::drain`] parked
    /// (`None` when the last bail was a plain overflow).
    pub fn take_abort(&mut self) -> Option<AbortReason> {
        self.pending_abort.take()
    }

    /// This core's id.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The shared directory.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.dir
    }

    /// One relaxed atomic load: does this core have undelivered messages?
    #[inline]
    pub fn pending(&self) -> bool {
        self.dir.pending(self.core)
    }

    /// Publishes intent for a local access to `line` (`write`, and whether
    /// the access is speculative, i.e. inside a region). Deduped: the
    /// directory is only consulted when this access adds information —
    /// first touch, shared→owned upgrade, or a new speculative claim.
    #[inline]
    pub fn publish(&mut self, line: u64, write: bool, spec: bool) {
        let key = self.tag | line;
        let spec_bit = if write { SPEC_W } else { SPEC_R };
        let spec_new = spec && self.spec.get(&key).is_none_or(|b| b & spec_bit == 0);
        let held = self.held.get(&key).copied();
        let upgrade = write && held != Some(Held::Owned);
        if held.is_some() && !upgrade && !spec_new {
            return;
        }
        self.stats.published += 1;
        if write {
            self.dir.publish_write(self.core, key, spec);
            self.held.insert(key, Held::Owned);
        } else {
            self.dir.publish_read(self.core, key, spec);
            self.held.entry(key).or_insert(Held::Shared);
        }
        if spec {
            let bits = self.spec.entry(key).or_insert_with(|| {
                self.spec_keys.push(key);
                0
            });
            *bits |= spec_bit;
        }
    }

    /// Drains the mailbox into `cache`, applying each remote op to the
    /// local cache model. Stops at the first message that collides with a
    /// live current-epoch speculative bit and returns the abort reason the
    /// caller must raise (`Sle` for the fallback-lock line, `Conflict`
    /// otherwise); remaining messages stay queued for the next drain.
    pub fn drain(&mut self, cache: &mut CacheSim) -> Option<AbortReason> {
        let lock_line = cache.line_of(FALLBACK_LOCK_ADDR);
        while let Some(msg) = self.dir.pop_msg(self.core) {
            self.stats.drained += 1;
            let line = msg.line();
            // Keep the local dedup view coherent with what the directory
            // just did on the remote core's behalf.
            if msg.write {
                self.held.remove(&msg.key);
            } else if self.held.get(&msg.key) == Some(&Held::Owned) {
                self.held.insert(msg.key, Held::Shared);
            }
            let conflict = if msg.write {
                cache.invalidate_line(line)
            } else {
                cache.downgrade_line(line)
            };
            // A conflict without a directory signal would mean the remote
            // published against stale registration state — impossible,
            // because spec registration precedes the local spec-bit mark
            // and release follows the local flash-clear.
            debug_assert!(
                msg.signal || !conflict,
                "unsignaled conflict: core {} key {:#x} write {} held-after {:?}",
                self.core,
                msg.key,
                msg.write,
                self.held.get(&msg.key),
            );
            if conflict {
                self.stats.sig_aborts += 1;
                let reason = if line == lock_line {
                    AbortReason::Sle
                } else {
                    AbortReason::Conflict
                };
                self.pending_abort = Some(reason);
                return Some(reason);
            }
            if msg.signal {
                self.stats.sig_raced += 1;
            } else {
                self.stats.benign += 1;
            }
        }
        None
    }

    /// Drains everything left in the mailbox (teardown / between
    /// requests). Outside a region no live speculative bit exists, so no
    /// message can conflict; each is applied and classified normally.
    pub fn drain_quiesced(&mut self, cache: &mut CacheSim) {
        while let Some(reason) = self.drain(cache) {
            debug_assert!(false, "conflict {reason:?} while quiesced");
        }
        self.pending_abort = None;
    }

    /// Withdraws every directory speculative registration this core holds
    /// — called at region commit and abort, strictly after the cache's
    /// epoch bump (see [`Directory::release_spec`] for why the order
    /// matters).
    pub fn release_spec(&mut self) {
        for key in self.spec_keys.drain(..) {
            self.dir.release_spec(self.core, key);
        }
        self.spec.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;

    #[test]
    fn write_invalidates_sharers_and_signals_spec_readers() {
        let dir = Directory::new(2);
        dir.publish_read(0, 0x40, true);
        assert_eq!(dir.line_state(0x40).spec_readers, 1);
        dir.publish_write(1, 0x40, false);
        let st = dir.line_state(0x40);
        assert_eq!(st.owner, Some(1));
        assert_eq!(st.sharers, 1 << 1);
        assert_eq!(st.spec_readers, 0);
        let msg = dir.pop_msg(0).expect("invalidation queued");
        assert!(msg.write && msg.signal);
        assert_eq!(dir.signaled(), 1);
        assert!(dir.pop_msg(0).is_none());
        assert!(dir.pop_msg(1).is_none());
    }

    #[test]
    fn read_downgrades_owner_and_signals_spec_writer() {
        let dir = Directory::new(2);
        dir.publish_write(0, 0x80, true);
        dir.publish_read(1, 0x80, false);
        let st = dir.line_state(0x80);
        assert_eq!(st.owner, None);
        assert_eq!(st.sharers, 0b11);
        assert_eq!(st.spec_writer, None, "claim consumed by the signal");
        let msg = dir.pop_msg(0).expect("downgrade queued");
        assert!(!msg.write && msg.signal);
    }

    #[test]
    fn readers_coexist_without_signals() {
        let dir = Directory::new(3);
        dir.publish_read(0, 0xc0, true);
        dir.publish_read(1, 0xc0, true);
        dir.publish_read(2, 0xc0, false);
        assert_eq!(dir.signaled(), 0);
        for c in 0..3 {
            assert!(!dir.pending(c));
        }
        assert_eq!(dir.line_state(0xc0).spec_readers, 0b11);
    }

    #[test]
    fn release_after_commit_turns_signal_into_race() {
        let dir = Directory::new(2);
        let hw = HwConfig::baseline();
        let mut cache_a = CacheSim::new(&hw);

        let mut link_a = CoreLink::new(Arc::clone(&dir), 0, 0);
        link_a.publish(0x40, false, true);
        // Core A commits: local flash-clear (epoch bump) then release.
        cache_a.commit_region();
        link_a.release_spec();
        // Core B's write raced: the signal (if sampled before release)
        // or plain invalidation (after) must classify as non-abort.
        dir.publish_write(1, 0x40, false);
        assert!(link_a.drain(&mut cache_a).is_none());
        assert_eq!(link_a.stats.sig_aborts, 0);
        assert_eq!(
            dir.signaled(),
            link_a.stats.sig_raced,
            "post-release signal count must match the raced bucket"
        );
    }

    #[test]
    fn distinct_asids_never_interact() {
        let dir = Directory::new(2);
        let mut a = CoreLink::new(Arc::clone(&dir), 0, 1);
        let mut b = CoreLink::new(Arc::clone(&dir), 1, 2);
        a.publish(0x40, false, true);
        b.publish(0x40, true, true);
        assert!(!a.pending() && !b.pending());
        assert_eq!(dir.signaled(), 0);
    }

    #[test]
    fn dedup_skips_redundant_publishes() {
        let dir = Directory::new(2);
        let mut a = CoreLink::new(Arc::clone(&dir), 0, 0);
        a.publish(0x40, false, false);
        a.publish(0x40, false, false); // held shared, no new info
        assert_eq!(a.stats.published, 1);
        a.publish(0x40, false, true); // new spec-read claim
        a.publish(0x40, true, true); // shared→owned upgrade + spec write
        a.publish(0x40, true, true); // fully covered
        assert_eq!(a.stats.published, 3);
    }
}
