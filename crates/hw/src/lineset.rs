//! A hybrid set of cache-line indices: unsorted small-vector under a spill
//! threshold, deterministic hash-set above it.
//!
//! Atomic-region footprints are tiny — §6.2 measures most regions under 10
//! distinct lines and 50 lines covering 99% — so the per-uop cost of
//! tracking the footprint is dominated by data-structure constants, not
//! asymptotics. An append-only `Vec<u64>` with a linear membership scan
//! beats both a `HashSet<u64>` and a sorted vector there: no hashing, no
//! buckets, no `Vec::insert` memmove to keep order, one contiguous
//! allocation that the machine recycles across regions (see `Machine`'s
//! scratch buffers), and a probe that is a branch-predictable sweep of at
//! most [`SPILL_LINES`] words — comfortably L1-resident.
//!
//! The tail matters too, though: overflow-style experiments (whole-loop
//! encapsulation, large speculative budgets) can push a single region to
//! thousands of distinct lines, where the linear scan turns quadratic. Past
//! [`SPILL_LINES`] distinct lines the set spills into a deterministic
//! [`FxHashSet`] — O(1) inserts — and stays there for the region's
//! lifetime. Both representations answer insert/contains/len identically (a
//! proptest in `tests/prop_hw.rs` drives them against each other across the
//! threshold).

use crate::fxhash::FxHashSet;

/// Distinct-line count beyond which the dense vector spills to a hash set.
/// Above any typical committed region footprint in the paper's data, and
/// small enough that a full dense miss-scan stays a few hundred bytes.
pub const SPILL_LINES: usize = 64;

/// A set of cache-line indices: unsorted small-vector, spilling to a hash
/// set past [`SPILL_LINES`] distinct entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineSet {
    /// Dense representation (insertion order, deduplicated); emptied on
    /// spill but kept allocated so [`LineSet::into_buffer`] recycling still
    /// works.
    lines: Vec<u64>,
    /// Spilled representation; `Some` once the set outgrew the vector.
    spill: Option<FxHashSet<u64>>,
}

impl LineSet {
    /// An empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// An empty set reusing `buf`'s allocation (cleared first).
    pub fn from_buffer(mut buf: Vec<u64>) -> Self {
        buf.clear();
        LineSet {
            lines: buf,
            spill: None,
        }
    }

    /// Inserts a line index; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, line: u64) -> bool {
        if let Some(set) = &mut self.spill {
            return set.insert(line);
        }
        if self.lines.contains(&line) {
            return false;
        }
        self.lines.push(line);
        if self.lines.len() > SPILL_LINES {
            self.spill = Some(self.lines.drain(..).collect());
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, line: u64) -> bool {
        match &self.spill {
            Some(set) => set.contains(&line),
            None => self.lines.contains(&line),
        }
    }

    /// Number of distinct lines.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(set) => set.len(),
            None => self.lines.len(),
        }
    }

    /// True when no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the set has spilled out of the dense representation.
    pub fn is_spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// The line indices while dense (insertion order); empty after a spill
    /// — use [`LineSet::to_sorted_vec`] for a representation-independent
    /// view.
    pub fn as_slice(&self) -> &[u64] {
        &self.lines
    }

    /// All line indices, sorted, regardless of representation.
    pub fn to_sorted_vec(&self) -> Vec<u64> {
        let mut v: Vec<u64> = match &self.spill {
            Some(set) => set.iter().copied().collect(),
            None => self.lines.clone(),
        };
        v.sort_unstable();
        v
    }

    /// Consumes the set, returning the dense backing buffer for reuse (a
    /// spilled set's hash storage is dropped; the buffer's allocation
    /// survives either way).
    pub fn into_buffer(self) -> Vec<u64> {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedupes() {
        let mut s = LineSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(9));
        assert!(!s.insert(5), "duplicate rejected");
        assert_eq!(s.to_sorted_vec(), vec![1, 5, 9]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(9));
        assert!(!s.contains(2));
        assert!(!s.is_spilled());
    }

    #[test]
    fn buffer_reuse_round_trip() {
        let mut s = LineSet::new();
        for v in 0..32 {
            s.insert(v * 3);
        }
        let buf = s.into_buffer();
        let cap = buf.capacity();
        let s2 = LineSet::from_buffer(buf);
        assert!(s2.is_empty());
        assert_eq!(s2.into_buffer().capacity(), cap, "allocation preserved");
    }

    #[test]
    fn spills_past_threshold_and_keeps_answering() {
        let mut s = LineSet::new();
        for v in 0..=SPILL_LINES as u64 {
            assert!(s.insert(v * 2));
        }
        assert!(s.is_spilled(), "must spill past {SPILL_LINES} lines");
        assert_eq!(s.len(), SPILL_LINES + 1);
        // Duplicates, membership, and new inserts behave identically.
        assert!(!s.insert(0));
        assert!(s.contains(2 * SPILL_LINES as u64));
        assert!(!s.contains(1));
        assert!(s.insert(1));
        assert_eq!(s.len(), SPILL_LINES + 2);
        // The sorted view spans both representations.
        let sorted = s.to_sorted_vec();
        assert_eq!(sorted.len(), s.len());
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        // Buffer recycling still hands back the dense allocation.
        let s2 = LineSet::from_buffer(s.into_buffer());
        assert!(s2.is_empty() && !s2.is_spilled());
    }

    #[test]
    fn matches_hashset_semantics() {
        // Differential check against a plain hash set, with a line universe
        // small enough to stay dense and large iteration counts.
        let mut dense = LineSet::new();
        let mut reference = std::collections::HashSet::new();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % 64;
            assert_eq!(dense.insert(line), reference.insert(line));
        }
        assert_eq!(dense.len(), reference.len());
    }
}
