//! A dense, sorted small-vector set of cache-line indices.
//!
//! Atomic-region footprints are tiny — §6.2 measures most regions under 10
//! distinct lines and 50 lines covering 99% — so the per-uop cost of
//! tracking the footprint is dominated by data-structure constants, not
//! asymptotics. A sorted `Vec<u64>` with binary-search insertion beats a
//! `HashSet<u64>` here: no hashing, no buckets, one contiguous allocation
//! that the machine recycles across regions (see `Machine`'s scratch
//! buffers), and cache-friendly membership probes.

/// A sorted set of cache-line indices backed by a small vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineSet {
    lines: Vec<u64>,
}

impl LineSet {
    /// An empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// An empty set reusing `buf`'s allocation (cleared first).
    pub fn from_buffer(mut buf: Vec<u64>) -> Self {
        buf.clear();
        LineSet { lines: buf }
    }

    /// Inserts a line index; returns `true` if it was not already present.
    pub fn insert(&mut self, line: u64) -> bool {
        match self.lines.binary_search(&line) {
            Ok(_) => false,
            Err(pos) => {
                self.lines.insert(pos, line);
                true
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, line: u64) -> bool {
        self.lines.binary_search(&line).is_ok()
    }

    /// Number of distinct lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The sorted line indices.
    pub fn as_slice(&self) -> &[u64] {
        &self.lines
    }

    /// Consumes the set, returning the backing buffer for reuse.
    pub fn into_buffer(self) -> Vec<u64> {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedupes_and_sorts() {
        let mut s = LineSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(9));
        assert!(!s.insert(5), "duplicate rejected");
        assert_eq!(s.as_slice(), &[1, 5, 9]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(9));
        assert!(!s.contains(2));
    }

    #[test]
    fn buffer_reuse_round_trip() {
        let mut s = LineSet::new();
        for v in 0..32 {
            s.insert(v * 3);
        }
        let buf = s.into_buffer();
        let cap = buf.capacity();
        let s2 = LineSet::from_buffer(buf);
        assert!(s2.is_empty());
        assert_eq!(s2.into_buffer().capacity(), cap, "allocation preserved");
    }

    #[test]
    fn matches_hashset_semantics() {
        // Differential check against the structure it replaced.
        let mut dense = LineSet::new();
        let mut reference = std::collections::HashSet::new();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % 64;
            assert_eq!(dense.insert(line), reference.insert(line));
        }
        assert_eq!(dense.len(), reference.len());
    }
}
