//! A hybrid set of cache-line indices: dense sorted small-vector under a
//! spill threshold, hash-set above it.
//!
//! Atomic-region footprints are tiny — §6.2 measures most regions under 10
//! distinct lines and 50 lines covering 99% — so the per-uop cost of
//! tracking the footprint is dominated by data-structure constants, not
//! asymptotics. A sorted `Vec<u64>` with binary-search insertion beats a
//! `HashSet<u64>` there: no hashing, no buckets, one contiguous allocation
//! that the machine recycles across regions (see `Machine`'s scratch
//! buffers), and cache-friendly membership probes.
//!
//! The tail matters too, though: overflow-style experiments (whole-loop
//! encapsulation, large speculative budgets) can push a single region to
//! thousands of distinct lines, where `Vec::insert`'s O(n) shifting turns
//! quadratic. Past [`SPILL_LINES`] distinct lines the set spills into a
//! `HashSet` — O(1) inserts — and stays there for the region's lifetime.
//! Both representations answer insert/contains/len identically (a proptest
//! in `tests/prop_hw.rs` drives them against each other across the
//! threshold).

use std::collections::HashSet;

/// Distinct-line count beyond which the dense sorted vector spills to a
/// hash set. Far above any committed region footprint in the paper's data,
/// and small enough that pre-spill inserts stay cheap.
pub const SPILL_LINES: usize = 256;

/// A set of cache-line indices: sorted small-vector, spilling to a hash set
/// past [`SPILL_LINES`] distinct entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineSet {
    /// Dense representation (sorted, deduplicated); emptied on spill but
    /// kept allocated so [`LineSet::into_buffer`] recycling still works.
    lines: Vec<u64>,
    /// Spilled representation; `Some` once the set outgrew the vector.
    spill: Option<HashSet<u64>>,
}

impl LineSet {
    /// An empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// An empty set reusing `buf`'s allocation (cleared first).
    pub fn from_buffer(mut buf: Vec<u64>) -> Self {
        buf.clear();
        LineSet {
            lines: buf,
            spill: None,
        }
    }

    /// Inserts a line index; returns `true` if it was not already present.
    pub fn insert(&mut self, line: u64) -> bool {
        if let Some(set) = &mut self.spill {
            return set.insert(line);
        }
        match self.lines.binary_search(&line) {
            Ok(_) => false,
            Err(pos) => {
                self.lines.insert(pos, line);
                if self.lines.len() > SPILL_LINES {
                    self.spill = Some(self.lines.drain(..).collect());
                }
                true
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, line: u64) -> bool {
        match &self.spill {
            Some(set) => set.contains(&line),
            None => self.lines.binary_search(&line).is_ok(),
        }
    }

    /// Number of distinct lines.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(set) => set.len(),
            None => self.lines.len(),
        }
    }

    /// True when no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the set has spilled out of the dense representation.
    pub fn is_spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// The line indices while dense (sorted); empty after a spill — use
    /// [`LineSet::to_sorted_vec`] for a representation-independent view.
    pub fn as_slice(&self) -> &[u64] {
        &self.lines
    }

    /// All line indices, sorted, regardless of representation.
    pub fn to_sorted_vec(&self) -> Vec<u64> {
        match &self.spill {
            Some(set) => {
                let mut v: Vec<u64> = set.iter().copied().collect();
                v.sort_unstable();
                v
            }
            None => self.lines.clone(),
        }
    }

    /// Consumes the set, returning the dense backing buffer for reuse (a
    /// spilled set's hash storage is dropped; the buffer's allocation
    /// survives either way).
    pub fn into_buffer(self) -> Vec<u64> {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedupes_and_sorts() {
        let mut s = LineSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(9));
        assert!(!s.insert(5), "duplicate rejected");
        assert_eq!(s.as_slice(), &[1, 5, 9]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(9));
        assert!(!s.contains(2));
        assert!(!s.is_spilled());
    }

    #[test]
    fn buffer_reuse_round_trip() {
        let mut s = LineSet::new();
        for v in 0..32 {
            s.insert(v * 3);
        }
        let buf = s.into_buffer();
        let cap = buf.capacity();
        let s2 = LineSet::from_buffer(buf);
        assert!(s2.is_empty());
        assert_eq!(s2.into_buffer().capacity(), cap, "allocation preserved");
    }

    #[test]
    fn spills_past_threshold_and_keeps_answering() {
        let mut s = LineSet::new();
        for v in 0..=SPILL_LINES as u64 {
            assert!(s.insert(v * 2));
        }
        assert!(s.is_spilled(), "must spill past {SPILL_LINES} lines");
        assert_eq!(s.len(), SPILL_LINES + 1);
        // Duplicates, membership, and new inserts behave identically.
        assert!(!s.insert(0));
        assert!(s.contains(2 * SPILL_LINES as u64));
        assert!(!s.contains(1));
        assert!(s.insert(1));
        assert_eq!(s.len(), SPILL_LINES + 2);
        // The sorted view spans both representations.
        let sorted = s.to_sorted_vec();
        assert_eq!(sorted.len(), s.len());
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        // Buffer recycling still hands back the dense allocation.
        let s2 = LineSet::from_buffer(s.into_buffer());
        assert!(s2.is_empty() && !s2.is_spilled());
    }

    #[test]
    fn matches_hashset_semantics() {
        // Differential check against a plain hash set, with a line universe
        // small enough to stay dense and large iteration counts.
        let mut dense = LineSet::new();
        let mut reference = std::collections::HashSet::new();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % 64;
            assert_eq!(dense.insert(line), reference.insert(line));
        }
        assert_eq!(dense.len(), reference.len());
    }
}
