//! Execution statistics: uop counts, cycles, atomic-region behavior
//! (Table 3), region size and footprint distributions (§6.2), and marker
//! snapshots for the §5 sampling methodology.

use hasp_vm::bytecode::MethodId;

use crate::fxhash::FxHashMap;
use crate::uop::{UopClass, UOP_CLASSES};

/// Why an atomic region aborted (reported to software through the abort
/// reason register, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// An assert fired (`aregion_abort` reached).
    Explicit,
    /// A safety check failed inside the region (exception).
    Exception,
    /// The region's footprint evicted speculative state from the L1.
    Overflow,
    /// A coherence invalidation hit the read/write set.
    Conflict,
    /// An interrupt arrived mid-region (best-effort hardware).
    Interrupt,
    /// An SLE lock-word check found the lock held by another thread.
    Sle,
    /// The substrate aborted for no architectural reason (spurious or
    /// injected targeted abort — best-effort hardware is allowed to).
    Spurious,
}

/// All abort reasons, for iteration.
pub const ABORT_REASONS: [AbortReason; 7] = [
    AbortReason::Explicit,
    AbortReason::Exception,
    AbortReason::Overflow,
    AbortReason::Conflict,
    AbortReason::Interrupt,
    AbortReason::Sle,
    AbortReason::Spurious,
];

impl AbortReason {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::Explicit => "explicit",
            AbortReason::Exception => "exception",
            AbortReason::Overflow => "overflow",
            AbortReason::Conflict => "conflict",
            AbortReason::Interrupt => "interrupt",
            AbortReason::Sle => "sle",
            AbortReason::Spurious => "spurious",
        }
    }
}

/// Dense per-reason abort counters.
///
/// Aborts are counted on the machine's rollback path; a flat array indexed
/// by [`AbortReason`] keeps that path free of hashing. (The per-static-region
/// aggregation stays in a `HashMap` — it is touched once per region, not per
/// uop, and its key space is program-dependent.)
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortCounts([u64; ABORT_REASONS.len()]);

impl AbortCounts {
    /// Records one abort for `reason`.
    pub fn record(&mut self, reason: AbortReason) {
        self.0[reason as usize] += 1;
    }

    /// The count for `reason`.
    pub fn get(&self, reason: AbortReason) -> u64 {
        self.0[reason as usize]
    }

    /// Total aborts across all reasons.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// `(reason, count)` pairs for every reason with a nonzero count.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (AbortReason, u64)> + '_ {
        ABORT_REASONS
            .iter()
            .map(move |&r| (r, self.get(r)))
            .filter(|&(_, n)| n > 0)
    }

    /// Adds another shard's counts into this one (per-reason sums — the
    /// service harness's report-time shard merge). Commutative and
    /// associative, so the merged totals are independent of which worker
    /// served which request and in what order.
    pub fn merge(&mut self, other: &AbortCounts) {
        for (c, o) in self.0.iter_mut().zip(&other.0) {
            *c += o;
        }
    }
}

impl std::fmt::Debug for AbortCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter_nonzero()).finish()
    }
}

/// Dense per-class retired-uop counters (indexed by [`UopClass`]).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct UopClassCounts([u64; UOP_CLASSES.len()]);

impl UopClassCounts {
    /// Records one retired uop of `class`.
    #[inline]
    pub fn record(&mut self, class: UopClass) {
        self.0[class as usize] += 1;
    }

    /// The count for `class`.
    pub fn get(&self, class: UopClass) -> u64 {
        self.0[class as usize]
    }

    /// Total across all classes.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Adds a dense per-class delta — the whole-block tally precomputed by
    /// the superblock index, applied once at block entry.
    #[inline]
    pub fn apply_delta(&mut self, delta: &[u32; UOP_CLASSES.len()]) {
        for (c, d) in self.0.iter_mut().zip(delta) {
            *c += u64::from(*d);
        }
    }

    /// Subtracts a dense per-class delta — the unexecuted suffix of a block
    /// that redirected mid-flight, bringing the tallies back to exactly what
    /// the per-uop reference would have recorded.
    #[inline]
    pub fn unapply_delta(&mut self, delta: &[u32; UOP_CLASSES.len()]) {
        for (c, d) in self.0.iter_mut().zip(delta) {
            *c -= u64::from(*d);
        }
    }

    /// `(class, count)` pairs for every class with a nonzero count.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (UopClass, u64)> + '_ {
        UOP_CLASSES
            .iter()
            .map(move |&c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
    }
}

impl std::fmt::Debug for UopClassCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter_nonzero()).finish()
    }
}

/// Seal-site way-predictor counters (DESIGN §16).
///
/// Deliberately *not* part of [`RunStats`]: the predictor is a
/// performance-transparent accelerator, and every equivalence gate asserts
/// full `RunStats` equality across predictor-on/off configs and across
/// dispatch engines — whose consult counts legitimately differ (batched
/// poll precharging skips follower probes entirely). Counters live in the
/// cache model and are read out separately via `Machine::pred_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Predictor consults: dynamic accesses that reached the per-site table
    /// (sited access, predictor enabled, not absorbed by the MRU filter).
    pub probes: u64,
    /// Consults whose cached `(line, way)` entry named this access's line
    /// *and* survived validation against the live L1 tag array.
    pub hits: u64,
    /// Consults whose entry named this line but failed tag validation (the
    /// line moved or left the cache since training) — the deoptimize-to-
    /// reference case; cold and different-line consults are plain misses.
    pub mispredicts: u64,
}

impl PredStats {
    /// Validated hits per consult (0 when the predictor never consulted).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }
}

/// A histogram over power-of-two-ish buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Counts per bucket (one extra for "above the last bound").
    pub counts: Vec<u64>,
    /// Sum of samples.
    pub sum: u64,
    /// Number of samples.
    pub n: u64,
    /// Largest sample.
    pub max: u64,
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            n: 0,
            max: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.n += 1;
        self.max = self.max.max(v);
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Fraction of samples at or below `bound` (must be a bucket bound).
    pub fn fraction_le(&self, bound: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut acc = 0;
        for (i, &b) in self.bounds.iter().enumerate() {
            if b <= bound {
                acc += self.counts[i];
            }
        }
        acc as f64 / self.n as f64
    }
}

/// Per-static-region counters (keyed by method + region id).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionCounters {
    /// Dynamic entries (`aregion_begin` executed).
    pub entries: u64,
    /// Aborts.
    pub aborts: u64,
    /// Would-be entries the governor patched straight to the alternate PC
    /// (de-speculated entries; not counted in `entries` — no region began).
    pub gov_skips: u64,
    /// The region's current governor-ladder tier (0–3; 0 also for regions
    /// the governor never had to track).
    pub tier: u8,
}

/// Per-static-region counter table: a hash index over stable rows, with a
/// most-recently-used slot in front.
///
/// Dynamic region entries cluster heavily — a loop re-enters the same
/// static region thousands of times in a row — so the hot
/// [`RegionTable::counters_mut`] path almost always resolves through the
/// MRU key compare and never touches the hash map. Rows are append-only,
/// so their indices stay stable for the lifetime of the run.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    index: FxHashMap<(MethodId, u32), u32>,
    rows: Vec<((MethodId, u32), RegionCounters)>,
    /// MRU accelerator; derived state, excluded from equality.
    last: Option<((MethodId, u32), u32)>,
}

impl RegionTable {
    /// The counters for `key`, creating a zeroed row on first sight.
    #[inline]
    pub fn counters_mut(&mut self, key: (MethodId, u32)) -> &mut RegionCounters {
        if let Some((k, i)) = self.last {
            if k == key {
                return &mut self.rows[i as usize].1;
            }
        }
        let i = match self.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.rows.len() as u32;
                self.index.insert(key, i);
                self.rows.push((key, RegionCounters::default()));
                i
            }
        };
        self.last = Some((key, i));
        &mut self.rows[i as usize].1
    }

    /// The counters for `key`, if the region ever executed.
    pub fn get(&self, key: &(MethodId, u32)) -> Option<&RegionCounters> {
        self.index.get(key).map(|&i| &self.rows[i as usize].1)
    }

    /// Number of distinct static regions seen.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no region ever executed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All `(key, counters)` pairs in first-execution order.
    pub fn iter(&self) -> impl Iterator<Item = ((MethodId, u32), &RegionCounters)> {
        self.rows.iter().map(|(k, c)| (*k, c))
    }

    /// All counters in first-execution order.
    pub fn values(&self) -> impl Iterator<Item = &RegionCounters> {
        self.rows.iter().map(|(_, c)| c)
    }

    /// Merges another table's rows into this one: `entries`, `aborts`, and
    /// `gov_skips` add per static region; `tier` takes the maximum (the
    /// worst ladder tier any contributing run observed). Sums and max are
    /// commutative, so merged counters are independent of shard order —
    /// only the derived *row order* depends on it (compare merged tables
    /// via [`RegionTable::sorted_rows`]).
    pub fn merge(&mut self, other: &RegionTable) {
        for (key, c) in other.iter() {
            let row = self.counters_mut(key);
            row.entries += c.entries;
            row.aborts += c.aborts;
            row.gov_skips += c.gov_skips;
            row.tier = row.tier.max(c.tier);
        }
    }

    /// All `(key, counters)` pairs in key order — the canonical,
    /// first-execution-order-independent view for comparing tables merged
    /// from differently-interleaved shards.
    pub fn sorted_rows(&self) -> Vec<((MethodId, u32), RegionCounters)> {
        let mut rows: Vec<_> = self.rows.clone();
        rows.sort_by_key(|((m, r), _)| (m.0, *r));
        rows
    }
}

impl PartialEq for RegionTable {
    fn eq(&self, other: &Self) -> bool {
        // Row order is first-execution order, which bit-identical runs
        // reproduce exactly; `index`/`last` are derived accelerators.
        self.rows == other.rows
    }
}

impl Eq for RegionTable {}

/// One marker snapshot: the machine state when a marker uop retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerSnap {
    /// Marker id.
    pub id: u32,
    /// 1-based hit ordinal for this id.
    pub ordinal: u64,
    /// Total uops retired so far.
    pub uops: u64,
    /// Cycles so far.
    pub cycles: u64,
}

/// Aggregate statistics for one machine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Total uops executed (committed and aborted work both flow through the
    /// pipeline).
    pub uops: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Uops executed inside atomic regions.
    pub region_uops: u64,
    /// Retired uops by class (dense; bumped once per retired uop).
    pub uop_classes: UopClassCounts,
    /// Regions committed.
    pub commits: u64,
    /// Regions aborted, by reason (dense; bumped on the rollback path).
    pub aborts: AbortCounts,
    /// Conditional branches executed / mispredicted.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Indirect branches executed / mispredicted.
    pub indirects: u64,
    /// Mispredicted indirect branches.
    pub indirect_misses: u64,
    /// Memory accesses hitting L1 / L2 / memory.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Memory accesses.
    pub mem_accesses: u64,
    /// Committed region sizes in uops (§6.2 ROB analysis).
    pub region_sizes: Histogram,
    /// Committed region footprints in distinct cache lines (§6.2).
    pub region_footprint: Histogram,
    /// Per-static-region entry/abort counters (adaptive recompilation input).
    pub per_region: RegionTable,
    /// Marker snapshots in hit order.
    pub markers: Vec<MarkerSnap>,
    /// Mispredicted-branch sites: (method id, pc) → miss count (diagnosis).
    pub mispredict_sites: FxHashMap<(u32, usize), u64>,
    /// Region entries the governor patched straight to the alternate PC.
    pub governor_skips: u64,
    /// Times the governor de-speculated a region (streak hit the budget).
    pub governor_disables: u64,
    /// Times a de-speculated region's cooldown expired and it re-enabled.
    pub governor_reenables: u64,
    /// Governor-ladder transitions *into* each tier, indexed by tier (0–3).
    /// `tier_enters[0]` counts regions the governor started tracking (first
    /// non-environmental abort); healthy never-aborting regions are never
    /// tracked and appear in no tier counter.
    pub tier_enters: [u64; 4],
    /// Governor-ladder transitions *out of* each tier. Per tier,
    /// `tier_enters[t] == tier_exits[t] + tier_live[t]` always holds (the
    /// validator checks it after every commit and abort).
    pub tier_exits: [u64; 4],
    /// Tracked regions currently at each tier (live census; matches a
    /// recount of the governor table exactly).
    pub tier_live: [u64; 4],
    /// Time-in-tier in units of `aregion_begin` consults: how many region
    /// entries (speculative or patched-out) were attempted while the region
    /// sat at each tier. Only governor-tracked regions are counted.
    pub tier_time: [u64; 4],
    /// Tier-2 entries that subscribed the global fallback-lock word into
    /// their read-set.
    pub lock_subscriptions: u64,
    /// De-speculated (software-path) executions taken under the global
    /// fallback lock (tier 2's patched-out entries and every tier-3 entry).
    pub lock_holds: u64,
    /// Speculative entries aborted at the subscription read because the
    /// fallback lock was held by an (external) software-path execution.
    pub lock_held_aborts: u64,
    /// Re-formation requests the governor emitted (sustained
    /// `Overflow`/`Explicit` aborts; at most one per static region per run).
    pub reform_requests: u64,
    /// Calm-streak de-escalations: a tracked region stepped one tier back
    /// down after `cooldown_entries` consecutive commits.
    pub governor_recoveries: u64,
    /// Post-abort/post-commit invariant validations that ran (and passed —
    /// a failing validation is a [`crate::fault::MachineFault`]).
    pub validations: u64,
}

impl Default for RunStats {
    fn default() -> Self {
        RunStats {
            uops: 0,
            cycles: 0,
            region_uops: 0,
            uop_classes: UopClassCounts::default(),
            commits: 0,
            aborts: AbortCounts::default(),
            branches: 0,
            mispredicts: 0,
            indirects: 0,
            indirect_misses: 0,
            l1_hits: 0,
            l2_hits: 0,
            mem_accesses: 0,
            region_sizes: Histogram::new(&[16, 32, 64, 128, 256, 512, 1024]),
            region_footprint: Histogram::new(&[1, 2, 4, 8, 10, 16, 32, 50, 100, 128]),
            per_region: RegionTable::default(),
            markers: Vec::new(),
            mispredict_sites: FxHashMap::default(),
            governor_skips: 0,
            governor_disables: 0,
            governor_reenables: 0,
            tier_enters: [0; 4],
            tier_exits: [0; 4],
            tier_live: [0; 4],
            tier_time: [0; 4],
            lock_subscriptions: 0,
            lock_holds: 0,
            lock_held_aborts: 0,
            reform_requests: 0,
            governor_recoveries: 0,
            validations: 0,
        }
    }
}

impl RunStats {
    /// Total aborts across reasons.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.total()
    }

    /// Fraction of dynamic uops inside atomic regions (Table 3 coverage).
    pub fn coverage(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.region_uops as f64 / self.uops as f64
        }
    }

    /// Abort percentage over region entries (Table 3 "abort %").
    pub fn abort_rate(&self) -> f64 {
        let entries = self.commits + self.total_aborts();
        if entries == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / entries as f64
        }
    }

    /// Aborts per 1000 uops (Table 3).
    pub fn aborts_per_kuop(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.total_aborts() as f64 * 1000.0 / self.uops as f64
        }
    }

    /// Number of unique static regions that executed (Table 3 "unique").
    pub fn unique_regions(&self) -> usize {
        self.per_region.len()
    }

    /// The governor-ladder accounting invariant: per tier, every transition
    /// in is balanced by a transition out or a still-live region
    /// (`enters == exits + live`). The CI smoke leg gates on this.
    pub fn tier_counters_consistent(&self) -> bool {
        (0..4).all(|t| self.tier_enters[t] == self.tier_exits[t] + self.tier_live[t])
    }

    /// Average committed region size in uops (Table 3 "size").
    pub fn avg_region_size(&self) -> f64 {
        self.region_sizes.mean()
    }

    /// Field-by-field comparison against another run, for diagnosing
    /// dispatch-engine divergence: one human-readable line per differing
    /// field (`name: self vs other`), empty when the runs are bit-identical.
    /// Collections (histograms, per-region map, markers, mispredict sites)
    /// are summarized rather than dumped.
    pub fn diff(&self, other: &RunStats) -> Vec<String> {
        let mut out = Vec::new();
        let mut scalar = |name: &str, a: u64, b: u64| {
            if a != b {
                out.push(format!("{name}: {a} vs {b}"));
            }
        };
        scalar("uops", self.uops, other.uops);
        scalar("cycles", self.cycles, other.cycles);
        scalar("region_uops", self.region_uops, other.region_uops);
        scalar("commits", self.commits, other.commits);
        scalar("branches", self.branches, other.branches);
        scalar("mispredicts", self.mispredicts, other.mispredicts);
        scalar("indirects", self.indirects, other.indirects);
        scalar(
            "indirect_misses",
            self.indirect_misses,
            other.indirect_misses,
        );
        scalar("l1_hits", self.l1_hits, other.l1_hits);
        scalar("l2_hits", self.l2_hits, other.l2_hits);
        scalar("mem_accesses", self.mem_accesses, other.mem_accesses);
        scalar("governor_skips", self.governor_skips, other.governor_skips);
        scalar(
            "governor_disables",
            self.governor_disables,
            other.governor_disables,
        );
        scalar(
            "governor_reenables",
            self.governor_reenables,
            other.governor_reenables,
        );
        scalar(
            "lock_subscriptions",
            self.lock_subscriptions,
            other.lock_subscriptions,
        );
        scalar("lock_holds", self.lock_holds, other.lock_holds);
        scalar(
            "lock_held_aborts",
            self.lock_held_aborts,
            other.lock_held_aborts,
        );
        scalar(
            "reform_requests",
            self.reform_requests,
            other.reform_requests,
        );
        scalar(
            "governor_recoveries",
            self.governor_recoveries,
            other.governor_recoveries,
        );
        for t in 0..4 {
            scalar(
                &format!("tier_enters[{t}]"),
                self.tier_enters[t],
                other.tier_enters[t],
            );
            scalar(
                &format!("tier_exits[{t}]"),
                self.tier_exits[t],
                other.tier_exits[t],
            );
            scalar(
                &format!("tier_live[{t}]"),
                self.tier_live[t],
                other.tier_live[t],
            );
            scalar(
                &format!("tier_time[{t}]"),
                self.tier_time[t],
                other.tier_time[t],
            );
        }
        scalar("validations", self.validations, other.validations);
        for c in UOP_CLASSES {
            if self.uop_classes.get(c) != other.uop_classes.get(c) {
                out.push(format!(
                    "uop_classes[{}]: {} vs {}",
                    c.name(),
                    self.uop_classes.get(c),
                    other.uop_classes.get(c)
                ));
            }
        }
        for r in ABORT_REASONS {
            if self.aborts.get(r) != other.aborts.get(r) {
                out.push(format!(
                    "aborts[{}]: {} vs {}",
                    r.name(),
                    self.aborts.get(r),
                    other.aborts.get(r)
                ));
            }
        }
        if self.region_sizes != other.region_sizes {
            out.push(format!(
                "region_sizes: mean {:.1} max {} vs mean {:.1} max {}",
                self.region_sizes.mean(),
                self.region_sizes.max,
                other.region_sizes.mean(),
                other.region_sizes.max
            ));
        }
        if self.region_footprint != other.region_footprint {
            out.push(format!(
                "region_footprint: mean {:.1} max {} vs mean {:.1} max {}",
                self.region_footprint.mean(),
                self.region_footprint.max,
                other.region_footprint.mean(),
                other.region_footprint.max
            ));
        }
        if self.per_region != other.per_region {
            out.push(format!(
                "per_region: {} static regions vs {}",
                self.per_region.len(),
                other.per_region.len()
            ));
        }
        if self.markers != other.markers {
            let first = self
                .markers
                .iter()
                .zip(&other.markers)
                .position(|(a, b)| a != b)
                .map_or_else(
                    || format!("lengths {} vs {}", self.markers.len(), other.markers.len()),
                    |i| format!("first divergence at hit {i}"),
                );
            out.push(format!("markers: {first}"));
        }
        if self.mispredict_sites != other.mispredict_sites {
            out.push(format!(
                "mispredict_sites: {} sites vs {}",
                self.mispredict_sites.len(),
                other.mispredict_sites.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [1, 5, 50, 500] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.mean(), 139.0);
        assert_eq!(h.max, 500);
        assert_eq!(h.fraction_le(10), 0.5);
        assert_eq!(h.fraction_le(100), 0.75);
    }

    #[test]
    fn derived_rates() {
        let mut s = RunStats {
            uops: 1000,
            region_uops: 700,
            commits: 97,
            ..RunStats::default()
        };
        for _ in 0..3 {
            s.aborts.record(AbortReason::Explicit);
        }
        assert_eq!(s.coverage(), 0.7);
        assert_eq!(s.abort_rate(), 0.03);
        assert_eq!(s.aborts_per_kuop(), 3.0);
    }

    #[test]
    fn dense_abort_counts() {
        let mut a = AbortCounts::default();
        a.record(AbortReason::Conflict);
        a.record(AbortReason::Conflict);
        a.record(AbortReason::Overflow);
        assert_eq!(a.get(AbortReason::Conflict), 2);
        assert_eq!(a.get(AbortReason::Overflow), 1);
        assert_eq!(a.get(AbortReason::Sle), 0);
        assert_eq!(a.total(), 3);
        let nz: Vec<_> = a.iter_nonzero().collect();
        assert_eq!(
            nz,
            vec![(AbortReason::Overflow, 1), (AbortReason::Conflict, 2)]
        );
        assert!(format!("{a:?}").contains("Conflict"));
    }

    #[test]
    fn abort_counts_merge_adds_per_reason() {
        let mut a = AbortCounts::default();
        a.record(AbortReason::Conflict);
        let mut b = AbortCounts::default();
        b.record(AbortReason::Conflict);
        b.record(AbortReason::Overflow);
        a.merge(&b);
        assert_eq!(a.get(AbortReason::Conflict), 2);
        assert_eq!(a.get(AbortReason::Overflow), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn region_table_merge_is_shard_order_independent() {
        let k1 = (MethodId(1), 0u32);
        let k2 = (MethodId(2), 3u32);
        let mut shard_a = RegionTable::default();
        let row = shard_a.counters_mut(k1);
        row.entries = 10;
        row.aborts = 2;
        row.tier = 1;
        let mut shard_b = RegionTable::default();
        let row = shard_b.counters_mut(k2);
        row.entries = 5;
        row.gov_skips = 4;
        row.tier = 3;
        let row = shard_b.counters_mut(k1);
        row.entries = 7;
        row.aborts = 1;
        row.tier = 2;

        // Merge in both orders: first-execution row order differs, but the
        // canonical sorted view must be identical.
        let mut ab = RegionTable::default();
        ab.merge(&shard_a);
        ab.merge(&shard_b);
        let mut ba = RegionTable::default();
        ba.merge(&shard_b);
        ba.merge(&shard_a);
        assert_ne!(ab.iter().next(), ba.iter().next(), "row order differs");
        assert_eq!(ab.sorted_rows(), ba.sorted_rows());
        let merged = ab.get(&k1).expect("k1 merged");
        assert_eq!(merged.entries, 17);
        assert_eq!(merged.aborts, 3);
        assert_eq!(merged.tier, 2, "tier takes the worst observed");
        assert_eq!(ab.get(&k2).expect("k2").gov_skips, 4);
    }

    #[test]
    fn tier_counter_invariant() {
        let mut s = RunStats::default();
        assert!(s.tier_counters_consistent(), "all-zero is balanced");
        // One region tracked at tier 0, escalated to tier 1 and still there.
        s.tier_enters[0] = 1;
        s.tier_exits[0] = 1;
        s.tier_enters[1] = 1;
        s.tier_live[1] = 1;
        assert!(s.tier_counters_consistent());
        // A lost exit breaks the balance.
        s.tier_exits[1] = 1;
        assert!(!s.tier_counters_consistent());
    }

    #[test]
    fn dense_uop_class_counts() {
        use crate::uop::{MReg, Uop};
        let mut c = UopClassCounts::default();
        c.record(
            Uop::Const {
                dst: MReg(0),
                imm: 1,
            }
            .class(),
        );
        c.record(Uop::Poll.class());
        c.record(Uop::Poll.class());
        assert_eq!(c.get(UopClass::Alu), 1);
        assert_eq!(c.get(UopClass::Memory), 2);
        assert_eq!(c.total(), 3);
    }
}
