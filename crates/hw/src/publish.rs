//! Lock-free read-mostly publication of an immutable value — the code-cache
//! installation channel for the multi-tenant service harness.
//!
//! A serving VM installs new compiled code while worker cores keep
//! dispatching out of the old code: the readers are on the per-request hot
//! path and must never take a lock, while installs are rare and may pay
//! arbitrary coordination cost. [`Publisher`] implements the classic
//! epoch/RCU shape with a versioned node behind one atomic pointer:
//!
//! * **Publish** builds the new value off to the side, swings `current`
//!   with a single atomic pointer swap, and *then* advances the version
//!   counter — so the node reachable from `current` always carries a
//!   version at least as large as the counter.
//! * **Pin** announces the reader's presence by copying the version counter
//!   into its own cache-line-padded epoch slot, then loads `current`. The
//!   sequentially-consistent announce-then-load order means any node a
//!   reader can acquire was still reachable from `current` *after* its
//!   announcement, hence carries `version >= slot`. Readers are wait-free:
//!   two atomic ops to pin, one to unpin, no CAS loops, no locks.
//! * **Reclaim** frees a retired node of version `v` only once every
//!   non-quiescent slot holds a value `> v`: a reader still holding node
//!   `v` necessarily announced a slot value `<= v` (its slot was copied
//!   from a counter that had not yet passed `v`), so such a node is
//!   provably unreachable from every active reader. Retired nodes are
//!   never reachable from `current` again, so a late-arriving reader
//!   cannot resurrect one.
//!
//! The retired list and the publish path share a mutex — publication is
//! the cold path and serializing installers is exactly the behavior a
//! code-cache wants — but no reader ever touches it.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;

/// Slot value meaning "no pin in progress" (version counters start at 1).
const QUIESCENT: u64 = 0;

/// A published value tagged with the version counter at its installation.
struct Node<T> {
    version: u64,
    value: T,
}

/// One reader's epoch announcement, padded to a cache line so worker cores
/// never false-share their pin/unpin traffic.
#[repr(align(64))]
struct Slot(AtomicU64);

/// An epoch/RCU-style single-pointer publisher: wait-free pinned reads of
/// the current value, mutex-serialized publication, grace-period
/// reclamation of superseded values.
pub struct Publisher<T> {
    current: AtomicPtr<Node<T>>,
    /// Version of the newest published node. Monotone; never ahead of the
    /// node reachable from `current` (publish swaps first, bumps second).
    version: AtomicU64,
    slots: Box<[Slot]>,
    /// Superseded nodes awaiting their grace period, plus the publish
    /// serialization — cold-path only, readers never lock it.
    retired: Mutex<Vec<Box<Node<T>>>>,
    installs: AtomicU64,
    reclaims: AtomicU64,
}

// SAFETY: `Publisher` hands `&T` out to multiple threads (so `T: Sync` is
// required) and drops retired `T`s on whichever thread reclaims them (so
// `T: Send` is required). All shared mutable state is atomics or behind the
// mutex.
unsafe impl<T: Send + Sync> Send for Publisher<T> {}
unsafe impl<T: Send + Sync> Sync for Publisher<T> {}

impl<T> Publisher<T> {
    /// Creates a publisher over `value` with capacity for `readers`
    /// concurrently pinned readers (one slot each, identified by index).
    pub fn new(value: T, readers: usize) -> Self {
        let node = Box::into_raw(Box::new(Node { version: 1, value }));
        Publisher {
            current: AtomicPtr::new(node),
            version: AtomicU64::new(1),
            slots: (0..readers.max(1))
                .map(|_| Slot(AtomicU64::new(QUIESCENT)))
                .collect(),
            retired: Mutex::new(Vec::new()),
            installs: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
        }
    }

    /// Pins reader `slot` to the current value. Wait-free: one load, one
    /// store, one load. The returned guard dereferences to the pinned
    /// value; dropping it quiesces the slot again.
    ///
    /// Each slot index must be owned by one thread at a time (the service
    /// harness gives every worker its own index).
    ///
    /// # Panics
    /// Panics if `slot` is out of range or already pinned (nested pins on
    /// one slot would let reclamation miss the outer pin's epoch).
    pub fn pin(&self, slot: usize) -> PinGuard<'_, T> {
        let v = self.version.load(SeqCst);
        let prev = self.slots[slot].0.swap(v, SeqCst);
        assert_eq!(prev, QUIESCENT, "slot {slot} pinned twice");
        // SeqCst announce-then-load: this load is ordered after the slot
        // store, so the node it returns was still current after the
        // announcement — reclamation can see us coming.
        let node = self.current.load(SeqCst);
        PinGuard {
            publisher: self,
            slot,
            node,
        }
    }

    /// Publishes `value`, retiring the previous one, and opportunistically
    /// reclaims every retired value whose grace period has elapsed.
    /// Readers pinned to the old value keep it alive until they unpin.
    pub fn publish(&self, value: T) {
        let mut retired = self.retired.lock().expect("publisher poisoned");
        let next = self.version.load(SeqCst) + 1;
        let node = Box::into_raw(Box::new(Node {
            version: next,
            value,
        }));
        // Swap before bumping the counter: a reader that announced `next`
        // early (counter already bumped, pointer not yet swapped) would
        // pin the *old* node while claiming the new version, and reclaim
        // would free it underneath the reader. Swapping first keeps
        // `current.version >= counter` at every instant.
        let old = self.current.swap(node, SeqCst);
        self.version.store(next, SeqCst);
        // SAFETY: `old` came out of `current`, which exclusively owns its
        // node; after the swap no new reader can reach it.
        retired.push(unsafe { Box::from_raw(old) });
        self.installs.fetch_add(1, SeqCst);
        Self::reclaim_locked(&self.slots, &mut retired, &self.reclaims);
    }

    /// Runs a reclamation pass outside any publish (e.g. after a quiescent
    /// drain), freeing every retired value whose grace period has elapsed.
    pub fn try_reclaim(&self) {
        let mut retired = self.retired.lock().expect("publisher poisoned");
        Self::reclaim_locked(&self.slots, &mut retired, &self.reclaims);
    }

    fn reclaim_locked(slots: &[Slot], retired: &mut Vec<Box<Node<T>>>, reclaims: &AtomicU64) {
        // The grace-period horizon: the oldest version any active reader
        // may still hold. A reader holding node `v` announced a slot value
        // `<= v`, so a retired node is free-able once `version < horizon`.
        let horizon = slots
            .iter()
            .map(|s| s.0.load(SeqCst))
            .filter(|&v| v != QUIESCENT)
            .min()
            .unwrap_or(u64::MAX);
        let before = retired.len();
        retired.retain(|n| n.version >= horizon);
        reclaims.fetch_add((before - retired.len()) as u64, SeqCst);
    }

    /// Version of the newest published value (starts at 1).
    pub fn version(&self) -> u64 {
        self.version.load(SeqCst)
    }

    /// Number of `publish` calls so far.
    pub fn installs(&self) -> u64 {
        self.installs.load(SeqCst)
    }

    /// Number of retired values reclaimed so far.
    pub fn reclaims(&self) -> u64 {
        self.reclaims.load(SeqCst)
    }

    /// Number of retired values still awaiting their grace period.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().expect("publisher poisoned").len()
    }
}

impl<T> Drop for Publisher<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no guards are alive (they borrow the
        // publisher), so both the current node and every retired node are
        // exclusively ours.
        unsafe { drop(Box::from_raw(self.current.load(SeqCst))) };
        self.retired.get_mut().expect("publisher poisoned").clear();
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Publisher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("version", &self.version())
            .field("installs", &self.installs())
            .field("reclaims", &self.reclaims())
            .field("retired", &self.retired_len())
            .finish_non_exhaustive()
    }
}

/// A pinned read of the currently published value. Dereferences to the
/// value; dropping it lets the grace period of superseded values advance.
pub struct PinGuard<'a, T> {
    publisher: &'a Publisher<T>,
    slot: usize,
    node: *const Node<T>,
}

impl<T> PinGuard<'_, T> {
    /// The pinned value's publication version (1 for the initial value).
    pub fn version(&self) -> u64 {
        // SAFETY: the node is kept alive by this guard's slot announcement.
        unsafe { (*self.node).version }
    }
}

impl<T> std::ops::Deref for PinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the node is kept alive by this guard's slot announcement
        // (reclamation spares every version >= the announced epoch).
        unsafe { &(*self.node).value }
    }
}

impl<T> Drop for PinGuard<'_, T> {
    fn drop(&mut self) {
        self.publisher.slots[self.slot].0.store(QUIESCENT, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_sees_initial_then_published_values() {
        let p = Publisher::new(10u64, 2);
        assert_eq!(*p.pin(0), 10);
        assert_eq!(p.pin(0).version(), 1);
        p.publish(20);
        assert_eq!(*p.pin(0), 20);
        assert_eq!(p.pin(1).version(), 2);
        assert_eq!(p.installs(), 1);
    }

    #[test]
    fn pinned_reader_keeps_the_old_value_alive() {
        let p = Publisher::new(String::from("old"), 2);
        let g = p.pin(0);
        p.publish(String::from("new"));
        // The pinned guard still reads the superseded value, which must
        // not have been reclaimed under it.
        assert_eq!(&*g, "old");
        assert_eq!(p.retired_len(), 1, "grace period still open");
        assert_eq!(p.reclaims(), 0);
        drop(g);
        p.try_reclaim();
        assert_eq!(p.retired_len(), 0);
        assert_eq!(p.reclaims(), 1);
        assert_eq!(*p.pin(1), "new");
    }

    #[test]
    fn reclaim_spares_only_versions_readers_can_still_hold() {
        let p = Publisher::new(0u64, 2);
        p.publish(1); // retires v1
        let g = p.pin(0); // pins v2
        p.publish(2); // retires v2; v1's grace period has elapsed
        assert_eq!(*g, 1);
        assert_eq!(p.retired_len(), 1, "v1 freed, v2 held by the guard");
        drop(g);
        p.publish(3);
        assert_eq!(p.retired_len(), 0, "all grace periods elapsed");
        assert_eq!(p.reclaims(), 3);
    }

    #[test]
    #[should_panic(expected = "pinned twice")]
    fn nested_pin_on_one_slot_is_rejected() {
        let p = Publisher::new(0u64, 1);
        let _g = p.pin(0);
        let _h = p.pin(0);
    }

    /// Concurrency stress: readers continuously pin/validate/unpin while a
    /// writer publishes a few hundred monotone values. Every read must see
    /// a value consistent with its version tag and at least as new as the
    /// version the reader announced — a torn read, a stale-past-epoch read,
    /// or a use-after-free (under sanitizers/miri) all fail here.
    #[test]
    fn concurrent_publish_and_pin_stress() {
        const READERS: usize = 3;
        const PUBLISHES: u64 = 300;
        // The value embeds its version so readers can check coherence.
        let p = Publisher::new((1u64, 1000u64), READERS);
        std::thread::scope(|s| {
            for r in 0..READERS {
                let p = &p;
                s.spawn(move || {
                    let mut last = 0;
                    while last < PUBLISHES {
                        let announced = p.version();
                        let g = p.pin(r);
                        let (ver, val) = *g;
                        assert_eq!(val, ver + 999, "torn read");
                        assert!(ver >= announced, "pin saw a pre-announcement value");
                        assert!(ver >= last, "pinned version went backwards");
                        last = ver;
                        drop(g);
                    }
                });
            }
            for v in 2..=PUBLISHES {
                p.publish((v, v + 999));
            }
        });
        p.try_reclaim();
        assert_eq!(p.retired_len(), 0, "quiescent drain reclaims everything");
        assert_eq!(p.installs(), PUBLISHES - 1);
        assert_eq!(p.reclaims(), PUBLISHES - 1);
    }
}
