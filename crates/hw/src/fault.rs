//! Deterministic fault injection and online abort recovery.
//!
//! The paper's reliability argument (§3, §6.1) is that *any* abort cause —
//! coherence conflict, interrupt, cache overflow, exception, failed assert —
//! rolls back to a bit-exact architectural state and falls back to the
//! non-speculative code at the region's alternate PC. This module makes that
//! contract systematically testable:
//!
//! * [`FaultPlan`] — a seeded, deterministic injection plan that can produce
//!   every abort cause at a swept rate or at a precise trigger point
//!   (abort-at-the-Nth-region-entry).
//! * [`MachineFault`] — structured machine errors, so hardware misuse
//!   (e.g. `aregion_abort` outside a region) and invariant-validator
//!   failures surface as values instead of panics.
//!
//! The abort-*recovery* policy ([`GovernorConfig`](crate::config::GovernorConfig))
//! used to live here too; it is recovery policy, not fault injection, and
//! lives in [`crate::config`] (import it from there or the crate root).

use hasp_vm::bytecode::MethodId;
use hasp_vm::error::VmError;

use crate::stats::AbortReason;

/// A deterministic fault-injection plan.
///
/// All rates are exact and seeded: two machines given the same plan and the
/// same program inject the same faults at the same retired-uop positions, so
/// campaign cells are reproducible and comparable across runs and threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// RNG seed for probabilistic injection (conflicts, spurious aborts).
    pub seed: u64,
    /// Coherence-conflict probability per 1M in-region uops (0 disables):
    /// models an invalidation hitting the region's read/write set.
    pub conflict_per_miljon: u64,
    /// Interrupt interval in retired uops (0 disables); an interrupt inside
    /// a region aborts it (best-effort hardware).
    pub interrupt_interval: u64,
    /// Spurious hardware-abort probability per 1M in-region uops
    /// (0 disables): the substrate aborts for no architectural reason, as
    /// best-effort hardware is allowed to.
    pub spurious_per_miljon: u64,
    /// Speculative-footprint line budget (0 = only the cache geometry
    /// limits). A region touching more distinct lines than this overflows —
    /// a shrunken stand-in for a smaller speculative cache.
    pub line_budget: u64,
    /// Abort exactly the Nth dynamic region entry (1-based; `None`
    /// disables). The targeted probe for abort-path bisection.
    pub abort_at_entry: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No injected faults (architectural aborts only).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0x4a57,
            conflict_per_miljon: 0,
            interrupt_interval: 0,
            spurious_per_miljon: 0,
            line_budget: 0,
            abort_at_entry: None,
        }
    }

    /// Conflict injection at `per_miljon` per 1M in-region uops.
    pub fn conflicts(per_miljon: u64) -> Self {
        FaultPlan {
            conflict_per_miljon: per_miljon,
            ..FaultPlan::none()
        }
    }

    /// Interrupt injection every `interval` retired uops.
    pub fn interrupts(interval: u64) -> Self {
        FaultPlan {
            interrupt_interval: interval,
            ..FaultPlan::none()
        }
    }

    /// Spurious-abort injection at `per_miljon` per 1M in-region uops.
    pub fn spurious(per_miljon: u64) -> Self {
        FaultPlan {
            spurious_per_miljon: per_miljon,
            ..FaultPlan::none()
        }
    }

    /// Overflow injection: cap region footprints at `lines` distinct lines.
    pub fn overflow_budget(lines: u64) -> Self {
        FaultPlan {
            line_budget: lines,
            ..FaultPlan::none()
        }
    }

    /// Targeted injection: abort the `n`th dynamic region entry (1-based).
    pub fn abort_at(n: u64) -> Self {
        FaultPlan {
            abort_at_entry: Some(n),
            ..FaultPlan::none()
        }
    }

    /// True when any probabilistic (per-uop) injection is armed, so the
    /// machine's hot loop can skip the RNG entirely otherwise.
    pub fn any_per_uop(&self) -> bool {
        self.conflict_per_miljon > 0 || self.interrupt_interval > 0 || self.spurious_per_miljon > 0
    }
}

/// The injectable fault families a campaign sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Coherence conflicts at a per-1M-uop rate.
    Conflict,
    /// Interrupts at a retired-uop interval.
    Interrupt,
    /// Cache-line overflow via a shrunken speculative line budget.
    Overflow,
    /// Spurious hardware aborts at a per-1M-uop rate.
    Spurious,
    /// A targeted abort at the Nth dynamic region entry.
    Targeted,
}

/// All fault kinds, for campaign iteration.
pub const FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::Conflict,
    FaultKind::Interrupt,
    FaultKind::Overflow,
    FaultKind::Spurious,
    FaultKind::Targeted,
];

impl FaultKind {
    /// Campaign label.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Conflict => "conflict",
            FaultKind::Interrupt => "interrupt",
            FaultKind::Overflow => "overflow",
            FaultKind::Spurious => "spurious",
            FaultKind::Targeted => "targeted",
        }
    }

    /// The plan injecting this kind at `rate` (kind-specific meaning:
    /// per-1M-uop probability, uop interval, line budget, or entry ordinal).
    pub fn plan(self, rate: u64) -> FaultPlan {
        match self {
            FaultKind::Conflict => FaultPlan::conflicts(rate),
            FaultKind::Interrupt => FaultPlan::interrupts(rate),
            FaultKind::Overflow => FaultPlan::overflow_budget(rate),
            FaultKind::Spurious => FaultPlan::spurious(rate),
            FaultKind::Targeted => FaultPlan::abort_at(rate),
        }
    }

    /// The abort reason this kind is recorded under.
    pub fn reason(self) -> AbortReason {
        match self {
            FaultKind::Conflict => AbortReason::Conflict,
            FaultKind::Interrupt => AbortReason::Interrupt,
            FaultKind::Overflow => AbortReason::Overflow,
            FaultKind::Spurious | FaultKind::Targeted => AbortReason::Spurious,
        }
    }
}

/// A structured machine failure.
///
/// Hardware misuse (a lowering bug emitting `aregion_abort` outside a
/// region, a nested `aregion_begin`) and invariant-validator violations are
/// *reported*, not panicked, so one malformed cell of an experiment matrix
/// degrades to a recorded failure instead of killing its worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineFault {
    /// A non-speculative VM-level error (trap, fuel, stack overflow).
    Vm(VmError),
    /// `aregion_abort` executed with no region in flight.
    AbortOutsideRegion {
        /// Method containing the offending uop.
        method: MethodId,
        /// Uop offset of the offending `aregion_abort`.
        pc: usize,
    },
    /// `aregion_begin` executed while a region was already in flight.
    NestedRegion {
        /// Method containing the offending uop.
        method: MethodId,
        /// Uop offset of the offending `aregion_begin`.
        pc: usize,
    },
    /// `aregion_end` executed with no region in flight.
    EndOutsideRegion {
        /// Method containing the offending uop.
        method: MethodId,
        /// Uop offset of the offending `aregion_end`.
        pc: usize,
    },
    /// A call targeted a method with no installed code.
    MethodNotCompiled(MethodId),
    /// The post-abort/post-commit invariant validator found corrupted
    /// architectural state.
    InvariantViolation {
        /// Which invariant failed.
        what: &'static str,
        /// Human-readable details (expected vs observed).
        detail: String,
    },
}

impl From<VmError> for MachineFault {
    fn from(e: VmError) -> Self {
        MachineFault::Vm(e)
    }
}

impl std::fmt::Display for MachineFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineFault::Vm(e) => write!(f, "{e}"),
            MachineFault::AbortOutsideRegion { method, pc } => {
                write!(f, "aregion_abort outside a region at {}:{pc}", method.0)
            }
            MachineFault::NestedRegion { method, pc } => {
                write!(f, "nested aregion_begin at {}:{pc}", method.0)
            }
            MachineFault::EndOutsideRegion { method, pc } => {
                write!(f, "aregion_end outside a region at {}:{pc}", method.0)
            }
            MachineFault::MethodNotCompiled(m) => {
                write!(f, "method {} not compiled", m.0)
            }
            MachineFault::InvariantViolation { what, detail } => {
                write!(f, "post-abort/commit invariant violated ({what}): {detail}")
            }
        }
    }
}

impl std::error::Error for MachineFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_arm_the_right_knob() {
        assert_eq!(FaultPlan::conflicts(500).conflict_per_miljon, 500);
        assert_eq!(FaultPlan::interrupts(1000).interrupt_interval, 1000);
        assert_eq!(FaultPlan::spurious(250).spurious_per_miljon, 250);
        assert_eq!(FaultPlan::overflow_budget(4).line_budget, 4);
        assert_eq!(FaultPlan::abort_at(7).abort_at_entry, Some(7));
        assert!(!FaultPlan::none().any_per_uop());
        assert!(FaultPlan::conflicts(1).any_per_uop());
        assert!(FaultPlan::interrupts(1).any_per_uop());
        assert!(FaultPlan::spurious(1).any_per_uop());
        assert!(
            !FaultPlan::overflow_budget(4).any_per_uop(),
            "budget checks ride the existing footprint path"
        );
    }

    #[test]
    fn kind_round_trip() {
        for k in FAULT_KINDS {
            let p = k.plan(10);
            assert_ne!(p, FaultPlan::none(), "{} plan arms something", k.name());
        }
        assert_eq!(FaultKind::Targeted.reason(), AbortReason::Spurious);
        assert_eq!(FaultKind::Overflow.reason(), AbortReason::Overflow);
    }

    #[test]
    fn fault_display_is_descriptive() {
        let f = MachineFault::AbortOutsideRegion {
            method: MethodId(3),
            pc: 17,
        };
        assert!(f.to_string().contains("aregion_abort outside"));
        let v = MachineFault::InvariantViolation {
            what: "spec-bits",
            detail: "2 lines still speculative".into(),
        };
        assert!(v.to_string().contains("spec-bits"));
        let vm: MachineFault = VmError::StackOverflow.into();
        assert_eq!(vm.to_string(), "call stack overflow");
    }
}
