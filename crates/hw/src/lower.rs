//! Lowering optimized IR to machine uops.
//!
//! * SSA phis become parallel move sequences on incoming edges (critical
//!   edges get out-of-line move stubs).
//! * Asserts become a conditional branch to an out-of-line `aregion_abort`
//!   (exactly Figure 4's code shape).
//! * Monitor operations expand into the reservation-lock fast path — load,
//!   compare, branch, store (§4: "even the fastest path must still check the
//!   status of the lock and update it with a store"); the SLE check expands
//!   to just load + compare + branch with no store.
//! * `aregion_begin <alt>` carries the non-speculative code's address.

use std::collections::HashMap;

use hasp_ir::{AssertKind, BlockId, Func, Op, Term, VReg};
use hasp_vm::bytecode::{BinOp, CmpOp, Intrinsic};
use hasp_vm::interp::MUTATOR_THREAD;

use crate::uop::{CompiledCode, MReg, Uop};

/// Lowers an optimized function to machine code.
pub fn lower(f: &Func) -> CompiledCode {
    Lowering::new(f).run()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Label {
    Block(BlockId),
    Stub(usize),
    /// An absolute position in the main uop stream (used by monitor/SLE
    /// slow-path stubs that resume right after their fast path).
    Pos(usize),
}

struct Stub {
    uops: Vec<Uop>,
    /// Where the stub jumps when it completes (`None` = the stub ends in an
    /// Abort/terminal uop). Filled in after the fast path is emitted for
    /// resume-style stubs.
    cont: Option<Label>,
}

struct Lowering<'f> {
    f: &'f Func,
    uops: Vec<Uop>,
    patches: Vec<(usize, usize, Label)>, // (uop index, operand slot, label)
    stubs: Vec<Stub>,
    stub_patches: Vec<(usize, usize, usize, Label)>, // (stub, uop, slot, label)
    next_reg: u32,
    order: Vec<BlockId>,
    /// Deduplicated edge-move stubs.
    edge_stubs: HashMap<(BlockId, BlockId), Label>,
}

impl<'f> Lowering<'f> {
    fn new(f: &'f Func) -> Self {
        Lowering {
            f,
            uops: Vec::new(),
            patches: Vec::new(),
            stubs: Vec::new(),
            stub_patches: Vec::new(),
            next_reg: f.vreg_count(),
            order: f.rpo(),
            edge_stubs: HashMap::new(),
        }
    }

    fn temp(&mut self) -> MReg {
        let r = MReg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn run(mut self) -> CompiledCode {
        let order = self.order.clone();
        let mut block_pos: HashMap<BlockId, usize> = HashMap::new();
        for (i, &b) in order.iter().enumerate() {
            block_pos.insert(b, self.uops.len());
            self.emit_block(b, order.get(i + 1).copied());
        }
        // Stubs (including any created while emitting earlier stubs).
        let mut stub_pos: Vec<usize> = Vec::new();
        let mut si = 0;
        while si < self.stubs.len() {
            stub_pos.push(self.uops.len());
            let stub = std::mem::replace(
                &mut self.stubs[si],
                Stub {
                    uops: vec![],
                    cont: None,
                },
            );
            let base = self.uops.len();
            let n = stub.uops.len();
            self.uops.extend(stub.uops);
            // Re-register this stub's internal patches at their final spots.
            let pending: Vec<_> = self
                .stub_patches
                .iter()
                .filter(|(s, _, _, _)| *s == si)
                .cloned()
                .collect();
            for (_, u, slot, label) in pending {
                debug_assert!(u < n);
                self.patches.push((base + u, slot, label));
            }
            if let Some(cont) = stub.cont {
                let at = self.uops.len();
                self.uops.push(Uop::Jmp { target: usize::MAX });
                self.patches.push((at, 0, cont));
            }
            si += 1;
        }
        // Patch.
        let resolve = |l: Label| -> usize {
            match l {
                Label::Block(b) => *block_pos
                    .get(&b)
                    .unwrap_or_else(|| panic!("unlaid block {b} in {}", self.f.name)),
                Label::Stub(s) => stub_pos[s],
                Label::Pos(p) => p,
            }
        };
        for (idx, slot, label) in std::mem::take(&mut self.patches) {
            let pos = resolve(label);
            match &mut self.uops[idx] {
                Uop::Jmp { target } | Uop::Br { target, .. } => *target = pos,
                Uop::JmpInd { table, default, .. } => {
                    if slot < table.len() {
                        table[slot] = pos;
                    } else {
                        *default = pos;
                    }
                }
                Uop::RegionBegin { alt, .. } => *alt = pos,
                other => panic!("patch on {other:?}"),
            }
        }
        debug_assert!(self.uops.iter().all(|u| match u {
            Uop::Jmp { target } | Uop::Br { target, .. } => *target != usize::MAX,
            Uop::JmpInd { table, default, .. } =>
                table.iter().all(|t| *t != usize::MAX) && *default != usize::MAX,
            Uop::RegionBegin { alt, .. } => *alt != usize::MAX,
            _ => true,
        }));

        CompiledCode {
            name: self.f.name.clone(),
            uops: self.uops,
            regs: self.next_reg,
            assert_origins: self.f.asserts.iter().map(|a| a.origin.clone()).collect(),
            region_count: self.f.regions.len() as u32,
            // The abort target is the original (pre-replication) boundary
            // block — the region's stable identity across recompiles,
            // which re-formation requests name.
            region_boundaries: self.f.regions.iter().map(|r| r.abort_target.0).collect(),
            // Sealed (superblock index built) at `CodeCache::install`.
            blocks: Vec::new(),
            region_writes: Default::default(),
        }
    }

    fn emit(&mut self, u: Uop) {
        self.uops.push(u);
    }

    fn emit_jmp(&mut self, label: Label, next: Option<BlockId>) {
        if let (Label::Block(b), Some(n)) = (label, next) {
            if b == n {
                return; // fallthrough
            }
        }
        let at = self.uops.len();
        self.emit(Uop::Jmp { target: usize::MAX });
        self.patches.push((at, 0, label));
    }

    fn emit_br(&mut self, op: CmpOp, a: MReg, b: MReg, label: Label) {
        let at = self.uops.len();
        self.emit(Uop::Br {
            op,
            a,
            b,
            target: usize::MAX,
        });
        self.patches.push((at, 0, label));
    }

    /// The label for edge `p -> t`, inserting a parallel-move stub when `t`
    /// has phis.
    fn edge(&mut self, p: BlockId, t: BlockId) -> Label {
        if let Some(&l) = self.edge_stubs.get(&(p, t)) {
            return l;
        }
        let moves = self.phi_moves(p, t);
        let label = if moves.is_empty() {
            Label::Block(t)
        } else {
            let seq = self.sequentialize(moves);
            let uops = seq
                .into_iter()
                .map(|(dst, src)| Uop::Mov { dst, src })
                .collect();
            self.stubs.push(Stub {
                uops,
                cont: Some(Label::Block(t)),
            });
            Label::Stub(self.stubs.len() - 1)
        };
        self.edge_stubs.insert((p, t), label);
        label
    }

    /// (dst, src) pairs the edge `p -> t` must perform (phi semantics).
    fn phi_moves(&self, p: BlockId, t: BlockId) -> Vec<(MReg, MReg)> {
        let mut moves = Vec::new();
        for inst in self.f.block(t).phis() {
            if let Op::Phi(ins) = &inst.op {
                let src = ins
                    .iter()
                    .find(|(pb, _)| *pb == p)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| {
                        panic!("phi in {t} lacks input for pred {p} in {}", self.f.name)
                    });
                let dst = inst.dst.expect("phi defines a value");
                if mreg(dst) != mreg(src) {
                    moves.push((mreg(dst), mreg(src)));
                }
            }
        }
        moves
    }

    /// Orders parallel moves so no source is clobbered before it is read;
    /// cycles are broken with a temporary.
    fn sequentialize(&mut self, mut moves: Vec<(MReg, MReg)>) -> Vec<(MReg, MReg)> {
        let mut out = Vec::new();
        while !moves.is_empty() {
            // A move whose destination is not a pending source is safe.
            if let Some(i) = moves
                .iter()
                .position(|(d, _)| !moves.iter().any(|(_, s)| s == d))
            {
                out.push(moves.remove(i));
                continue;
            }
            // Cycle: rotate through a temp.
            let (d0, s0) = moves[0];
            let t = self.temp();
            out.push((t, d0));
            // Any move reading d0 now reads t.
            for (_, s) in moves.iter_mut() {
                if *s == d0 {
                    *s = t;
                }
            }
            let _ = s0;
        }
        out
    }

    fn emit_block(&mut self, b: BlockId, next: Option<BlockId>) {
        let blk = self.f.block(b);
        let phi_count = blk.phi_count();
        let insts: Vec<_> = blk.insts[phi_count..].to_vec();
        for inst in &insts {
            self.emit_inst(inst);
        }
        match blk.term.clone() {
            Term::Jump(t) => {
                // Inline any phi moves directly (not a critical edge).
                let moves = self.phi_moves(b, t);
                let seq = self.sequentialize(moves);
                for (dst, src) in seq {
                    self.emit(Uop::Mov { dst, src });
                }
                self.emit_jmp(Label::Block(t), next);
            }
            Term::Branch {
                op,
                a,
                b: y,
                t,
                f: fb,
                ..
            } => {
                let lt = self.edge(b, t);
                self.emit_br(op, mreg(a), mreg(y), lt);
                let lf = self.edge(b, fb);
                self.emit_jmp(lf, next);
            }
            Term::Switch {
                sel,
                targets,
                default,
            } => {
                let labels: Vec<Label> = targets.iter().map(|(t, _)| self.edge(b, *t)).collect();
                let dl = self.edge(b, default.0);
                let at = self.uops.len();
                self.emit(Uop::JmpInd {
                    sel: mreg(sel),
                    table: vec![usize::MAX; labels.len()].into(),
                    default: usize::MAX,
                });
                for (slot, l) in labels.into_iter().enumerate() {
                    self.patches.push((at, slot, l));
                }
                let nslots = match &self.uops[at] {
                    Uop::JmpInd { table, .. } => table.len(),
                    _ => unreachable!(),
                };
                self.patches.push((at, nslots, dl));
            }
            Term::Return(v) => {
                self.emit(Uop::Ret { src: v.map(mreg) });
            }
            Term::RegionBegin {
                region,
                body,
                abort,
            } => {
                debug_assert!(self.phi_moves(b, body).is_empty());
                debug_assert!(self.phi_moves(b, abort).is_empty());
                let at = self.uops.len();
                self.emit(Uop::RegionBegin {
                    region: region.0,
                    alt: usize::MAX,
                });
                self.patches.push((at, 0, Label::Block(abort)));
                self.emit_jmp(Label::Block(body), next);
            }
        }
    }

    fn emit_inst(&mut self, inst: &hasp_ir::Inst) {
        let d = inst.dst.map(mreg);
        match &inst.op {
            Op::Const(c) => self.emit(Uop::Const {
                dst: d.unwrap(),
                imm: *c,
            }),
            Op::ConstNull => self.emit(Uop::ConstNull { dst: d.unwrap() }),
            Op::Copy(v) => self.emit(Uop::Mov {
                dst: d.unwrap(),
                src: mreg(*v),
            }),
            Op::Phi(_) => unreachable!("phis lowered as edge moves"),
            Op::Bin(op, a, b) => self.emit(Uop::Alu {
                op: *op,
                dst: d.unwrap(),
                a: mreg(*a),
                b: mreg(*b),
            }),
            Op::Cmp(op, a, b) => self.emit(Uop::CmpSet {
                op: *op,
                dst: d.unwrap(),
                a: mreg(*a),
                b: mreg(*b),
            }),
            Op::NullCheck(v) => self.emit(Uop::CheckNull { v: mreg(*v) }),
            Op::BoundsCheck { len, idx } => self.emit(Uop::CheckBounds {
                len: mreg(*len),
                idx: mreg(*idx),
            }),
            Op::DivCheck(v) => self.emit(Uop::CheckDiv { v: mreg(*v) }),
            Op::CastCheck { obj, class } => self.emit(Uop::CheckCast {
                obj: mreg(*obj),
                class: *class,
            }),
            Op::New(class) => self.emit(Uop::AllocObj {
                dst: d.unwrap(),
                class: *class,
            }),
            Op::NewArray(len) => self.emit(Uop::AllocArr {
                dst: d.unwrap(),
                len: mreg(*len),
            }),
            Op::LoadField { obj, field } => self.emit(Uop::LoadField {
                dst: d.unwrap(),
                obj: mreg(*obj),
                field: field.0,
            }),
            Op::StoreField { obj, field, val } => self.emit(Uop::StoreField {
                obj: mreg(*obj),
                field: field.0,
                src: mreg(*val),
            }),
            Op::LoadElem { arr, idx } => self.emit(Uop::LoadElem {
                dst: d.unwrap(),
                arr: mreg(*arr),
                idx: mreg(*idx),
            }),
            Op::StoreElem { arr, idx, val } => self.emit(Uop::StoreElem {
                arr: mreg(*arr),
                idx: mreg(*idx),
                src: mreg(*val),
            }),
            Op::ArrayLen(arr) => self.emit(Uop::LoadLen {
                dst: d.unwrap(),
                arr: mreg(*arr),
            }),
            Op::LoadClass(obj) => self.emit(Uop::LoadClass {
                dst: d.unwrap(),
                obj: mreg(*obj),
            }),
            Op::InstanceOf { obj, class } => self.emit(Uop::InstOf {
                dst: d.unwrap(),
                obj: mreg(*obj),
                class: *class,
            }),
            Op::Call { method, args } => self.emit(Uop::Call {
                dst: d,
                target: *method,
                args: args.iter().map(|a| mreg(*a)).collect(),
            }),
            Op::CallVirtual {
                slot, recv, args, ..
            } => self.emit(Uop::CallVirt {
                dst: d,
                slot: *slot,
                recv: mreg(*recv),
                args: args.iter().map(|a| mreg(*a)).collect(),
            }),
            Op::MonitorEnter(obj) => self.emit_monitor_enter(mreg(*obj)),
            Op::MonitorExit(obj) => self.emit_monitor_exit(mreg(*obj)),
            Op::SleCheck(obj) => self.emit_sle_check(mreg(*obj)),
            Op::Safepoint => self.emit(Uop::Poll),
            Op::Intrin { kind, args } => match kind {
                Intrinsic::YieldFlag => {
                    self.emit(Uop::Poll);
                    if let Some(dst) = d {
                        self.emit(Uop::Const { dst, imm: 0 });
                    }
                }
                k => self.emit(Uop::Intrin {
                    kind: *k,
                    dst: d,
                    args: args.iter().map(|a| mreg(*a)).collect(),
                }),
            },
            Op::Marker(id) => self.emit(Uop::Marker { id: *id }),
            Op::Assert { kind, id } => self.emit_assert(kind, id.0),
            Op::RegionEnd(r) => self.emit(Uop::RegionEnd { region: r.0 }),
        }
    }

    /// Conditional branch to an out-of-line unconditional abort (Figure 4).
    fn emit_assert(&mut self, kind: &AssertKind, id: u32) {
        let abort = {
            self.stubs.push(Stub {
                uops: vec![Uop::Abort { assert_id: id }],
                cont: None,
            });
            Label::Stub(self.stubs.len() - 1)
        };
        match kind {
            AssertKind::Cmp { op, a, b } => self.emit_br(*op, mreg(*a), mreg(*b), abort),
            AssertKind::Null(v) => {
                let n = self.temp();
                self.emit(Uop::ConstNull { dst: n });
                self.emit_br(CmpOp::Eq, mreg(*v), n, abort);
            }
            AssertKind::ClassNe { obj, class } => {
                let cls = self.temp();
                self.emit(Uop::LoadClass {
                    dst: cls,
                    obj: mreg(*obj),
                });
                let k = self.temp();
                self.emit(Uop::Const {
                    dst: k,
                    imm: i64::from(class.0),
                });
                self.emit_br(CmpOp::Ne, cls, k, abort);
            }
            AssertKind::LockHeld(v) => {
                // Same shape as the SLE check but with an explicit assert id.
                let t = self.temp();
                self.emit(Uop::LoadLock {
                    dst: t,
                    obj: mreg(*v),
                });
                let z = self.temp();
                self.emit(Uop::Const { dst: z, imm: 0 });
                self.emit_br(CmpOp::Ne, t, z, abort);
            }
            AssertKind::IntNe { sel, expected } => {
                let k = self.temp();
                self.emit(Uop::Const {
                    dst: k,
                    imm: *expected,
                });
                self.emit_br(CmpOp::Ne, mreg(*sel), k, abort);
            }
        }
    }

    /// Reservation-lock fast path: 5 uops when the lock is free.
    fn emit_monitor_enter(&mut self, obj: MReg) {
        let t = self.temp();
        self.emit(Uop::LoadLock { dst: t, obj });
        let z = self.temp();
        self.emit(Uop::Const { dst: z, imm: 0 });
        // Slow path: recursive acquire (owner must be us).
        let (n2, c32, ow, tid, one) = (
            self.temp(),
            self.temp(),
            self.temp(),
            self.temp(),
            self.temp(),
        );
        let slow_uops = vec![
            Uop::Const { dst: c32, imm: 32 },
            Uop::Alu {
                op: BinOp::Shr,
                dst: ow,
                a: t,
                b: c32,
            },
            Uop::Const {
                dst: tid,
                imm: MUTATOR_THREAD,
            },
            Uop::Br {
                op: CmpOp::Ne,
                a: ow,
                b: tid,
                target: usize::MAX,
            },
            Uop::Const { dst: one, imm: 1 },
            Uop::Alu {
                op: BinOp::Add,
                dst: n2,
                a: t,
                b: one,
            },
            Uop::StoreLock { obj, src: n2 },
        ];
        // The contention branch inside the stub targets an Unreachable stub.
        self.stubs.push(Stub {
            uops: vec![Uop::Unreachable {
                why: "monitor contention in single-mutator sim",
            }],
            cont: None,
        });
        let contend = self.stubs.len() - 1;
        self.stubs.push(Stub {
            uops: slow_uops,
            cont: None,
        });
        let slow = self.stubs.len() - 1;
        self.stub_patches.push((slow, 3, 0, Label::Stub(contend)));
        // Fast path continues inline.
        self.emit_br(CmpOp::Ne, t, z, Label::Stub(slow));
        let n1 = self.temp();
        self.emit(Uop::Const {
            dst: n1,
            imm: (MUTATOR_THREAD << 32) | 1,
        });
        self.emit(Uop::StoreLock { obj, src: n1 });
        // The slow stub resumes right after the fast path.
        self.fixup_stub_cont(slow);
    }

    /// Reservation-lock release: 5 uops when un-nested.
    fn emit_monitor_exit(&mut self, obj: MReg) {
        let t = self.temp();
        self.emit(Uop::LoadLock { dst: t, obj });
        let k1 = self.temp();
        self.emit(Uop::Const {
            dst: k1,
            imm: (MUTATOR_THREAD << 32) | 1,
        });
        let (one, n) = (self.temp(), self.temp());
        let nested_uops = vec![
            Uop::Const { dst: one, imm: 1 },
            Uop::Alu {
                op: BinOp::Sub,
                dst: n,
                a: t,
                b: one,
            },
            Uop::StoreLock { obj, src: n },
        ];
        self.stubs.push(Stub {
            uops: nested_uops,
            cont: None,
        });
        let nested = self.stubs.len() - 1;
        self.emit_br(CmpOp::Ne, t, k1, Label::Stub(nested));
        let z = self.temp();
        self.emit(Uop::Const { dst: z, imm: 0 });
        self.emit(Uop::StoreLock { obj, src: z });
        self.fixup_stub_cont(nested);
    }

    /// SLE-elided monitor entry: load + compare + branch, no store (§4).
    fn emit_sle_check(&mut self, obj: MReg) {
        let t = self.temp();
        self.emit(Uop::LoadLock { dst: t, obj });
        let z = self.temp();
        self.emit(Uop::Const { dst: z, imm: 0 });
        // Cold: lock word nonzero — abort unless it is our own reservation.
        let (c32, ow, tid) = (self.temp(), self.temp(), self.temp());
        self.stubs.push(Stub {
            uops: vec![Uop::Abort {
                assert_id: u32::MAX,
            }],
            cont: None,
        });
        let abort = self.stubs.len() - 1;
        let cold_uops = vec![
            Uop::Const { dst: c32, imm: 32 },
            Uop::Alu {
                op: BinOp::Shr,
                dst: ow,
                a: t,
                b: c32,
            },
            Uop::Const {
                dst: tid,
                imm: MUTATOR_THREAD,
            },
            Uop::Br {
                op: CmpOp::Ne,
                a: ow,
                b: tid,
                target: usize::MAX,
            },
        ];
        self.stubs.push(Stub {
            uops: cold_uops,
            cont: None,
        });
        let cold = self.stubs.len() - 1;
        self.stub_patches.push((cold, 3, 0, Label::Stub(abort)));
        self.emit_br(CmpOp::Ne, t, z, Label::Stub(cold));
        self.fixup_stub_cont(cold);
    }

    /// Points a resume-style stub's continuation at the current position in
    /// the main stream (the uop right after the fast path).
    fn fixup_stub_cont(&mut self, stub: usize) {
        self.stubs[stub].cont = Some(Label::Pos(self.uops.len()));
    }
}

fn mreg(v: VReg) -> MReg {
    MReg(v.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_ir::{Inst, RegionId, RegionInfo};
    use hasp_vm::bytecode::MethodId;

    fn count(code: &CompiledCode, pred: impl Fn(&Uop) -> bool) -> usize {
        code.uops.iter().filter(|u| pred(u)).count()
    }

    #[test]
    fn straightline_lowering_shapes() {
        let mut f = Func::new("t", MethodId(0), 2);
        let (a, b) = (VReg(0), VReg(1));
        let c = f.vreg();
        let e = f.block_mut(f.entry);
        e.insts.push(Inst::with_dst(c, Op::Bin(BinOp::Add, a, b)));
        e.insts.push(Inst::effect(Op::NullCheck(a)));
        e.term = Term::Return(Some(c));
        let code = lower(&f);
        assert!(matches!(code.uops[0], Uop::Alu { op: BinOp::Add, .. }));
        assert!(matches!(code.uops[1], Uop::CheckNull { .. }));
        assert!(matches!(code.uops[2], Uop::Ret { .. }));
    }

    #[test]
    fn monitor_fast_paths_have_paper_cost() {
        // Enter: load, const, branch, const, store = 5 uops on the fast
        // path; exit likewise; SLE check: load, const, branch = 3.
        let mut f = Func::new("t", MethodId(0), 1);
        let lock = VReg(0);
        f.block_mut(f.entry)
            .insts
            .push(Inst::effect(Op::MonitorEnter(lock)));
        f.block_mut(f.entry).term = Term::Return(None);
        let enter = lower(&f);
        // Fast path = uops before the Ret, excluding out-of-line stubs.
        let ret_at = enter
            .uops
            .iter()
            .position(|u| matches!(u, Uop::Ret { .. }))
            .unwrap();
        assert_eq!(ret_at, 5, "{:?}", &enter.uops[..ret_at]);

        let mut g = Func::new("t2", MethodId(0), 1);
        g.block_mut(g.entry)
            .insts
            .push(Inst::effect(Op::MonitorExit(lock)));
        g.block_mut(g.entry).term = Term::Return(None);
        let exit = lower(&g);
        let ret_at = exit
            .uops
            .iter()
            .position(|u| matches!(u, Uop::Ret { .. }))
            .unwrap();
        assert_eq!(ret_at, 5, "{:?}", &exit.uops[..ret_at]);

        let mut h = Func::new("t3", MethodId(0), 1);
        let exit_b = h.add_block(Term::Return(None));
        let body = h.add_block(Term::Jump(exit_b));
        let abort = h.add_block(Term::Jump(exit_b));
        let r = h.new_region(RegionInfo {
            begin: h.entry,
            abort_target: abort,
            size_estimate: 2,
        });
        h.block_mut(h.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        h.block_mut(body).region = Some(r);
        h.block_mut(body)
            .insts
            .push(Inst::effect(Op::SleCheck(lock)));
        h.block_mut(body).insts.push(Inst::effect(Op::RegionEnd(r)));
        let sle = lower(&h);
        // Body layout: RegionBegin, (jump), LoadLock, Const, Br, RegionEnd...
        let begin_at = sle
            .uops
            .iter()
            .position(|u| matches!(u, Uop::RegionBegin { .. }))
            .unwrap();
        let end_at = sle
            .uops
            .iter()
            .position(|u| matches!(u, Uop::RegionEnd { .. }))
            .unwrap();
        let fast: Vec<&Uop> = sle.uops[begin_at + 1..end_at]
            .iter()
            .filter(|u| !matches!(u, Uop::Jmp { .. }))
            .collect();
        assert_eq!(
            fast.len(),
            3,
            "SLE fast path is load+const+branch: {fast:?}"
        );
    }

    #[test]
    fn assert_lowered_as_branch_to_abort_stub() {
        let mut f = Func::new("t", MethodId(0), 2);
        let (a, b) = (VReg(0), VReg(1));
        let exit = f.add_block(Term::Return(None));
        let body = f.add_block(Term::Jump(exit));
        let abort = f.add_block(Term::Jump(exit));
        let r = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort,
            size_estimate: 2,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r,
            body,
            abort,
        };
        f.block_mut(body).region = Some(r);
        let id = f.new_assert(RegionId(0), "test");
        f.block_mut(body).insts.push(Inst::effect(Op::Assert {
            kind: AssertKind::Cmp {
                op: CmpOp::Ge,
                a,
                b,
            },
            id,
        }));
        f.block_mut(body).insts.push(Inst::effect(Op::RegionEnd(r)));
        let code = lower(&f);
        // A conditional branch targets an unconditional Abort (Figure 4).
        let abort_at = code
            .uops
            .iter()
            .position(|u| matches!(u, Uop::Abort { assert_id: 0 }))
            .expect("abort stub");
        let feeds_abort = code
            .uops
            .iter()
            .any(|u| matches!(u, Uop::Br { target, .. } if *target == abort_at));
        assert!(feeds_abort, "{:?}", code.uops);
        assert_eq!(code.assert_origins.len(), 1);
    }

    #[test]
    fn phi_cycle_gets_temp_move() {
        // swap: x,y = y,x around a loop — the parallel move needs a temp.
        let mut f = Func::new("t", MethodId(0), 2);
        let (a, b) = (VReg(0), VReg(1));
        let exit = f.add_block(Term::Return(Some(a)));
        let head = f.add_block(Term::Return(None));
        let x = f.vreg();
        let y = f.vreg();
        f.block_mut(f.entry).term = Term::Jump(head);
        let entry = f.entry;
        f.block_mut(head)
            .insts
            .push(Inst::with_dst(x, Op::Phi(vec![(entry, a), (head, y)])));
        f.block_mut(head)
            .insts
            .push(Inst::with_dst(y, Op::Phi(vec![(entry, b), (head, x)])));
        f.block_mut(head).term = Term::Branch {
            op: CmpOp::Lt,
            a: x,
            b: y,
            t: head,
            f: exit,
            t_count: 5,
            f_count: 1,
        };
        let code = lower(&f);
        // The back-edge move set {x<-y, y<-x} is cyclic: at least 3 moves.
        let moves = count(&code, |u| matches!(u, Uop::Mov { .. }));
        assert!(
            moves >= 3,
            "cyclic phi moves need a temporary: {:?}",
            code.uops
        );
    }

    #[test]
    fn switch_lowered_as_indirect_jump() {
        let mut f = Func::new("t", MethodId(0), 1);
        let sel = VReg(0);
        let t0 = f.add_block(Term::Return(None));
        let t1 = f.add_block(Term::Return(None));
        let d = f.add_block(Term::Return(None));
        f.block_mut(f.entry).term = Term::Switch {
            sel,
            targets: vec![(t0, 5), (t1, 5)],
            default: (d, 1),
        };
        let code = lower(&f);
        assert_eq!(count(&code, |u| matches!(u, Uop::JmpInd { .. })), 1);
    }
}
