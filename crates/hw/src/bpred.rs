//! Branch prediction: a combining (tournament) predictor — 64K-entry gshare
//! plus 16K-entry bimodal, per Table 1 — and a last-target indirect
//! predictor for `tableswitch` dispatch.

const GSHARE_BITS: u32 = 16; // 64K entries
const BIMOD_BITS: u32 = 14; // 16K entries
const CHOOSER_BITS: u32 = 14;
const ITARGET_BITS: u32 = 12;

/// Saturating 2-bit counter helpers.
fn bump(c: &mut u8, up: bool) {
    if up {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// The conditional + indirect branch predictor.
#[derive(Debug, Clone)]
pub struct Predictor {
    gshare: Vec<u8>,
    bimod: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    itargets: Vec<u64>,
}

impl Predictor {
    /// Creates a predictor with weakly-taken initial state.
    pub fn new() -> Self {
        Predictor {
            gshare: vec![2; 1 << GSHARE_BITS],
            bimod: vec![2; 1 << BIMOD_BITS],
            chooser: vec![2; 1 << CHOOSER_BITS],
            history: 0,
            itargets: vec![u64::MAX; 1 << ITARGET_BITS],
        }
    }

    /// Restores the weakly-taken construction state in place, reusing the
    /// table allocations (the cross-request reset path: recycled machines
    /// must predict exactly like fresh ones).
    pub fn reset(&mut self) {
        self.gshare.fill(2);
        self.bimod.fill(2);
        self.chooser.fill(2);
        self.history = 0;
        self.itargets.fill(u64::MAX);
    }

    fn gidx(&self, pc: u64) -> usize {
        ((pc ^ self.history) & ((1 << GSHARE_BITS) - 1)) as usize
    }

    fn bidx(pc: u64) -> usize {
        (pc & ((1 << BIMOD_BITS) - 1)) as usize
    }

    fn cidx(pc: u64) -> usize {
        (pc & ((1 << CHOOSER_BITS) - 1)) as usize
    }

    /// Predicts and trains on a conditional branch outcome. Returns `true`
    /// if the prediction was correct.
    pub fn branch(&mut self, pc: u64, taken: bool) -> bool {
        let gi = self.gidx(pc);
        let g = self.gshare[gi] >= 2;
        let b = self.bimod[Self::bidx(pc)] >= 2;
        let use_g = self.chooser[Self::cidx(pc)] >= 2;
        let pred = if use_g { g } else { b };

        // Train.
        bump(&mut self.gshare[gi], taken);
        bump(&mut self.bimod[Self::bidx(pc)], taken);
        if g != b {
            bump(&mut self.chooser[Self::cidx(pc)], g == taken);
        }
        self.history = (self.history << 1) | u64::from(taken);
        pred == taken
    }

    /// Predicts and trains on an indirect branch target (history-hashed
    /// target table, ITTAGE-style in spirit). Returns `true` if the
    /// prediction was correct.
    pub fn indirect(&mut self, pc: u64, target: u64) -> bool {
        let idx =
            ((pc ^ (self.history.wrapping_mul(0x9e3779b9))) & ((1 << ITARGET_BITS) - 1)) as usize;
        let correct = self.itargets[idx] == target;
        self.itargets[idx] = target;
        // Fold the target into the global history so correlated dispatch
        // sequences are learnable.
        self.history = (self.history << 2) ^ (target & 0x3);
        correct
    }
}

impl Default for Predictor {
    fn default() -> Self {
        Predictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = Predictor::new();
        let mut wrong = 0;
        for _ in 0..1000 {
            if !p.branch(0x42, true) {
                wrong += 1;
            }
        }
        assert!(
            wrong <= 2,
            "a monomorphic branch must be learned, wrong={wrong}"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = Predictor::new();
        // Alternating T/N: bimodal flounders, gshare should lock on.
        let mut wrong_tail = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            let ok = p.branch(0x99, taken);
            if i >= 1000 && !ok {
                wrong_tail += 1;
            }
        }
        assert!(
            wrong_tail < 100,
            "history predictor should learn alternation, wrong={wrong_tail}"
        );
    }

    #[test]
    fn indirect_learns_stable_target() {
        let mut p = Predictor::new();
        assert!(!p.indirect(7, 100), "cold miss");
        assert!(p.indirect(7, 100));
        assert!(!p.indirect(7, 200), "target change mispredicts");
        assert!(p.indirect(7, 200));
    }
}
