//! The simulated machine: functional uop execution on a checkpoint substrate
//! with atomic-region support, plus an interval-analysis timing model.
//!
//! Functional semantics are exact — the same heap, environment, and value
//! model as the interpreter — so a compiled program's observable checksum
//! can be compared bit-for-bit against interpretation, *including across
//! region aborts*: `aregion_begin` checkpoints registers, the environment,
//! and the allocation frontier; stores are undo-logged; aborts restore
//! everything and redirect to the alternate PC.
//!
//! Timing follows interval analysis: a width-bound base cost per uop, branch
//! misprediction bubbles from a real tournament predictor, and memory stall
//! cycles from a real cache simulation (MLP-discounted), plus the region
//! overheads of the Figure 9 sensitivity configurations.

use hasp_vm::bytecode::{Intrinsic, MethodId};
use hasp_vm::class::Program;
use hasp_vm::env::{Env, EnvSnapshot};
use hasp_vm::error::{Trap, VmError};
use hasp_vm::heap::{Heap, HeapCell, HeapMark};
use hasp_vm::value::{ObjId, Value};

use crate::bpred::Predictor;
use crate::cache::{CacheSim, FastHit, HitLevel, TargetCache, NO_SITE};
use crate::coherence::CoreLink;
use crate::config::{Dispatch, GovernorConfig, HwConfig, ReformRequest};
use crate::fault::MachineFault;
use crate::fxhash::FxHashMap;
use crate::lineset::LineSet;
use crate::stats::{AbortReason, MarkerSnap, RunStats};
use crate::superblock::{SbInfo, SbTerm, YIELD_FLAG_ADDR};
use crate::uop::{CodeCache, CompiledCode, MReg, Uop};

/// Data address of the global fallback lock word (the hybrid-TM mutual-
/// isolation channel, SNIPPETS §9.2.2 made concrete): tier-2+ speculative
/// entries *read* this word into their region read-set at `aregion_begin`
/// (subscription), and de-speculated software-path executions *write* it
/// (acquire/release collapsed to one non-speculative store in this
/// single-threaded machine), so a software-path writer conflicts every
/// subscribed hardware execution out. Lives on its own 64-byte line,
/// distinct from [`YIELD_FLAG_ADDR`]'s line, so lock traffic never aliases
/// the safepoint poll word.
pub const FALLBACK_LOCK_ADDR: u64 = 0x140;

/// What executing one uop did to control flow.
enum StepOut {
    /// Fall through (or branch): the frame's pc becomes this value.
    Next(usize),
    /// The uop already redirected control itself (call linkage, return to a
    /// caller frame, region abort, governor patch-out) — the frame stack's
    /// top pc is authoritative.
    Redirect,
    /// The outermost frame returned: the program's result.
    Return(Option<Value>),
}

/// How a superblock's interior run ended (see [`Machine::run_interior`]).
enum Interior {
    /// Every interior uop up to the terminator retired on the fast path.
    Done,
    /// The uop at this pc needs the shared [`Machine::step`] path — either
    /// an unspecialized kind, or a specialized one about to trap. The fast
    /// path bailed before any side effect, so replaying it is exact.
    Slow(usize),
    /// The memory access at this pc overflowed the region. The cache state
    /// is already updated (not replayable): the caller must abort.
    Overflow(usize),
}

/// Per-superblock deferred cache-accounting accumulator (DESIGN §13): the
/// batched interior path counts serviced accesses per level here and flushes
/// them into `RunStats`/`cxw` once per interior run — one fused update per
/// block instead of per-access counter read-modify-writes and per-miss
/// latency divisions. Exact because nothing observes the running counters
/// between a block's interior uops: markers and terminators live outside
/// `i..term`, and every bail path flushes before control leaves the loop.
#[derive(Default)]
struct MemTally {
    /// Accesses serviced by L1, including absorbed filter hits and the
    /// bulk-charged followers of sealed static runs.
    l1: u64,
    /// Accesses serviced by L2.
    l2: u64,
    /// Misses serviced by memory.
    mem: u64,
}

impl MemTally {
    /// The fused flush: total accesses, per-level hits, and the aggregate
    /// miss latency in two multiply-adds. `l2x`/`memx` are the cache's
    /// construction-time-precomputed per-miss cxw increments, so the sum
    /// equals the per-access reference arithmetic exactly (`k` identical
    /// integer increments collapse to one multiplication).
    #[inline]
    fn flush(&self, stats: &mut RunStats, cxw: &mut u64, l2x: u64, memx: u64) {
        let total = self.l1 + self.l2 + self.mem;
        if total == 0 {
            return;
        }
        stats.mem_accesses += total;
        stats.l1_hits += self.l1;
        stats.l2_hits += self.l2;
        *cxw += self.l2 * l2x + self.mem * memx;
    }
}

/// How an `aregion_begin` resolved (see [`Machine::region_begin`]).
enum BeginOut {
    /// The region was entered: execution falls through into the body.
    Entered,
    /// Control was redirected to this pc without entering (a governor
    /// de-speculation patch-out, or a targeted injected abort that fired
    /// the moment the checkpoint was armed).
    Redirect(usize),
}

#[derive(Debug)]
struct Frame<'p> {
    method: MethodId,
    /// The frame's compiled code, resolved once at call time so the per-uop
    /// fetch path is a plain slice index (no per-retired-uop map lookup).
    code: &'p CompiledCode,
    regs: Vec<i64>,
    pc: usize,
    ret_dst: Option<MReg>,
}

#[derive(Debug)]
struct RegionCtx {
    region: u32,
    method: MethodId,
    alt: usize,
    frame_depth: usize,
    /// Sparse register checkpoint: the values of exactly the registers in
    /// the region's write set, in that set's (sorted) order. Frames here
    /// can run to thousands of registers while a region writes a handful,
    /// so checkpointing the full file would dominate region cost.
    regs: Vec<i64>,
    env: EnvSnapshot,
    heap: HeapMark,
    undo: Vec<(HeapCell, i64)>,
    lines: LineSet,
    /// The last cache line recorded into `lines` — an MRU filter so runs of
    /// accesses to the same line (the common case: consecutive fields of
    /// one object) skip the set probe entirely.
    last_line: u64,
    start_uops: u64,
    /// Independent copy of the *full* register file, captured only in
    /// validation mode so the post-abort validator can verify the sparse
    /// restoration without trusting the rollback path (or the write-set
    /// analysis) it is checking.
    shadow_regs: Vec<i64>,
}

/// Per-static-region governor state: consecutive-abort streaks, the
/// exponential-backoff cooldown, and the region's position on the tier
/// ladder (see [`GovernorConfig`]).
#[derive(Debug, Clone, Copy)]
struct GovState {
    /// Consecutive aborts since the last commit or de-speculation.
    streak: u32,
    /// Consecutive `Overflow`/`Explicit` aborts — the evidence stream for
    /// adaptive re-formation (any other abort class resets it).
    reform_streak: u32,
    /// Consecutive commits since the last abort (the calm streak gating
    /// cooldown decay and tier de-escalation).
    calm: u64,
    /// Entries still to be patched straight to the alternate PC.
    skips_remaining: u64,
    /// Next de-speculation's cooldown length (doubles per de-speculation,
    /// halves per calm streak, bounded by the policy).
    cooldown: u64,
    /// Current ladder tier (0–3; 3 is permanent).
    tier: u8,
    /// Consecutive de-speculations — the tier-escalation evidence
    /// (decremented on calm de-escalation so a recovered region re-earns
    /// its way back up instead of snapping to the old tier).
    disables: u32,
    /// A [`ReformRequest`] has already been emitted for this region this
    /// run (at most one, so the harness sees a stable exclusion set).
    reform_sent: bool,
}

/// The machine.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    code: &'p CodeCache,
    cfg: HwConfig,
    /// The object heap.
    pub heap: Heap,
    /// Observable side effects (checksum, RNG, markers).
    pub env: Env,
    frames: Vec<Frame<'p>>,
    region: Option<RegionCtx>,
    cache: CacheSim,
    pred: Predictor,
    stats: RunStats,
    /// Cycles × width accumulator (integer arithmetic for determinism).
    cxw: u64,
    last_commit_cxw: u64,
    fuel: u64,
    fault_rng: u64,
    /// Precomputed `cfg.faults.any_per_uop()` so the per-uop hot path pays
    /// one branch when no probabilistic injection is armed.
    inject_per_uop: bool,
    /// Dynamic `aregion_begin` count (1-based), driving targeted injection.
    region_entries: u64,
    /// Online governor state per static region.
    gov: FxHashMap<(MethodId, u32), GovState>,
    /// The global fallback lock word's current state. In this
    /// single-threaded machine a software-path execution acquires and
    /// releases within one `aregion_begin` consult, so the lock is only
    /// ever *observed* held when an external holder set it via
    /// [`Machine::set_fallback_lock`] (the multi-core / test hook).
    fallback_lock: bool,
    /// Re-formation requests the governor has emitted and the harness has
    /// not yet drained ([`Machine::take_reform_requests`]).
    reform_requests: Vec<ReformRequest>,
    max_depth: usize,
    /// Retired register files, recycled across frame pushes so steady-state
    /// call linkage allocates nothing.
    reg_pool: Vec<Vec<i64>>,
    /// Undo-log buffer recycled across regions (only one region is ever in
    /// flight).
    spare_undo: Vec<(HeapCell, i64)>,
    /// Footprint-set buffer recycled across regions.
    spare_lines: Vec<u64>,
    /// Argument-marshalling buffer recycled across calls.
    arg_buf: Vec<i64>,
    /// Branch-target side-cache for indirect dispatch (`JmpInd`/`CallVirt`).
    btb: TargetCache,
    /// This core's attachment to a shared coherence directory, when the
    /// machine runs as one core of a multi-core fleet (DESIGN §17). `None`
    /// — the default — keeps every memory path bit-identical to the
    /// single-core machine.
    coh: Option<CoreLink>,
}

/// The lifetime-free pooled state of a retired [`Machine`]: every
/// steady-state allocation a machine accumulates (register files, region
/// scratch buffers, the cache arrays, predictor tables, the BTB), detached
/// from the program/code borrows so a service worker can carry it across
/// published code-cache versions. [`Machine::with_pools`] deterministically
/// resets everything it recycles — a pooled machine is bit-identical to a
/// fresh one.
#[derive(Debug, Default)]
pub struct MachinePools {
    reg_pool: Vec<Vec<i64>>,
    spare_undo: Vec<(HeapCell, i64)>,
    spare_lines: Vec<u64>,
    arg_buf: Vec<i64>,
    cache: Option<CacheSim>,
    pred: Option<Predictor>,
    btb: Option<TargetCache>,
}

impl MachinePools {
    /// Empty pools (the first request on a worker allocates cold).
    pub fn new() -> Self {
        MachinePools::default()
    }
}

impl<'p> Machine<'p> {
    /// Creates a machine over compiled code.
    pub fn new(program: &'p Program, code: &'p CodeCache, cfg: HwConfig) -> Self {
        Machine::with_pools(program, code, cfg, MachinePools::new())
    }

    /// Creates a machine over compiled code, recycling a retired machine's
    /// pooled allocations. Every recycled structure is reset to its
    /// construction state first, so execution is bit-identical to a machine
    /// built by [`Machine::new`] — the pools only save the allocations.
    pub fn with_pools(
        program: &'p Program,
        code: &'p CodeCache,
        cfg: HwConfig,
        mut pools: MachinePools,
    ) -> Self {
        let cache = match pools.cache.take() {
            Some(mut c) => {
                c.reset(&cfg);
                c
            }
            None => CacheSim::new(&cfg),
        };
        let pred = match pools.pred.take() {
            Some(mut p) => {
                p.reset();
                p
            }
            None => Predictor::new(),
        };
        let btb = match pools.btb.take() {
            Some(mut b) => {
                b.reset();
                b
            }
            None => TargetCache::new(),
        };
        pools.spare_undo.clear();
        pools.spare_lines.clear();
        pools.arg_buf.clear();
        if pools.spare_undo.capacity() == 0 {
            pools.spare_undo.reserve(64);
        }
        if pools.spare_lines.capacity() == 0 {
            pools.spare_lines.reserve(64);
        }
        let seed = cfg.faults.seed;
        let inject_per_uop = cfg.faults.any_per_uop();
        Machine {
            program,
            code,
            cfg,
            heap: Heap::new(),
            env: Env::default(),
            frames: Vec::new(),
            region: None,
            cache,
            pred,
            stats: RunStats::default(),
            cxw: 0,
            last_commit_cxw: 0,
            fuel: u64::MAX,
            fault_rng: seed | 1,
            inject_per_uop,
            region_entries: 0,
            gov: FxHashMap::default(),
            fallback_lock: false,
            reform_requests: Vec::new(),
            max_depth: 512,
            reg_pool: pools.reg_pool,
            spare_undo: pools.spare_undo,
            spare_lines: pools.spare_lines,
            arg_buf: pools.arg_buf,
            btb,
            coh: None,
        }
    }

    /// Retires the machine, returning its pooled allocations for the next
    /// [`Machine::with_pools`]. Live frames and an in-flight region (a run
    /// cut short by fuel exhaustion or a fault) fold their buffers back
    /// into the pools.
    pub fn into_pools(mut self) -> MachinePools {
        self.recycle_transient_state();
        MachinePools {
            reg_pool: self.reg_pool,
            spare_undo: self.spare_undo,
            spare_lines: self.spare_lines,
            arg_buf: self.arg_buf,
            cache: Some(self.cache),
            pred: Some(self.pred),
            btb: Some(self.btb),
        }
    }

    /// Resets the machine in place for the next request of a serving
    /// worker: all architectural state (heap, environment, frames), all
    /// speculative state (region context, cache speculative bits, MRU
    /// filter arm), all microarchitectural history (cache contents,
    /// predictors, BTB), and all per-request accounting (stats, cycle
    /// accumulators, fault RNG, governor ladder) return to construction
    /// state, while every steady-state allocation is kept. The subsequent
    /// run is bit-identical to one on a freshly constructed machine —
    /// which is also what makes per-request results independent of which
    /// worker served them, the property the service harness's shard
    /// conservation check rests on.
    pub fn reset_for_request(&mut self) {
        self.recycle_transient_state();
        self.heap = Heap::new();
        self.env = Env::default();
        self.cache.reset(&self.cfg);
        self.pred.reset();
        self.btb.reset();
        self.stats = RunStats::default();
        self.cxw = 0;
        self.last_commit_cxw = 0;
        self.fuel = u64::MAX;
        self.fault_rng = self.cfg.faults.seed | 1;
        self.region_entries = 0;
        self.gov.clear();
        self.fallback_lock = false;
        self.reform_requests.clear();
        self.arg_buf.clear();
        debug_assert_eq!(
            self.cross_request_state(),
            None,
            "reset_for_request left cross-request state behind"
        );
    }

    /// Drains live frames and an in-flight region context back into the
    /// recycling pools (shared by [`Machine::reset_for_request`] and
    /// [`Machine::into_pools`]).
    fn recycle_transient_state(&mut self) {
        while let Some(f) = self.frames.pop() {
            self.reg_pool.push(f.regs);
        }
        if let Some(r) = self.region.take() {
            let mut undo = r.undo;
            undo.clear();
            self.spare_undo = undo;
            self.spare_lines = r.lines.into_buffer();
        }
    }

    /// The first piece of cross-request state still live on this machine,
    /// or `None` when a new request would observe a pristine machine. The
    /// isolation oracle behind [`Machine::reset_for_request`]'s debug
    /// assertion and the service harness's tests: speculative cache lines,
    /// an armed MRU filter, governor ladder state, or any architectural
    /// residue here would leak one tenant's request into the next.
    pub fn cross_request_state(&self) -> Option<&'static str> {
        if self.region.is_some() {
            return Some("region context still in flight");
        }
        if !self.frames.is_empty() {
            return Some("frames not drained");
        }
        if self.cache.spec_lines() != 0 {
            return Some("speculative cache lines still marked");
        }
        if self.cache.mru_armed() {
            return Some("MRU line filter still armed");
        }
        if self.cache.pred_trained() {
            return Some("way predictor still trained");
        }
        if !self.gov.is_empty() {
            return Some("governor ladder map populated");
        }
        if self.region_entries != 0 {
            return Some("dynamic region-entry counter nonzero");
        }
        if !self.reform_requests.is_empty() {
            return Some("undrained re-formation requests");
        }
        if self.fallback_lock {
            return Some("fallback lock held");
        }
        if self.cxw != 0 || self.last_commit_cxw != 0 {
            return Some("cycle accumulator nonzero");
        }
        if self.stats != RunStats::default() {
            return Some("statistics not zeroed");
        }
        if self.env.checksum() != Env::default().checksum() {
            return Some("environment side effects present");
        }
        if self.fault_rng != (self.cfg.faults.seed | 1) {
            return Some("fault RNG advanced");
        }
        None
    }

    /// Limits the number of uops executed (tests).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Attaches this machine to a shared coherence directory as one core
    /// of a multi-core fleet (DESIGN §17): every data access will drain
    /// the core's mailbox and publish its intent, and remote collisions
    /// with this core's speculative lines abort its region organically.
    pub fn attach_core(&mut self, link: CoreLink) {
        self.coh = Some(link);
    }

    /// Detaches the core link, first draining any undelivered remote
    /// messages into the cache (quiesced — outside a region nothing can
    /// conflict). Returns `None` if no link was attached.
    pub fn detach_core(&mut self) -> Option<CoreLink> {
        let mut link = self.coh.take()?;
        link.drain_quiesced(&mut self.cache);
        Some(link)
    }

    /// The attached core link, if any (stats inspection).
    pub fn coherence(&self) -> Option<&CoreLink> {
        self.coh.as_ref()
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Seal-site way-predictor counters (DESIGN §16). Kept apart from
    /// [`Machine::stats`] on purpose: the predictor is a transparent
    /// micro-optimisation, and the equivalence gates assert [`RunStats`]
    /// equality between predicted and unpredicted configurations — these
    /// counters are the one place the two runs legitimately differ.
    pub fn way_pred_stats(&self) -> crate::stats::PredStats {
        self.cache.pred_stats()
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cxw / self.cfg.width
    }

    /// Sets the global fallback lock word's externally visible state — the
    /// hook for a (future multi-core, today test-harness) software-path
    /// holder outside this machine. While held, every tier-2+ speculative
    /// entry aborts at its subscription read with [`AbortReason::Sle`].
    pub fn set_fallback_lock(&mut self, held: bool) {
        self.fallback_lock = held;
    }

    /// Whether the global fallback lock word is currently held.
    pub fn fallback_lock_held(&self) -> bool {
        self.fallback_lock
    }

    /// Drains the governor's pending re-formation requests. The harness
    /// calls this between run quanta, re-runs region formation with each
    /// request's boundary excluded, recompiles, and reinstalls — after
    /// which the re-formed region starts a fresh run at tier 0.
    pub fn take_reform_requests(&mut self) -> Vec<ReformRequest> {
        std::mem::take(&mut self.reform_requests)
    }

    /// Runs the program's entry method.
    ///
    /// # Errors
    /// Returns a [`MachineFault`]: a wrapped [`VmError`] on a
    /// non-speculative trap, fuel exhaustion, or stack overflow; a
    /// structured hardware-misuse fault (e.g. `aregion_abort` outside a
    /// region) on malformed code; or an invariant violation when
    /// [`HwConfig::validate`] is set and a commit/abort left corrupted
    /// architectural state.
    pub fn run(&mut self, args: &[Value]) -> Result<Option<Value>, MachineFault> {
        let entry = self.program.entry();
        self.push_frame(
            entry,
            &args.iter().map(|v| v.encode()).collect::<Vec<_>>(),
            None,
        )?;
        let out = self.exec()?;
        self.stats.cycles = self.cycles();
        Ok(out)
    }

    fn push_frame(
        &mut self,
        m: MethodId,
        args: &[i64],
        ret_dst: Option<MReg>,
    ) -> Result<(), MachineFault> {
        if self.frames.len() >= self.max_depth {
            return Err(VmError::StackOverflow.into());
        }
        let code = self.code.get(m).ok_or(MachineFault::MethodNotCompiled(m))?;
        // Register-file size comes from lowering metadata, so a recycled
        // buffer reaches its steady-state capacity after one use.
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(code.regs as usize, 0);
        regs[..args.len()].copy_from_slice(args);
        self.frames.push(Frame {
            method: m,
            code,
            regs,
            pc: 0,
            ret_dst,
        });
        Ok(())
    }

    fn charge(&mut self, cycles: u64) {
        self.cxw += cycles * self.cfg.width;
    }

    /// Accounts the hidden uops of call/return linkage (argument
    /// marshalling, prologue/epilogue, vtable load). The abstract ISA's
    /// Call/Ret are single uops; real call linkage is not, and inlining's
    /// benefit depends on that cost.
    fn account_call_overhead(&mut self, uops: u64) {
        self.stats.uops += uops;
        self.cxw += uops;
        if self.region.is_some() {
            self.stats.region_uops += uops;
        }
    }

    fn pc_hash(m: MethodId, pc: usize) -> u64 {
        (u64::from(m.0) << 24) ^ pc as u64
    }

    /// The borrow-split core of [`Machine::mem_access`]: cache simulation,
    /// timing, speculative tracking, and overflow detection over the
    /// machine's disjoint fields, so the superblock interior loop can run it
    /// while holding the frame's register file borrowed. Returns `false` on
    /// region overflow — the caller must abort.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn mem_access_parts(
        cache: &mut CacheSim,
        stats: &mut RunStats,
        cxw: &mut u64,
        region: &mut Option<RegionCtx>,
        coh: &mut Option<CoreLink>,
        cfg: &HwConfig,
        site: u32,
        addr: u64,
        write: bool,
    ) -> bool {
        // Ablation: with the timing model off, every access is a free L1
        // hit and only the region footprint (and any injected line budget)
        // is tracked — quantifies the model's share of simulator runtime.
        if cfg.cache_off {
            stats.mem_accesses += 1;
            stats.l1_hits += 1;
            let mut overflowed = false;
            if let Some(r) = region.as_mut() {
                let line = cache.line_of(addr);
                if line != r.last_line {
                    r.last_line = line;
                    r.lines.insert(line);
                }
                let budget = cfg.faults.line_budget;
                overflowed = budget > 0 && r.lines.len() as u64 > budget;
            }
            return !overflowed;
        }
        // The coherence hook (DESIGN §17), strictly ordered drain → publish
        // → drain → access: undelivered remote ops are applied to the local
        // cache first (a colliding one bails out before this access touches
        // anything — the caller aborts through the overflow path with the
        // parked reason), then this access's intent is published so remote
        // cores see it before our own speculative bits can depend on it.
        // The re-drain after publish is what makes every conflicting
        // message a *signaled* one: publishing takes the line's stripe
        // lock, and every directory post rides some poster's stripe
        // critical section, so once publish returns, any message sampled
        // against our pre-registration state is already pending-visible —
        // and is applied here, before this access can mark the local bit
        // such a stale message would collide with.
        if let Some(link) = coh.as_mut() {
            if link.pending() && link.drain(cache).is_some() {
                return false;
            }
            link.publish(cache.line_of(addr), write, region.is_some());
            if link.pending() && link.drain(cache).is_some() {
                return false;
            }
        }
        let in_region = region.is_some();
        // The zero-cost tiers (DESIGN §12 MRU filter, §16 seal-site way
        // predictor): `Absorbed` is an L1 hit whose current-epoch
        // speculative bits already cover this access kind, so the set scan,
        // footprint update, and budget re-check are all skipped. Skipping
        // the footprint is sound because a current-epoch speculative bit can
        // only have been set by an earlier in-region call on the same line
        // (each region runs in its own epoch), which already recorded the
        // line and settled the line-budget verdict; the verdict only changes
        // when the footprint grows. `Resident` is a tag-validated predictor
        // hit whose speculative bits did *not* cover the access — the line
        // was just marked for the first time this region, so the footprint
        // insert and budget verdict below are still owed. With `cache_off`
        // neither tier engages, so the ablation path above stays
        // authoritative.
        match cache.fast_hit(site, addr, write, in_region) {
            Some(FastHit::Absorbed) => {
                stats.mem_accesses += 1;
                stats.l1_hits += 1;
                return true;
            }
            Some(FastHit::Resident) => {
                stats.mem_accesses += 1;
                stats.l1_hits += 1;
                let mut overflowed = false;
                if let Some(r) = region.as_mut() {
                    let line = cache.line_of(addr);
                    if line != r.last_line {
                        r.last_line = line;
                        r.lines.insert(line);
                    }
                    let budget = cfg.faults.line_budget;
                    overflowed = budget > 0 && r.lines.len() as u64 > budget;
                }
                return !overflowed;
            }
            None => {}
        }
        let (level, overflow) = cache.access_sited(site, addr, write, in_region);
        stats.mem_accesses += 1;
        match level {
            HitLevel::L1 => stats.l1_hits += 1,
            HitLevel::L2 => {
                stats.l2_hits += 1;
                *cxw += (cfg.l2_latency - cfg.l1_latency) / cfg.mlp * cfg.width;
            }
            HitLevel::Memory => {
                *cxw += (cfg.mem_latency - cfg.l1_latency) / cfg.mlp * cfg.width;
            }
        }
        let mut overflowed = false;
        if let Some(r) = region.as_mut() {
            let line = cache.line_of(addr);
            if line != r.last_line {
                r.last_line = line;
                r.lines.insert(line);
            }
            // The injected line budget models a smaller speculative cache:
            // it tightens the geometric overflow, never loosens it.
            let budget = cfg.faults.line_budget;
            overflowed = overflow || (budget > 0 && r.lines.len() as u64 > budget);
        }
        !overflowed
    }

    /// The bulk-accounting twin of [`Machine::mem_access_parts`]: identical
    /// cache-model traffic (absorbed tier, full path, region footprint,
    /// line-budget verdict — in the same order), but hit and latency
    /// statistics accumulate in the caller's per-block [`MemTally`] instead
    /// of being charged immediately. The superblock interior flushes the
    /// tally once per run (`HwConfig::batched_mem`); the per-access path
    /// stays the reference the batch-equivalence gates compare against.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn mem_probe(
        cache: &mut CacheSim,
        tally: &mut MemTally,
        region: &mut Option<RegionCtx>,
        coh: &mut Option<CoreLink>,
        cfg: &HwConfig,
        site: u32,
        addr: u64,
        write: bool,
    ) -> bool {
        if cfg.cache_off {
            tally.l1 += 1;
            let mut overflowed = false;
            if let Some(r) = region.as_mut() {
                let line = cache.line_of(addr);
                if line != r.last_line {
                    r.last_line = line;
                    r.lines.insert(line);
                }
                let budget = cfg.faults.line_budget;
                overflowed = budget > 0 && r.lines.len() as u64 > budget;
            }
            return !overflowed;
        }
        // Same coherence hook as [`Machine::mem_access_parts`] (drain →
        // publish → drain → access); see there for the ordering argument.
        if let Some(link) = coh.as_mut() {
            if link.pending() && link.drain(cache).is_some() {
                return false;
            }
            link.publish(cache.line_of(addr), write, region.is_some());
            if link.pending() && link.drain(cache).is_some() {
                return false;
            }
        }
        let in_region = region.is_some();
        match cache.fast_hit(site, addr, write, in_region) {
            Some(FastHit::Absorbed) => {
                tally.l1 += 1;
                return true;
            }
            Some(FastHit::Resident) => {
                tally.l1 += 1;
                let mut overflowed = false;
                if let Some(r) = region.as_mut() {
                    let line = cache.line_of(addr);
                    if line != r.last_line {
                        r.last_line = line;
                        r.lines.insert(line);
                    }
                    let budget = cfg.faults.line_budget;
                    overflowed = budget > 0 && r.lines.len() as u64 > budget;
                }
                return !overflowed;
            }
            None => {}
        }
        let (level, overflow) = cache.access_sited(site, addr, write, in_region);
        match level {
            HitLevel::L1 => tally.l1 += 1,
            HitLevel::L2 => tally.l2 += 1,
            HitLevel::Memory => tally.mem += 1,
        }
        let mut overflowed = false;
        if let Some(r) = region.as_mut() {
            let line = cache.line_of(addr);
            if line != r.last_line {
                r.last_line = line;
                r.lines.insert(line);
            }
            let budget = cfg.faults.line_budget;
            overflowed = overflow || (budget > 0 && r.lines.len() as u64 > budget);
        }
        !overflowed
    }

    /// Data-memory access bookkeeping: cache simulation, timing, speculative
    /// tracking, and overflow detection. Returns `Ok(false)` if the region
    /// overflowed (and was aborted).
    fn mem_access(&mut self, site: u32, addr: u64, write: bool) -> Result<bool, MachineFault> {
        let Machine {
            cache,
            stats,
            cxw,
            region,
            coh,
            cfg,
            ..
        } = self;
        if Self::mem_access_parts(cache, stats, cxw, region, coh, cfg, site, addr, write) {
            Ok(true)
        } else {
            let why = self.take_mem_abort_reason();
            self.abort(why)?;
            Ok(false)
        }
    }

    /// Why the last failed memory access bailed: a coherence conflict the
    /// core's link parked (`Conflict`, or `Sle` for the fallback-lock
    /// line), else a plain region overflow.
    fn take_mem_abort_reason(&mut self) -> AbortReason {
        self.coh
            .as_mut()
            .and_then(CoreLink::take_abort)
            .unwrap_or(AbortReason::Overflow)
    }

    /// Logs the old value of `cell` before a speculative store.
    fn log_undo(&mut self, cell: HeapCell) {
        if let Some(r) = self.region.as_mut() {
            r.undo.push((cell, self.heap.read_cell(cell)));
        }
    }

    fn abort(&mut self, reason: AbortReason) -> Result<(), MachineFault> {
        let Some(mut r) = self.region.take() else {
            let f = self.frames.last().expect("frame");
            return Err(MachineFault::AbortOutsideRegion {
                method: f.method,
                pc: f.pc,
            });
        };
        // Roll back memory (reverse order), allocations, environment,
        // registers; redirect to the alternate PC.
        for (cell, old) in r.undo.iter().rev() {
            self.heap.write_cell(*cell, *old);
        }
        self.heap.truncate(&r.heap);
        self.env.restore(&r.env);
        while self.frames.len() > r.frame_depth {
            let f = self.frames.pop().expect("frame");
            self.reg_pool.push(f.regs);
        }
        let frame = self.frames.last_mut().expect("frame");
        // Sparse rollback: only the region's writable registers (regions
        // contain no calls, so nothing else touches the frame) can differ
        // from the checkpoint — restoring exactly those is bit-identical
        // to swapping in a full-file copy.
        let code = frame.code;
        let writes = &code.region_writes[r.region as usize];
        for (&idx, &v) in writes.iter().zip(r.regs.iter()) {
            frame.regs[idx as usize] = v;
        }
        frame.pc = r.alt;
        let mut ckpt = std::mem::take(&mut r.regs);
        ckpt.clear();
        self.reg_pool.push(ckpt);
        self.cache.abort_region();
        // Withdraw directory speculative registrations only *after* the
        // flash-clear: a remote write that samples the registration before
        // this release finds a victim whose local bits are already gone —
        // classified as raced-with-abort, never a live claim it fails to
        // signal.
        if let Some(link) = self.coh.as_mut() {
            link.release_spec();
        }
        self.stats.aborts.record(reason);
        self.stats
            .per_region
            .counters_mut((r.method, r.region))
            .aborts += 1;
        if self.cfg.governor.enabled {
            // Evidence for abort-class-aware escalation: the region's
            // formation boundary (the stable cross-recompile identity the
            // harness excludes on re-formation) and the footprint it had
            // accumulated when it died.
            let boundary = code
                .region_boundaries
                .get(r.region as usize)
                .copied()
                .unwrap_or(u32::MAX);
            self.gov_on_abort(r.method, r.region, reason, boundary, r.lines.len() as u64);
        }
        if self.cfg.validate {
            self.validate_arch_state(&r, true)?;
        }
        r.undo.clear();
        self.spare_undo = r.undo;
        self.spare_lines = r.lines.into_buffer();
        self.charge(self.cfg.abort_penalty);
        Ok(())
    }

    /// A safety-check failure: an exception abort inside a region, a VM trap
    /// outside.
    fn trap_or_abort(&mut self, trap: Trap) -> Result<(), MachineFault> {
        if self.region.is_some() {
            self.abort(AbortReason::Exception)
        } else {
            let f = self.frames.last().expect("frame");
            Err(VmError::Trap {
                trap,
                method: f.method,
                pc: f.pc,
            }
            .into())
        }
    }

    /// The tier a region with `disables` consecutive de-speculations sits
    /// at: the first de-speculation puts it at tier 1 (backoff),
    /// `tier2_disables` of them escalate to tier 2 (fallback-lock
    /// subscription), `tier3_disables` more to tier 3 (permanent software
    /// path). A zero threshold disables that rung of the ladder.
    fn ladder_tier(policy: &GovernorConfig, disables: u32) -> u8 {
        let mut tier = 1;
        if policy.tier2_disables > 0 && disables >= policy.tier2_disables {
            tier = 2;
            if policy.tier3_disables > 0
                && disables >= policy.tier2_disables + policy.tier3_disables
            {
                tier = 3;
            }
        }
        tier
    }

    /// Governor bookkeeping on an abort — abort-class-aware ladder
    /// escalation:
    ///
    /// * `Interrupt`/`Spurious` are environmental noise: no streak growth,
    ///   no calm reset — a noisy-interrupt workload can no longer demote a
    ///   healthy region.
    /// * `Overflow`/`Explicit` additionally grow the re-formation streak;
    ///   at `reform_budget` consecutive ones a [`ReformRequest`] is emitted
    ///   (once per region) so the harness can recompile with the offending
    ///   boundary excluded instead of demoting the region forever.
    /// * Every streak-growing class counts toward de-speculation: at the
    ///   retry budget the region is patched out for `cooldown` entries, the
    ///   next cooldown doubles (bounded), and the consecutive-disable count
    ///   walks the region up the tier ladder.
    fn gov_on_abort(
        &mut self,
        method: MethodId,
        region: u32,
        reason: AbortReason,
        boundary: u32,
        footprint_lines: u64,
    ) {
        if matches!(reason, AbortReason::Interrupt | AbortReason::Spurious) {
            return;
        }
        let policy = &self.cfg.governor;
        let key = (method, region);
        if !self.gov.contains_key(&key) {
            // First tracked abort: the region enters the ladder at tier 0.
            self.stats.tier_enters[0] += 1;
            self.stats.tier_live[0] += 1;
        }
        let g = self.gov.entry(key).or_insert(GovState {
            streak: 0,
            reform_streak: 0,
            calm: 0,
            skips_remaining: 0,
            cooldown: policy.cooldown_entries,
            tier: 0,
            disables: 0,
            reform_sent: false,
        });
        g.streak += 1;
        g.calm = 0;
        let reformable = matches!(reason, AbortReason::Overflow | AbortReason::Explicit);
        if reformable {
            g.reform_streak += 1;
        } else {
            g.reform_streak = 0;
        }
        let emit_reform = reformable
            && policy.reform_budget > 0
            && !g.reform_sent
            && g.reform_streak >= policy.reform_budget;
        if emit_reform {
            g.reform_sent = true;
        }
        if g.streak >= policy.retry_budget {
            g.skips_remaining = g.cooldown;
            g.cooldown = (g.cooldown.saturating_mul(2)).min(policy.max_cooldown);
            g.streak = 0;
            g.disables += 1;
            self.stats.governor_disables += 1;
            let target = Self::ladder_tier(policy, g.disables).max(g.tier);
            if target != g.tier {
                self.stats.tier_exits[g.tier as usize] += 1;
                self.stats.tier_live[g.tier as usize] -= 1;
                self.stats.tier_enters[target as usize] += 1;
                self.stats.tier_live[target as usize] += 1;
                g.tier = target;
                self.stats.per_region.counters_mut(key).tier = target;
            }
        }
        if emit_reform {
            self.stats.reform_requests += 1;
            self.reform_requests.push(ReformRequest {
                method,
                region,
                boundary,
                reason,
                footprint_lines,
            });
        }
    }

    /// Governor bookkeeping on a commit: the abort and re-formation streaks
    /// reset, and a calm streak of `cooldown_entries` consecutive commits
    /// halves the cooldown back toward its base *and de-escalates the
    /// region one tier* (tier 3 is permanent) — so a region that genuinely
    /// recovered from a transient fault burst climbs back down the ladder,
    /// while one still aborting a substantial fraction of its entries
    /// (which never stays calm that long) keeps backing off exponentially.
    fn gov_on_commit(&mut self, method: MethodId, region: u32) {
        if let Some(g) = self.gov.get_mut(&(method, region)) {
            g.streak = 0;
            g.reform_streak = 0;
            g.calm += 1;
            if g.calm >= self.cfg.governor.cooldown_entries {
                g.calm = 0;
                g.cooldown = (g.cooldown / 2).max(self.cfg.governor.cooldown_entries);
                if g.tier > 0 && g.tier < 3 {
                    let target = g.tier - 1;
                    self.stats.tier_exits[g.tier as usize] += 1;
                    self.stats.tier_live[g.tier as usize] -= 1;
                    self.stats.tier_enters[target as usize] += 1;
                    self.stats.tier_live[target as usize] += 1;
                    g.tier = target;
                    // Re-earn escalations: the disable count steps back with
                    // the tier instead of snapping the region straight back
                    // up on its next de-speculation.
                    g.disables = g.disables.saturating_sub(1);
                    self.stats.governor_recoveries += 1;
                    self.stats.per_region.counters_mut((method, region)).tier = target;
                }
            }
        }
    }

    /// Executes an `aregion_begin` at `pc`: governor consult, entry stalls,
    /// sparse write-set checkpoint, region-context arming, and targeted
    /// injection — shared verbatim by the per-uop `step` arm and the block
    /// engine's inline terminator, so region-entry semantics cannot drift.
    fn region_begin(
        &mut self,
        method: MethodId,
        pc: usize,
        region: u32,
        alt: usize,
    ) -> Result<BeginOut, MachineFault> {
        if self.region.is_some() {
            return Err(MachineFault::NestedRegion { method, pc });
        }
        // Governor consult: a de-speculated region's begin is patched to
        // branch straight to its alternate PC — the non-speculative version
        // runs with zero region overhead. A tier-3 region is patched out
        // permanently; a tier-2 region's software path additionally runs
        // under the global fallback lock (the write conflicts out any
        // subscribed speculative execution — in this single-threaded
        // machine the acquire/release pair collapses to one store).
        // Healthy regions have no governor state, so the fast path stays a
        // single failing map probe. `tier` survives the consult to arm the
        // tier-2 subscription after the checkpoint below.
        let mut tier: u8 = 0;
        if self.cfg.governor.enabled {
            if let Some(g) = self.gov.get_mut(&(method, region)) {
                tier = g.tier;
                self.stats.tier_time[tier as usize] += 1;
                let software_path = if tier >= 3 {
                    true
                } else if g.skips_remaining > 0 {
                    g.skips_remaining -= 1;
                    if g.skips_remaining == 0 {
                        self.stats.governor_reenables += 1;
                    }
                    true
                } else {
                    false
                };
                if software_path {
                    self.stats.governor_skips += 1;
                    self.stats
                        .per_region
                        .counters_mut((method, region))
                        .gov_skips += 1;
                    if tier >= 2 {
                        self.stats.lock_holds += 1;
                        self.mem_access(NO_SITE, FALLBACK_LOCK_ADDR, true)?;
                    }
                    return Ok(BeginOut::Redirect(alt));
                }
            }
        }
        self.charge(self.cfg.begin_stall);
        if self.cfg.single_inflight {
            // Stall at decode until the previous region drains.
            let drain = self.cfg.window / self.cfg.width;
            let gap = (self.cxw - self.last_commit_cxw) / self.cfg.width;
            if gap < drain {
                self.charge(drain - gap);
            }
        }
        // Sparse checkpoint into a pooled buffer: only the region's
        // precomputed write set needs saving (see the `RegionCtx`
        // field docs); the previous region's undo-log / footprint
        // allocations are reused.
        let mut ckpt = self.reg_pool.pop().unwrap_or_default();
        ckpt.clear();
        let f = self.frames.last().expect("frame");
        let writes = &f.code.region_writes[region as usize];
        ckpt.extend(writes.iter().map(|&r| f.regs[r as usize]));
        // The shadow checkpoint is validator-only state: an
        // independent full register-file copy the rollback path
        // never touches, so sparse restoration can be cross-checked
        // against the complete pre-region file.
        let shadow_regs = if self.cfg.validate {
            f.regs.clone()
        } else {
            Vec::new()
        };
        let mut undo = std::mem::take(&mut self.spare_undo);
        undo.clear();
        self.region = Some(RegionCtx {
            region,
            method,
            alt,
            frame_depth: self.frames.len(),
            regs: ckpt,
            env: self.env.snapshot(),
            heap: self.heap.alloc_mark(),
            undo,
            lines: LineSet::from_buffer(std::mem::take(&mut self.spare_lines)),
            last_line: u64::MAX,
            start_uops: self.stats.uops,
            shadow_regs,
        });
        self.stats.per_region.counters_mut((method, region)).entries += 1;
        // Tier-2 fallback-lock subscription: read the lock word into the
        // region's read-set, so a software-path writer's coherence
        // invalidation conflicts this execution out. The read is a real
        // region access — it occupies a footprint line and can itself
        // overflow a tight injected budget. If the lock is already held by
        // an external software-path execution, entering would race the
        // holder, so the entry aborts straight to the alternate path (Sle:
        // a lock-word check found the lock taken).
        if tier >= 2 {
            self.stats.lock_subscriptions += 1;
            if !self.mem_access(NO_SITE, FALLBACK_LOCK_ADDR, false)? {
                return Ok(BeginOut::Redirect(alt));
            }
            if self.fallback_lock {
                self.stats.lock_held_aborts += 1;
                self.abort(AbortReason::Sle)?;
                return Ok(BeginOut::Redirect(alt));
            }
        }
        // Targeted injection: abort exactly the Nth dynamic
        // entry, the moment the checkpoint is armed.
        self.region_entries += 1;
        if self.cfg.faults.abort_at_entry == Some(self.region_entries) {
            self.abort(AbortReason::Spurious)?;
            return Ok(BeginOut::Redirect(alt));
        }
        Ok(BeginOut::Entered)
    }

    /// Executes an `aregion_end` at `pc`: flash-clear commit, statistics,
    /// validation, governor bookkeeping, and buffer recycling — shared
    /// verbatim by the per-uop `step` arm and the block engine's inline
    /// terminator.
    fn region_end(&mut self, method: MethodId, pc: usize, region: u32) -> Result<(), MachineFault> {
        let Some(mut r) = self.region.take() else {
            return Err(MachineFault::EndOutsideRegion { method, pc });
        };
        debug_assert_eq!(r.region, region);
        self.cache.commit_region();
        // Directory release strictly after the epoch bump — see the abort
        // path for the conservation argument.
        if let Some(link) = self.coh.as_mut() {
            link.release_spec();
        }
        self.stats.commits += 1;
        self.stats
            .region_sizes
            .record(self.stats.uops - r.start_uops);
        self.stats.region_footprint.record(r.lines.len() as u64);
        self.last_commit_cxw = self.cxw;
        if self.cfg.validate {
            self.validate_arch_state(&r, false)?;
        }
        if self.cfg.governor.enabled {
            self.gov_on_commit(r.method, r.region);
        }
        // Recycle the region's buffers for the next one.
        r.undo.clear();
        self.spare_undo = r.undo;
        self.spare_lines = r.lines.into_buffer();
        self.reg_pool.push(r.regs);
        Ok(())
    }

    /// The §3 atomicity contract, checked mechanically after a commit or an
    /// abort: speculative cache state flash-cleared, the frame stack back at
    /// checkpoint depth, region counters consistent — and after an abort,
    /// the PC at the alternate path, the register file bit-identical to an
    /// independently captured shadow checkpoint, the allocation frontier and
    /// environment restored, and every undo-logged cell holding its
    /// pre-region value.
    fn validate_arch_state(&mut self, r: &RegionCtx, aborted: bool) -> Result<(), MachineFault> {
        fn violated(what: &'static str, detail: String) -> Result<(), MachineFault> {
            Err(MachineFault::InvariantViolation { what, detail })
        }
        let spec = self.cache.spec_lines();
        if spec != 0 {
            return violated("spec-bits", format!("{spec} lines still speculative"));
        }
        if self.frames.len() != r.frame_depth {
            return violated(
                "frame-depth",
                format!(
                    "depth {} != checkpoint {}",
                    self.frames.len(),
                    r.frame_depth
                ),
            );
        }
        let entries: u64 = self.stats.per_region.values().map(|c| c.entries).sum();
        let resolved = self.stats.commits + self.stats.aborts.total();
        if entries != resolved {
            return violated(
                "region-counters",
                format!("{entries} entries != {} commits + aborts", resolved),
            );
        }
        // Ladder accounting: per tier, every transition in is balanced by a
        // transition out or a still-live region, and the live counters must
        // match an exact recount of the governor table.
        let mut census = [0u64; 4];
        for g in self.gov.values() {
            census[g.tier as usize] += 1;
        }
        for (t, &tier_census) in census.iter().enumerate() {
            let (en, ex, live) = (
                self.stats.tier_enters[t],
                self.stats.tier_exits[t],
                self.stats.tier_live[t],
            );
            if en != ex + live || live != tier_census {
                return violated(
                    "tier-counters",
                    format!(
                        "tier {t}: {en} enters != {ex} exits + {live} live \
                         (governor table holds {tier_census})"
                    ),
                );
            }
        }
        if aborted {
            let frame = self.frames.last().expect("frame");
            if frame.pc != r.alt {
                return violated("alt-pc", format!("pc {} != alt {}", frame.pc, r.alt));
            }
            if frame.regs != r.shadow_regs {
                return violated(
                    "registers",
                    format!(
                        "register file differs from shadow checkpoint at index {:?}",
                        frame
                            .regs
                            .iter()
                            .zip(&r.shadow_regs)
                            .position(|(a, b)| a != b)
                    ),
                );
            }
            if self.heap.alloc_mark() != r.heap {
                return violated("alloc-frontier", "allocation mark not restored".into());
            }
            if self.env.snapshot() != r.env {
                return violated("env", "environment snapshot not restored".into());
            }
            // Every undo-logged cell must hold its pre-region value. The log
            // may contain the same cell several times; reverse-order
            // application leaves the *first* logged (oldest) value, so only
            // each cell's first occurrence is checked. Cells of objects
            // allocated inside the region no longer exist after the frontier
            // rollback and are skipped.
            let live = self.heap.len();
            let mut seen = std::collections::HashSet::new();
            for (cell, old) in &r.undo {
                if !seen.insert(*cell) {
                    continue;
                }
                let obj = match *cell {
                    HeapCell::Field(o, _) | HeapCell::Elem(o, _) | HeapCell::Lock(o) => o,
                };
                if obj.0 as usize >= live {
                    continue;
                }
                let now = self.heap.read_cell(*cell);
                if now != *old {
                    return violated(
                        "undo-log",
                        format!("cell {cell:?} holds {now}, expected pre-region {old}"),
                    );
                }
            }
        }
        self.stats.validations += 1;
        Ok(())
    }

    fn obj(&mut self, bits: i64) -> Result<ObjId, VmError> {
        match Value::decode(bits) {
            Value::Ref(Some(o)) => Ok(o),
            Value::Ref(None) => {
                // A null reaching a memory uop means a NullCheck was removed
                // unsoundly — surface it loudly rather than masking it.
                let f = self.frames.last().expect("frame");
                Err(VmError::Trap {
                    trap: Trap::NullPointer,
                    method: f.method,
                    pc: f.pc,
                })
            }
            Value::Int(_) => {
                let f = self.frames.last().expect("frame");
                Err(VmError::TypeMismatch {
                    method: f.method,
                    pc: f.pc,
                    what: "expected ref",
                })
            }
        }
    }

    /// Dispatch selector. The superblock hot path requires that nothing
    /// observes state *between* the uops of a straight-line run:
    /// probabilistic/interval fault injection draws once per retired
    /// in-region uop, and the invariant validator audits the reference
    /// interleaving — either forces the per-uop path, keeping
    /// injected-fault campaigns bit-identical by construction.
    fn exec(&mut self) -> Result<Option<Value>, MachineFault> {
        if self.cfg.dispatch == Dispatch::Superblock && !self.inject_per_uop && !self.cfg.validate {
            self.exec_superblock()
        } else {
            self.exec_per_uop()
        }
    }

    /// Rolls back the batched accounting of a block's unexecuted suffix
    /// after a mid-block redirect (in-region abort, overflow, or trap at an
    /// interior uop): totals return to exactly what the per-uop reference
    /// would have recorded at the redirect point.
    fn unapply_suffix(&mut self, suffix: &SbInfo, was_in_region: bool) {
        let n = u64::from(suffix.len);
        self.fuel += n;
        self.stats.uops -= n;
        self.cxw -= n;
        self.stats.uop_classes.unapply_delta(&suffix.classes);
        if was_in_region {
            self.stats.region_uops -= n;
        }
    }

    /// Refunds the bulk charge for the `n` static-run followers the
    /// interior loop never reached: a redirect (trap, abort, overflow)
    /// between a sealed poll run's head and its last poll leaves accesses
    /// charged that the per-access reference would not yet have performed.
    /// The refund is statistics-only by construction — a follower's
    /// cache-state effect is empty (the head's probe armed the filter and
    /// speculative bits that absorb it), so subtracting the L1-hit charge
    /// restores exact agreement with the reference at the redirect point.
    fn unapply_precharge(&mut self, n: u32) {
        let n = u64::from(n);
        self.stats.mem_accesses -= n;
        self.stats.l1_hits -= n;
    }

    /// The superblock interior executor: retires the straight-line uops in
    /// `i..term` under one set of field borrows — register file, heap,
    /// cache, and region context all resolved once — inlining the hot
    /// register, check, memory, and intrinsic kinds. Anything about to trap
    /// bails out *before* its side effects with [`Interior::Slow`] so the
    /// caller can replay it through the shared [`Machine::step`] semantics;
    /// region overflow (whose cache access cannot be replayed) surfaces as
    /// [`Interior::Overflow`].
    ///
    /// Under `HwConfig::batched_mem` (`BATCHED` — a const generic, so each
    /// accounting discipline compiles to a lean loop with no dead twin
    /// inlined into its memory arms; only the configured instantiation is
    /// ever fetched) the memory arms account through a per-run [`MemTally`]
    /// flushed once on every exit path, and `Poll` uops execute the sealed
    /// static access plan: the head of a statically resolved run probes the
    /// cache model once and bulk-charges the followers, which `precharged`
    /// then skips. `precharged` lives in the caller so the count survives
    /// slow-path replay re-entries within one block and can be refunded
    /// exactly on a mid-block redirect.
    #[allow(clippy::too_many_lines)]
    #[inline]
    fn run_interior<const BATCHED: bool>(
        &mut self,
        code: &'p CompiledCode,
        mut i: usize,
        term: usize,
        precharged: &mut u32,
    ) -> Interior {
        let program = self.program;
        let Machine {
            frames,
            heap,
            cache,
            stats,
            region,
            coh,
            cfg,
            cxw,
            env,
            ..
        } = self;
        debug_assert_eq!(cfg.batched_mem, BATCHED);
        let frame = frames.last_mut().expect("frame");
        let regs = &mut frame.regs;
        let batched = BATCHED;
        let (l2x, memx) = (cache.l2_extra_cxw, cache.mem_extra_cxw);
        let mut tally = MemTally::default();
        // Routes one access through the discipline the instantiation
        // selects: the deferred-tally fast path, or the immediate
        // per-access reference accounting. `BATCHED` is const, so the
        // untaken branch is compiled out of every arm.
        macro_rules! probe {
            ($addr:expr, $write:expr) => {{
                // The uop's sealed seal site (way-predictor slot, DESIGN
                // §16) rides in the superblock index the plan was built
                // from; non-memory uops never reach this macro.
                let site = code.blocks[i].mem_site;
                if BATCHED {
                    Self::mem_probe(cache, &mut tally, region, coh, cfg, site, $addr, $write)
                } else {
                    Self::mem_access_parts(cache, stats, cxw, region, coh, cfg, site, $addr, $write)
                }
            }};
        }
        let out = loop {
            if i >= term {
                break Interior::Done;
            }
            match code.uops[i] {
                Uop::Const { dst, imm } => regs[dst.0 as usize] = imm,
                Uop::ConstNull { dst } => regs[dst.0 as usize] = Value::NULL.encode(),
                Uop::Mov { dst, src } => regs[dst.0 as usize] = regs[src.0 as usize],
                Uop::Alu { op, dst, a, b } => {
                    // Trapping ops (div/rem) evaluate side-effect-free, so a
                    // trap can still bail to the shared slow path exactly.
                    match op.eval(regs[a.0 as usize], regs[b.0 as usize]) {
                        Some(v) => regs[dst.0 as usize] = v,
                        None => break Interior::Slow(i),
                    }
                }
                Uop::CmpSet { op, dst, a, b } => {
                    regs[dst.0 as usize] =
                        i64::from(op.eval_int(regs[a.0 as usize], regs[b.0 as usize]));
                }
                Uop::CheckNull { v } => {
                    if Value::decode(regs[v.0 as usize]) == Value::NULL {
                        break Interior::Slow(i);
                    }
                }
                Uop::CheckBounds { len, idx } => {
                    let (l, x) = (regs[len.0 as usize], regs[idx.0 as usize]);
                    if x < 0 || x >= l {
                        break Interior::Slow(i);
                    }
                }
                Uop::CheckDiv { v } => {
                    if regs[v.0 as usize] == 0 {
                        break Interior::Slow(i);
                    }
                }
                Uop::CheckCast { obj, class } => {
                    if let Value::Ref(Some(o)) = Value::decode(regs[obj.0 as usize]) {
                        if !program.is_subclass(heap.class_of(o), class) {
                            break Interior::Slow(i);
                        }
                    }
                }
                Uop::InstOf { dst, obj, class } => {
                    let is = match Value::decode(regs[obj.0 as usize]) {
                        Value::Ref(Some(o)) => program.is_subclass(heap.class_of(o), class),
                        _ => false,
                    };
                    regs[dst.0 as usize] = i64::from(is);
                }
                Uop::LoadField { dst, obj, field } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[obj.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let (addr, slot) = heap.field_slot(o, field);
                    if !probe!(addr, false) {
                        break Interior::Overflow(i);
                    }
                    regs[dst.0 as usize] = slot.encode();
                }
                Uop::StoreField { obj, field, src } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[obj.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let (addr, slot) = heap.field_slot(o, field);
                    if !probe!(addr, true) {
                        break Interior::Overflow(i);
                    }
                    if let Some(r) = region.as_mut() {
                        r.undo.push((HeapCell::Field(o, field), slot.encode()));
                    }
                    *slot = Value::decode(regs[src.0 as usize]);
                }
                Uop::LoadElem { dst, arr, idx } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[arr.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let (addr, slot) = heap.elem_slot(o, regs[idx.0 as usize] as u32);
                    if !probe!(addr, false) {
                        break Interior::Overflow(i);
                    }
                    regs[dst.0 as usize] = slot.encode();
                }
                Uop::StoreElem { arr, idx, src } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[arr.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let j = regs[idx.0 as usize] as u32;
                    let (addr, slot) = heap.elem_slot(o, j);
                    if !probe!(addr, true) {
                        break Interior::Overflow(i);
                    }
                    if let Some(r) = region.as_mut() {
                        r.undo.push((HeapCell::Elem(o, j), slot.encode()));
                    }
                    *slot = Value::decode(regs[src.0 as usize]);
                }
                Uop::LoadLen { dst, arr } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[arr.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let (addr, len) = heap.len_slot(o);
                    if !probe!(addr, false) {
                        break Interior::Overflow(i);
                    }
                    regs[dst.0 as usize] = len as i64;
                }
                Uop::LoadClass { dst, obj } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[obj.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let addr = heap.addr_of_header(o);
                    if !probe!(addr, false) {
                        break Interior::Overflow(i);
                    }
                    regs[dst.0 as usize] = i64::from(heap.class_of(o).0);
                }
                Uop::LoadLock { dst, obj } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[obj.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let cell = HeapCell::Lock(o);
                    let addr = heap.addr_of(cell);
                    if !probe!(addr, false) {
                        break Interior::Overflow(i);
                    }
                    regs[dst.0 as usize] = heap.read_cell(cell);
                }
                Uop::StoreLock { obj, src } => {
                    let Value::Ref(Some(o)) = Value::decode(regs[obj.0 as usize]) else {
                        break Interior::Slow(i);
                    };
                    let cell = HeapCell::Lock(o);
                    let addr = heap.addr_of(cell);
                    if !probe!(addr, true) {
                        break Interior::Overflow(i);
                    }
                    if let Some(r) = region.as_mut() {
                        r.undo.push((cell, heap.read_cell(cell)));
                    }
                    heap.write_cell(cell, regs[src.0 as usize]);
                }
                Uop::Poll => {
                    if batched && *precharged > 0 {
                        // A follower of an already-charged static run: its
                        // L1 hit was bulk-charged at the run's head, and its
                        // cache-state effect is empty (the head's probe
                        // armed the filter/speculative bits that absorb it).
                        *precharged -= 1;
                    } else {
                        if !probe!(YIELD_FLAG_ADDR, false) {
                            break Interior::Overflow(i);
                        }
                        if batched {
                            // Execute the sealed static plan: the head's
                            // probe just resolved residency and the budget
                            // verdict for the run's one line, so the
                            // remaining `run - 1` polls are L1 hits by
                            // construction — charge them now, skip them
                            // as they retire.
                            let run = u32::from(code.blocks[i].poll_run);
                            if run > 1 {
                                tally.l1 += u64::from(run) - 1;
                                *precharged = run - 1;
                            }
                        }
                    }
                }
                Uop::Intrin {
                    kind,
                    dst,
                    ref args,
                } => match kind {
                    Intrinsic::Checksum => env.checksum_push(regs[args[0].0 as usize]),
                    Intrinsic::NextRandom => {
                        let v = env.next_random();
                        if let Some(d) = dst {
                            regs[d.0 as usize] = v;
                        }
                    }
                    Intrinsic::YieldFlag => {
                        if let Some(d) = dst {
                            regs[d.0 as usize] = 0;
                        }
                    }
                },
                // Allocation, trapping ALU, and anything else: the shared
                // step path handles it.
                _ => break Interior::Slow(i),
            }
            i += 1;
        };
        tally.flush(stats, cxw, l2x, memx);
        out
    }

    /// The chained batched-dispatch hot path: retire decoded superblocks
    /// block-to-block without leaving the engine. Each iteration charges the
    /// block's precomputed fuel/stats delta once, runs the straight-line
    /// prefix under one register-file borrow, then follows the *sealed*
    /// terminator link ([`SbTerm`]): direct and conditional successors,
    /// region entry/commit/abort, and call/return frame transitions all
    /// resolve inline on locally cached `(method, pc, code)` state — the
    /// frame stack is consulted only when a frame actually changes, and the
    /// shared [`Machine::step`] path is reserved for trap replay,
    /// indirect-table misses, and `Unreachable`.
    ///
    /// The accounting invariant that makes the batch exact: the per-uop
    /// reference charges each uop *before* executing its action, so
    /// charging all `n` uops at block entry agrees with it at every point
    /// where the counters are observable (terminators and markers), and a
    /// redirect at interior uop `i` only needs `blocks[i + 1]` — precisely
    /// the unexecuted suffix — subtracted again. A mid-chain abort (assert,
    /// overflow, trap-turned-abort) therefore lands on exactly the totals
    /// the reference would have recorded at the redirect point, after which
    /// the chain resynchronizes from the frame stack and keeps going.
    #[allow(clippy::too_many_lines)]
    fn exec_superblock(&mut self) -> Result<Option<Value>, MachineFault> {
        // The chain's cached dispatch state: authoritative between frame
        // transitions (`self.frames` pcs may lag until a slow path syncs).
        let (mut method, mut pc, mut code) = {
            let f = self.frames.last().expect("frame");
            (f.method, f.pc, f.code)
        };
        /// Re-caches the chain state from the frame stack after a path that
        /// redirected through it (abort, trap replay, governor patch-out).
        macro_rules! resync {
            () => {{
                let f = self.frames.last().expect("frame");
                method = f.method;
                pc = f.pc;
                code = f.code;
            }};
        }
        loop {
            let sb = &code.blocks[pc];
            let n = u64::from(sb.len);
            if n == 0 {
                // Markers live outside blocks: architecturally inert and
                // free, they snapshot the retired-uop and cycle counters.
                let Uop::Marker { id } = code.uops[pc] else {
                    unreachable!("len-0 superblock on a non-marker uop")
                };
                self.env.hit_marker(id);
                let ordinal = self.env.marker_count(id);
                let snap = MarkerSnap {
                    id,
                    ordinal,
                    uops: self.stats.uops,
                    cycles: self.cycles(),
                };
                self.stats.markers.push(snap);
                pc += 1;
                continue;
            }
            if self.fuel < n {
                // Within one block of exhaustion: the reference path finds
                // the exact uop the fuel runs out on.
                self.frames.last_mut().expect("frame").pc = pc;
                return self.exec_per_uop();
            }
            // The whole block's accounting, batched.
            self.fuel -= n;
            self.stats.uops += n;
            self.cxw += n;
            self.stats.uop_classes.apply_delta(&sb.classes);
            let in_region = self.region.is_some();
            if in_region {
                self.stats.region_uops += n;
            }
            let term = pc + sb.len as usize - 1;
            let sterm = sb.term;
            if pc < term {
                let mut i = pc;
                let mut redirected = false;
                // Static-run followers bulk-charged but not yet retired;
                // survives slow-path replay re-entries, and is refunded on
                // any redirect out of the block (see `unapply_precharge`).
                let mut precharged: u32 = 0;
                while i < term {
                    let interior = if self.cfg.batched_mem {
                        self.run_interior::<true>(code, i, term, &mut precharged)
                    } else {
                        self.run_interior::<false>(code, i, term, &mut precharged)
                    };
                    match interior {
                        Interior::Done => break,
                        // A trap-bound or unspecialized interior uop: keep
                        // the frame pc exact for trap provenance, then
                        // replay it through the shared semantics (the fast
                        // path bailed before any side effect, so replaying
                        // is exact).
                        Interior::Slow(j) => {
                            self.frames.last_mut().expect("frame").pc = j;
                            match self.step(&code.uops[j], method, j) {
                                Ok(StepOut::Next(_)) => {
                                    // Only allocation falls through here,
                                    // and allocations break static runs at
                                    // seal time — no run can span the bail.
                                    debug_assert_eq!(precharged, 0);
                                    i = j + 1;
                                }
                                Ok(StepOut::Redirect) => {
                                    self.unapply_suffix(&code.blocks[j + 1], in_region);
                                    self.unapply_precharge(precharged);
                                    redirected = true;
                                    break;
                                }
                                Ok(StepOut::Return(_)) => {
                                    unreachable!("return is a block terminator")
                                }
                                Err(e) => {
                                    self.unapply_suffix(&code.blocks[j + 1], in_region);
                                    self.unapply_precharge(precharged);
                                    return Err(e);
                                }
                            }
                        }
                        // The cache already recorded the access when
                        // overflow was detected (and for a coherence
                        // conflict the line is already gone), so this
                        // cannot be replayed — abort here, exactly as the
                        // reference path's `mem_access` would, with the
                        // parked conflict reason when a drain bailed the
                        // probe. Overflow can only surface at a run's head
                        // (followers never probe), so there is never a
                        // precharge to refund.
                        Interior::Overflow(j) => {
                            debug_assert_eq!(precharged, 0);
                            let why = self.take_mem_abort_reason();
                            if let Err(e) = self.abort(why) {
                                self.unapply_suffix(&code.blocks[j + 1], in_region);
                                return Err(e);
                            }
                            self.unapply_suffix(&code.blocks[j + 1], in_region);
                            redirected = true;
                            break;
                        }
                    }
                }
                if redirected {
                    resync!();
                    continue;
                }
                // A clean exit retires every uop of the run, including every
                // follower of every charged static run.
                debug_assert_eq!(precharged, 0);
            }
            // Follow the sealed terminator link. Every arm mirrors the
            // corresponding [`Machine::step`] semantics exactly; the shared
            // region helpers *are* the step arms.
            match sterm {
                SbTerm::Jmp { next } => pc = next as usize,
                SbTerm::Br { op, a, b, taken } => {
                    let Machine {
                        frames,
                        stats,
                        pred,
                        cxw,
                        cfg,
                        ..
                    } = &mut *self;
                    let regs = &frames.last().expect("frame").regs;
                    let (x, y) = (regs[a.0 as usize], regs[b.0 as usize]);
                    let t = op.eval_int(x, y);
                    stats.branches += 1;
                    if !pred.branch(Self::pc_hash(method, term), t) {
                        stats.mispredicts += 1;
                        *stats.mispredict_sites.entry((method.0, term)).or_insert(0) += 1;
                        *cxw += cfg.mispredict_penalty * cfg.width;
                    }
                    pc = if t { taken as usize } else { term + 1 };
                }
                SbTerm::Ret { src } => {
                    // Epilogue: frame teardown + return-address handling,
                    // with the register file recycled through the pool.
                    self.account_call_overhead(2);
                    debug_assert!(
                        self.region.is_none()
                            || self.region.as_ref().expect("region").frame_depth
                                == self.frames.len(),
                        "region must not span returns"
                    );
                    let frame = self.frames.pop().expect("frame");
                    let v = src.map(|r| frame.regs[r.0 as usize]);
                    if self.frames.is_empty() {
                        self.stats.cycles = self.cycles();
                        return Ok(v.map(Value::decode));
                    }
                    let caller = self.frames.last_mut().expect("frame");
                    if let Some(d) = frame.ret_dst {
                        caller.regs[d.0 as usize] = v.unwrap_or(0);
                    }
                    method = caller.method;
                    pc = caller.pc;
                    code = caller.code;
                    self.reg_pool.push(frame.regs);
                }
                SbTerm::RegionBegin { region, alt } => {
                    match self.region_begin(method, term, region, alt as usize)? {
                        BeginOut::Entered => pc = term + 1,
                        BeginOut::Redirect(t) => pc = t,
                    }
                }
                SbTerm::RegionEnd { region } => {
                    self.region_end(method, term, region)?;
                    pc = term + 1;
                }
                SbTerm::Abort { assert_id } => {
                    // `abort` reads the frame pc only on the misuse
                    // (no-region) error path; keep it exact for the report.
                    self.frames.last_mut().expect("frame").pc = term;
                    let reason = if assert_id == u32::MAX {
                        AbortReason::Sle
                    } else {
                        AbortReason::Explicit
                    };
                    self.abort(reason)?;
                    resync!();
                }
                SbTerm::Decode => match code.uops[term] {
                    Uop::JmpInd {
                        sel,
                        ref table,
                        default,
                    } => {
                        let Machine {
                            frames,
                            stats,
                            pred,
                            btb,
                            cxw,
                            cfg,
                            ..
                        } = &mut *self;
                        let v = frames.last().expect("frame").regs[sel.0 as usize];
                        let site = Self::pc_hash(method, term);
                        let target = match btb.lookup(site, v) {
                            Some(t) => t,
                            None => {
                                let t = if v >= 0 && (v as usize) < table.len() {
                                    table[v as usize]
                                } else {
                                    default
                                };
                                btb.insert(site, v, t);
                                t
                            }
                        };
                        stats.indirects += 1;
                        if !pred.indirect(site, target as u64) {
                            stats.indirect_misses += 1;
                            *cxw += cfg.mispredict_penalty * cfg.width;
                        }
                        pc = target;
                    }
                    Uop::Call {
                        dst,
                        target,
                        ref args,
                    } => {
                        debug_assert!(self.region.is_none(), "call inside atomic region");
                        // Frame setup: argument marshalling + prologue uops.
                        self.account_call_overhead(args.len() as u64 + 2);
                        if self.frames.len() >= self.max_depth {
                            return Err(VmError::StackOverflow.into());
                        }
                        let callee = self
                            .code
                            .get(target)
                            .ok_or(MachineFault::MethodNotCompiled(target))?;
                        // Pooled push with the arguments copied caller →
                        // callee directly — no marshalling buffer between.
                        let mut regs = self.reg_pool.pop().unwrap_or_default();
                        regs.clear();
                        regs.resize(callee.regs as usize, 0);
                        let caller = self.frames.last_mut().expect("frame");
                        for (i, r) in args.iter().enumerate() {
                            regs[i] = caller.regs[r.0 as usize];
                        }
                        caller.pc = term + 1;
                        self.frames.push(Frame {
                            method: target,
                            code: callee,
                            regs,
                            pc: 0,
                            ret_dst: dst,
                        });
                        method = target;
                        code = callee;
                        pc = 0;
                    }
                    Uop::CallVirt {
                        dst,
                        slot,
                        recv,
                        ref args,
                    } if matches!(
                        Value::decode(self.frames.last().expect("frame").regs[recv.0 as usize]),
                        Value::Ref(Some(_))
                    ) =>
                    {
                        debug_assert!(self.region.is_none(), "call inside atomic region");
                        let rbits = self.frames.last().expect("frame").regs[recv.0 as usize];
                        let Value::Ref(Some(ro)) = Value::decode(rbits) else {
                            unreachable!("guard checked the receiver")
                        };
                        let class = self.heap.class_of(ro);
                        // Virtual-call sites are overwhelmingly monomorphic:
                        // the side-cache memoizes the vtable walk per
                        // (site, class). A vtable slot never changes, so a
                        // hit is transparent.
                        let site = Self::pc_hash(method, term);
                        let target = match self.btb.lookup(site, i64::from(class.0)) {
                            Some(t) => MethodId(t as u32),
                            None => {
                                let t = self.program.resolve_virtual(class, slot);
                                self.btb.insert(site, i64::from(class.0), t.0 as usize);
                                t
                            }
                        };
                        // Frame setup + vtable load.
                        self.account_call_overhead(args.len() as u64 + 4);
                        // Virtual dispatch is an indirect branch.
                        self.stats.indirects += 1;
                        if !self.pred.indirect(site, u64::from(target.0)) {
                            self.stats.indirect_misses += 1;
                            self.charge(self.cfg.mispredict_penalty);
                        }
                        if self.frames.len() >= self.max_depth {
                            return Err(VmError::StackOverflow.into());
                        }
                        let callee = self
                            .code
                            .get(target)
                            .ok_or(MachineFault::MethodNotCompiled(target))?;
                        let mut regs = self.reg_pool.pop().unwrap_or_default();
                        regs.clear();
                        regs.resize(callee.regs as usize, 0);
                        let caller = self.frames.last_mut().expect("frame");
                        regs[0] = rbits;
                        for (i, r) in args.iter().enumerate() {
                            regs[i + 1] = caller.regs[r.0 as usize];
                        }
                        caller.pc = term + 1;
                        self.frames.push(Frame {
                            method: target,
                            code: callee,
                            regs,
                            pc: 0,
                            ret_dst: dst,
                        });
                        method = target;
                        code = callee;
                        pc = 0;
                    }
                    // Null/non-ref virtual receivers (exact trap provenance),
                    // `Unreachable`, and blocks sealed early by markers or
                    // end-of-stream: the shared step path handles them.
                    ref u => {
                        self.frames.last_mut().expect("frame").pc = term;
                        match self.step(u, method, term)? {
                            StepOut::Next(np) => self.frames.last_mut().expect("frame").pc = np,
                            StepOut::Redirect => {}
                            StepOut::Return(v) => {
                                self.stats.cycles = self.cycles();
                                return Ok(v);
                            }
                        }
                        resync!();
                    }
                },
            }
        }
    }

    /// The reference interpretation: fetch, account, and execute one uop at
    /// a time. This is the only path that can observe state between the
    /// uops of a straight-line run, so per-uop fault injection and the
    /// invariant validator always run here.
    fn exec_per_uop(&mut self) -> Result<Option<Value>, MachineFault> {
        loop {
            if self.fuel == 0 {
                return Err(VmError::FuelExhausted.into());
            }
            let (method, pc, code) = {
                let f = self.frames.last().expect("frame");
                (f.method, f.pc, f.code)
            };
            // Fetch by reference — the code cache outlives the machine, so
            // the uop (including any JmpInd table or call argument list) is
            // dispatched in place, never cloned, and the frame carries its
            // method's code so there is no per-uop map lookup.
            let uop: &'p Uop = &code.uops[pc];

            // Markers are architecturally inert and free.
            if let Uop::Marker { id } = *uop {
                self.env.hit_marker(id);
                let ordinal = self.env.marker_count(id);
                let snap = MarkerSnap {
                    id,
                    ordinal,
                    uops: self.stats.uops,
                    cycles: self.cycles(),
                };
                self.stats.markers.push(snap);
                self.frames.last_mut().expect("frame").pc += 1;
                continue;
            }

            self.fuel -= 1;
            self.stats.uops += 1;
            self.stats.uop_classes.record(uop.class());
            self.cxw += 1;
            if self.region.is_some() {
                self.stats.region_uops += 1;
                if self.inject_per_uop {
                    // Interrupt injection (best-effort hardware).
                    let interval = self.cfg.faults.interrupt_interval;
                    if interval > 0 && self.stats.uops.is_multiple_of(interval) {
                        self.abort(AbortReason::Interrupt)?;
                        continue;
                    }
                    let conflict = self.cfg.faults.conflict_per_miljon;
                    let spurious = self.cfg.faults.spurious_per_miljon;
                    if conflict > 0 || spurious > 0 {
                        self.fault_rng = self
                            .fault_rng
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        // Coherence conflict injection.
                        if conflict > 0 && (self.fault_rng >> 11) % 1_000_000 < conflict {
                            self.abort(AbortReason::Conflict)?;
                            continue;
                        }
                        // Spurious hardware aborts (independent bits of the
                        // same draw, so the streams don't correlate).
                        if spurious > 0 && (self.fault_rng >> 29) % 1_000_000 < spurious {
                            self.abort(AbortReason::Spurious)?;
                            continue;
                        }
                    }
                }
            }

            match self.step(uop, method, pc)? {
                StepOut::Next(np) => self.frames.last_mut().expect("frame").pc = np,
                StepOut::Redirect => {}
                StepOut::Return(v) => {
                    self.stats.cycles = self.cycles();
                    return Ok(v);
                }
            }
        }
    }

    /// Executes one uop's architectural action — shared verbatim by both
    /// dispatch paths, so their semantics cannot drift. Accounting (fuel,
    /// stats, injection) is the caller's job; `pc` is the uop's own offset,
    /// and the frame's pc field already equals it (trap provenance relies
    /// on that).
    #[allow(clippy::too_many_lines)]
    #[inline]
    fn step(&mut self, uop: &'p Uop, method: MethodId, pc: usize) -> Result<StepOut, MachineFault> {
        let mut next_pc = pc + 1;
        macro_rules! regs {
            () => {
                self.frames.last_mut().expect("frame").regs
            };
        }
        /// Read a register without a mutable borrow (usable as an
        /// argument to `&mut self` methods).
        macro_rules! rval {
            ($r:expr) => {
                self.frames.last().expect("frame").regs[$r.0 as usize]
            };
        }
        /// The executing uop's seal site (way-predictor slot, DESIGN §16),
        /// from the sealed superblock index. Non-memory uops that still
        /// touch the cache model (allocation header writes) carry
        /// `NO_SITE` there, so one macro serves every arm.
        macro_rules! msite {
            () => {
                self.frames.last().expect("frame").code.blocks[pc].mem_site
            };
        }
        match *uop {
            Uop::Const { dst, imm } => regs!()[dst.0 as usize] = imm,
            Uop::ConstNull { dst } => regs!()[dst.0 as usize] = Value::NULL.encode(),
            Uop::Mov { dst, src } => {
                let v = regs!()[src.0 as usize];
                regs!()[dst.0 as usize] = v;
            }
            Uop::Alu { op, dst, a, b } => {
                let (x, y) = (regs!()[a.0 as usize], regs!()[b.0 as usize]);
                match op.eval(x, y) {
                    Some(v) => regs!()[dst.0 as usize] = v,
                    None => {
                        // Division by zero past its CheckDiv: impossible
                        // for correct lowering; treat as a trap.
                        self.trap_or_abort(Trap::DivByZero)?;
                        return Ok(StepOut::Redirect);
                    }
                }
            }
            Uop::CmpSet { op, dst, a, b } => {
                let (x, y) = (regs!()[a.0 as usize], regs!()[b.0 as usize]);
                regs!()[dst.0 as usize] = i64::from(op.eval_int(x, y));
            }
            Uop::Jmp { target } => next_pc = target,
            Uop::Br { op, a, b, target } => {
                let (x, y) = (regs!()[a.0 as usize], regs!()[b.0 as usize]);
                let taken = op.eval_int(x, y);
                self.stats.branches += 1;
                if !self.pred.branch(Self::pc_hash(method, pc), taken) {
                    self.stats.mispredicts += 1;
                    *self
                        .stats
                        .mispredict_sites
                        .entry((method.0, pc))
                        .or_insert(0) += 1;
                    self.charge(self.cfg.mispredict_penalty);
                }
                if taken {
                    next_pc = target;
                }
            }
            Uop::JmpInd {
                sel,
                ref table,
                default,
            } => {
                let v = regs!()[sel.0 as usize];
                // Monomorphic dispatch sites hit the branch-target
                // side-cache and skip the table walk; the table lookup
                // is a pure function of (site, selector), so a hit is
                // semantically transparent.
                let site = Self::pc_hash(method, pc);
                next_pc = match self.btb.lookup(site, v) {
                    Some(t) => t,
                    None => {
                        let t = if v >= 0 && (v as usize) < table.len() {
                            table[v as usize]
                        } else {
                            default
                        };
                        self.btb.insert(site, v, t);
                        t
                    }
                };
                self.stats.indirects += 1;
                if !self.pred.indirect(site, next_pc as u64) {
                    self.stats.indirect_misses += 1;
                    self.charge(self.cfg.mispredict_penalty);
                }
            }
            Uop::LoadField { dst, obj, field } => {
                let o = self.obj(rval!(obj))?;
                let cell = HeapCell::Field(o, field);
                if !self.mem_access(msite!(), self.heap.addr_of(cell), false)? {
                    return Ok(StepOut::Redirect);
                }
                regs!()[dst.0 as usize] = self.heap.read_cell(cell);
            }
            Uop::StoreField { obj, field, src } => {
                let o = self.obj(rval!(obj))?;
                let cell = HeapCell::Field(o, field);
                if !self.mem_access(msite!(), self.heap.addr_of(cell), true)? {
                    return Ok(StepOut::Redirect);
                }
                self.log_undo(cell);
                let v = regs!()[src.0 as usize];
                self.heap.write_cell(cell, v);
            }
            Uop::LoadElem { dst, arr, idx } => {
                let o = self.obj(rval!(arr))?;
                let i = regs!()[idx.0 as usize] as u32;
                let cell = HeapCell::Elem(o, i);
                if !self.mem_access(msite!(), self.heap.addr_of(cell), false)? {
                    return Ok(StepOut::Redirect);
                }
                regs!()[dst.0 as usize] = self.heap.read_cell(cell);
            }
            Uop::StoreElem { arr, idx, src } => {
                let o = self.obj(rval!(arr))?;
                let i = regs!()[idx.0 as usize] as u32;
                let cell = HeapCell::Elem(o, i);
                if !self.mem_access(msite!(), self.heap.addr_of(cell), true)? {
                    return Ok(StepOut::Redirect);
                }
                self.log_undo(cell);
                let v = regs!()[src.0 as usize];
                self.heap.write_cell(cell, v);
            }
            Uop::LoadLen { dst, arr } => {
                let o = self.obj(rval!(arr))?;
                if !self.mem_access(msite!(), self.heap.addr_of_len(o), false)? {
                    return Ok(StepOut::Redirect);
                }
                let n = self.heap.array_len(o).expect("array") as i64;
                regs!()[dst.0 as usize] = n;
            }
            Uop::LoadLock { dst, obj } => {
                let o = self.obj(rval!(obj))?;
                let cell = HeapCell::Lock(o);
                if !self.mem_access(msite!(), self.heap.addr_of(cell), false)? {
                    return Ok(StepOut::Redirect);
                }
                regs!()[dst.0 as usize] = self.heap.read_cell(cell);
            }
            Uop::StoreLock { obj, src } => {
                let o = self.obj(rval!(obj))?;
                let cell = HeapCell::Lock(o);
                if !self.mem_access(msite!(), self.heap.addr_of(cell), true)? {
                    return Ok(StepOut::Redirect);
                }
                self.log_undo(cell);
                let v = regs!()[src.0 as usize];
                self.heap.write_cell(cell, v);
            }
            Uop::LoadClass { dst, obj } => {
                let o = self.obj(rval!(obj))?;
                if !self.mem_access(msite!(), self.heap.addr_of_header(o), false)? {
                    return Ok(StepOut::Redirect);
                }
                regs!()[dst.0 as usize] = i64::from(self.heap.class_of(o).0);
            }
            Uop::AllocObj { dst, class } => {
                let n = self.program.class(class).field_count();
                let o = self.heap.alloc_object(class, n);
                if !self.mem_access(msite!(), self.heap.addr_of_header(o), true)? {
                    return Ok(StepOut::Redirect);
                }
                regs!()[dst.0 as usize] = Value::from(o).encode();
            }
            Uop::AllocArr { dst, len } => {
                let n = regs!()[len.0 as usize];
                if n < 0 {
                    self.trap_or_abort(Trap::OutOfBounds)?;
                    return Ok(StepOut::Redirect);
                }
                let o = self.heap.alloc_array(n as usize);
                if !self.mem_access(msite!(), self.heap.addr_of_header(o), true)? {
                    return Ok(StepOut::Redirect);
                }
                regs!()[dst.0 as usize] = Value::from(o).encode();
            }
            Uop::CheckNull { v } => {
                if Value::decode(regs!()[v.0 as usize]) == Value::NULL {
                    self.trap_or_abort(Trap::NullPointer)?;
                    return Ok(StepOut::Redirect);
                }
            }
            Uop::CheckBounds { len, idx } => {
                let (l, i) = (regs!()[len.0 as usize], regs!()[idx.0 as usize]);
                if i < 0 || i >= l {
                    self.trap_or_abort(Trap::OutOfBounds)?;
                    return Ok(StepOut::Redirect);
                }
            }
            Uop::CheckDiv { v } => {
                if regs!()[v.0 as usize] == 0 {
                    self.trap_or_abort(Trap::DivByZero)?;
                    return Ok(StepOut::Redirect);
                }
            }
            Uop::CheckCast { obj, class } => {
                let bits = regs!()[obj.0 as usize];
                if let Value::Ref(Some(o)) = Value::decode(bits) {
                    if !self.program.is_subclass(self.heap.class_of(o), class) {
                        self.trap_or_abort(Trap::ClassCast)?;
                        return Ok(StepOut::Redirect);
                    }
                }
            }
            Uop::InstOf { dst, obj, class } => {
                let bits = regs!()[obj.0 as usize];
                let is = match Value::decode(bits) {
                    Value::Ref(Some(o)) => self.program.is_subclass(self.heap.class_of(o), class),
                    _ => false,
                };
                regs!()[dst.0 as usize] = i64::from(is);
            }
            Uop::Call {
                dst,
                target,
                ref args,
            } => {
                debug_assert!(self.region.is_none(), "call inside atomic region");
                // Frame setup: argument marshalling + prologue uops.
                self.account_call_overhead(args.len() as u64 + 2);
                let mut argv = std::mem::take(&mut self.arg_buf);
                argv.clear();
                argv.extend(args.iter().map(|r| regs!()[r.0 as usize]));
                self.frames.last_mut().expect("frame").pc = next_pc;
                self.push_frame(target, &argv, dst)?;
                argv.clear();
                self.arg_buf = argv;
                return Ok(StepOut::Redirect);
            }
            Uop::CallVirt {
                dst,
                slot,
                recv,
                ref args,
            } => {
                debug_assert!(self.region.is_none(), "call inside atomic region");
                let ro = self.obj(rval!(recv))?;
                let class = self.heap.class_of(ro);
                // Virtual-call sites are overwhelmingly monomorphic: the
                // side-cache memoizes the vtable walk per (site, class).
                // A vtable slot never changes, so a hit is transparent.
                let site = Self::pc_hash(method, pc);
                let target = match self.btb.lookup(site, i64::from(class.0)) {
                    Some(t) => MethodId(t as u32),
                    None => {
                        let t = self.program.resolve_virtual(class, slot);
                        self.btb.insert(site, i64::from(class.0), t.0 as usize);
                        t
                    }
                };
                // Frame setup + vtable load.
                self.account_call_overhead(args.len() as u64 + 4);
                let mut argv = std::mem::take(&mut self.arg_buf);
                argv.clear();
                argv.push(regs!()[recv.0 as usize]);
                argv.extend(args.iter().map(|r| regs!()[r.0 as usize]));
                // Virtual dispatch is an indirect branch.
                self.stats.indirects += 1;
                if !self.pred.indirect(site, u64::from(target.0)) {
                    self.stats.indirect_misses += 1;
                    self.charge(self.cfg.mispredict_penalty);
                }
                self.frames.last_mut().expect("frame").pc = next_pc;
                self.push_frame(target, &argv, dst)?;
                argv.clear();
                self.arg_buf = argv;
                return Ok(StepOut::Redirect);
            }
            Uop::Ret { src } => {
                // Epilogue: frame teardown + return-address handling.
                self.account_call_overhead(2);
                let v = src.map(|r| regs!()[r.0 as usize]);
                debug_assert!(
                    self.region.is_none()
                        || self.region.as_ref().expect("region").frame_depth == self.frames.len(),
                    "region must not span returns"
                );
                let frame = self.frames.pop().expect("frame");
                if self.frames.is_empty() {
                    return Ok(StepOut::Return(v.map(Value::decode)));
                }
                if let Some(d) = frame.ret_dst {
                    self.frames.last_mut().expect("frame").regs[d.0 as usize] = v.unwrap_or(0);
                }
                self.reg_pool.push(frame.regs);
                return Ok(StepOut::Redirect);
            }
            Uop::RegionBegin { region, alt } => {
                match self.region_begin(method, pc, region, alt)? {
                    BeginOut::Entered => {}
                    BeginOut::Redirect(t) => {
                        self.frames.last_mut().expect("frame").pc = t;
                        return Ok(StepOut::Redirect);
                    }
                }
            }
            Uop::RegionEnd { region } => self.region_end(method, pc, region)?,
            Uop::Abort { assert_id } => {
                let reason = if assert_id == u32::MAX {
                    AbortReason::Sle
                } else {
                    AbortReason::Explicit
                };
                self.abort(reason)?;
                return Ok(StepOut::Redirect);
            }
            Uop::Poll => {
                if !self.mem_access(msite!(), YIELD_FLAG_ADDR, false)? {
                    return Ok(StepOut::Redirect);
                }
            }
            Uop::Intrin {
                kind,
                dst,
                ref args,
            } => match kind {
                Intrinsic::Checksum => {
                    let v = regs!()[args[0].0 as usize];
                    self.env.checksum_push(v);
                }
                Intrinsic::NextRandom => {
                    let v = self.env.next_random();
                    if let Some(d) = dst {
                        regs!()[d.0 as usize] = v;
                    }
                }
                Intrinsic::YieldFlag => {
                    if let Some(d) = dst {
                        regs!()[d.0 as usize] = 0;
                    }
                }
            },
            Uop::Marker { .. } => unreachable!("handled above"),
            Uop::Unreachable { why } => {
                panic!("executed unreachable uop: {why} at {}:{pc}", method.0)
            }
        }
        Ok(StepOut::Next(next_pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_opt::{compile_program, CompilerConfig};
    use hasp_vm::builder::ProgramBuilder;
    use hasp_vm::bytecode::{BinOp, CmpOp};
    use hasp_vm::interp::Interp;
    use hasp_vm::profile::Profile;

    /// Profiles a program with the interpreter, compiles every method under
    /// `cfg`, and returns (interpreter checksum, machine, profile run result)
    /// for comparison.
    pub(super) fn run_both(
        p: &Program,
        ccfg: &CompilerConfig,
        hw: HwConfig,
    ) -> (i64, Option<Value>, i64, Option<Value>, RunStats) {
        let mut interp = Interp::new(p).with_profiling();
        interp.set_fuel(200_000_000);
        let iret = interp.run(&[]).expect("interp");
        let icks = interp.env.checksum();
        let profile: Profile = interp.profile;

        let compiled = compile_program(p, &profile, ccfg);
        let mut cc = CodeCache::new();
        for (m, c) in &compiled {
            cc.install(*m, crate::lower::lower(&c.func));
        }
        let mut mach = Machine::new(p, &cc, hw);
        mach.set_fuel(500_000_000);
        let mret = mach.run(&[]).expect("machine");
        let mcks = mach.env.checksum();
        let stats = mach.stats().clone();
        (icks, iret, mcks, mret, stats)
    }

    /// The Figure 2 `addElement`-style workload: hot path with redundant
    /// checks, a cold overflow branch, a synchronized helper.
    pub(super) fn add_element_program(n: i64, chunk: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Vec", None, &["cached", "i", "chunk_size", "total"]);
        let f_cached = pb.field(c, "cached");
        let f_i = pb.field(c, "i");
        let f_cs = pb.field(c, "chunk_size");
        let f_total = pb.field(c, "total");

        // synchronized add(v, x): total += x
        let mut s = pb.method("Vec.add", 2);
        s.set_synchronized();
        let t = s.reg();
        s.get_field(t, s.arg(0), f_total);
        s.bin(BinOp::Add, t, t, s.arg(1));
        s.put_field(s.arg(0), f_total, t);
        s.ret(None);
        let add = s.finish(&mut pb);

        let mut m = pb.method("main", 0);
        let v = m.reg();
        m.new_obj(v, c);
        let cap = m.imm(chunk);
        let arr = m.reg();
        m.new_array(arr, cap);
        m.put_field(v, f_cached, arr);
        m.put_field(v, f_cs, cap);
        let zero = m.imm(0);
        m.put_field(v, f_i, zero);
        let nn = m.imm(n);
        let k = m.imm(0);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        let cold = m.new_label();
        let join = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, k, nn, exit);
        let i = m.reg();
        m.get_field(i, v, f_i);
        let cs = m.reg();
        m.get_field(cs, v, f_cs);
        m.branch(CmpOp::Ge, i, cs, cold);
        let cached = m.reg();
        m.get_field(cached, v, f_cached);
        m.astore(cached, i, k);
        let i2 = m.reg();
        m.bin(BinOp::Add, i2, i, one);
        m.put_field(v, f_i, i2);
        m.call(None, add, &[v, k]);
        m.jump(join);
        m.bind(cold);
        // Wrap around: reset index (exercised when chunk < n).
        m.put_field(v, f_i, zero);
        m.jump(join);
        m.bind(join);
        m.bin(BinOp::Add, k, k, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        let total = m.reg();
        m.get_field(total, v, f_total);
        m.checksum(total);
        let iv = m.reg();
        m.get_field(iv, v, f_i);
        m.checksum(iv);
        m.ret(Some(total));
        let entry = m.finish(&mut pb);
        pb.finish(entry)
    }

    #[test]
    fn baseline_matches_interpreter() {
        let p = add_element_program(3000, 1 << 20);
        let (icks, iret, mcks, mret, _) =
            run_both(&p, &CompilerConfig::no_atomic(), HwConfig::baseline());
        assert_eq!(icks, mcks);
        assert_eq!(iret, mret);
    }

    #[test]
    fn atomic_matches_interpreter_and_commits_regions() {
        let p = add_element_program(3000, 1 << 20);
        let (icks, iret, mcks, mret, stats) =
            run_both(&p, &CompilerConfig::atomic(), HwConfig::baseline());
        assert_eq!(icks, mcks, "atomic config must preserve semantics");
        assert_eq!(iret, mret);
        assert!(
            stats.commits > 100,
            "hot loop must run in regions: {}",
            stats.commits
        );
        assert!(stats.coverage() > 0.3, "coverage {}", stats.coverage());
    }

    #[test]
    fn atomic_reduces_uops() {
        let p = add_element_program(3000, 1 << 20);
        let (_, _, _, _, base) = run_both(&p, &CompilerConfig::no_atomic(), HwConfig::baseline());
        let (_, _, _, _, atom) = run_both(&p, &CompilerConfig::atomic(), HwConfig::baseline());
        assert!(
            atom.uops < base.uops,
            "atomic should remove redundant work: {} vs {}",
            atom.uops,
            base.uops
        );
        assert!(
            atom.cycles < base.cycles,
            "{} vs {}",
            atom.cycles,
            base.cycles
        );
    }

    #[test]
    fn abort_path_preserves_semantics() {
        // chunk < n: the "cold" overflow branch fires every `chunk`
        // iterations (bias 0.2%, below the 1% cold threshold); in the atomic
        // config this is an assert -> abort -> non-speculative re-execution.
        // Results must be identical.
        let p = add_element_program(20_000, 500);
        let (icks, iret, mcks, mret, stats) =
            run_both(&p, &CompilerConfig::atomic(), HwConfig::baseline());
        assert_eq!(icks, mcks, "aborts must be transparent");
        assert_eq!(iret, mret);
        assert!(
            stats.total_aborts() >= 10,
            "wraparound must abort: {:?}",
            stats.aborts
        );
        assert!(
            stats.aborts.get(AbortReason::Explicit) > 0,
            "{:?}",
            stats.aborts
        );
    }

    #[test]
    fn conflicts_and_interrupts_are_transparent() {
        let p = add_element_program(2000, 1 << 20);
        let mut hw = HwConfig::baseline();
        hw.faults.conflict_per_miljon = 500; // aggressive conflict injection
        hw.faults.interrupt_interval = 10_000;
        let (icks, _, mcks, _, stats) = run_both(&p, &CompilerConfig::atomic(), hw);
        assert_eq!(icks, mcks, "conflict/interrupt aborts must be transparent");
        assert!(
            stats.aborts.get(AbortReason::Conflict) > 0
                || stats.aborts.get(AbortReason::Interrupt) > 0,
            "expected injected aborts: {:?}",
            stats.aborts
        );
    }

    #[test]
    fn overflow_aborts_are_transparent() {
        // A loop touching a large array region-internally: the footprint
        // exceeds one L1 set's speculative capacity -> overflow aborts.
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let cap = m.imm(100_000);
        let arr = m.reg();
        m.new_array(arr, cap);
        let i = m.imm(0);
        let n = m.imm(50_000);
        let one = m.imm(1);
        let stride = m.imm(512); // 512 elements * 8B = 4KB stride = same L1 set
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        let idx = m.reg();
        m.bin(BinOp::Mul, idx, i, stride);
        let wrapped = m.reg();
        m.bin(BinOp::Rem, wrapped, idx, cap);
        m.astore(arr, wrapped, i);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        let probe = m.imm(0);
        let out = m.reg();
        m.aload(out, arr, probe);
        m.checksum(out);
        m.checksum(i);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let (icks, _, mcks, _, stats) =
            run_both(&p, &CompilerConfig::atomic(), HwConfig::baseline());
        assert_eq!(icks, mcks);
        // Either whole-loop encapsulation overflowed, or per-iteration
        // regions were chosen; both are acceptable, but with 4KB strides a
        // whole-loop region cannot survive.
        if stats.commits == 0 {
            assert!(
                stats.aborts.get(AbortReason::Overflow) > 0,
                "{:?}",
                stats.aborts
            );
        }
    }

    #[test]
    fn synchronized_methods_execute_correctly() {
        // Nested synchronized calls on the same receiver (recursive locking).
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, &["v"]);
        let fv = pb.field(c, "v");
        let inner = pb.declare("C.inner", 1);
        let mut s2 = pb.method("C.inner", 1);
        s2.set_synchronized();
        let t = s2.reg();
        s2.get_field(t, s2.arg(0), fv);
        let one = s2.imm(1);
        s2.bin(BinOp::Add, t, t, one);
        s2.put_field(s2.arg(0), fv, t);
        s2.ret(None);
        s2.finish(&mut pb);
        let mut s1 = pb.method("C.outer", 1);
        s1.set_synchronized();
        s1.call(None, inner, &[s1.arg(0)]);
        s1.ret(None);
        let outer = s1.finish(&mut pb);

        let mut m = pb.method("main", 0);
        let o = m.reg();
        m.new_obj(o, c);
        let i = m.imm(0);
        let n = m.imm(500);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        m.call(None, outer, &[o]);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        let out = m.reg();
        m.get_field(out, o, fv);
        m.checksum(out);
        m.ret(Some(out));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        for ccfg in CompilerConfig::paper_configs() {
            let (icks, iret, mcks, mret, _) = run_both(&p, &ccfg, HwConfig::baseline());
            assert_eq!(icks, mcks, "config {}", ccfg.name);
            assert_eq!(iret, mret, "config {}", ccfg.name);
        }
    }

    #[test]
    fn all_paper_configs_match_interpreter() {
        let p = add_element_program(2500, 300);
        for ccfg in CompilerConfig::paper_configs() {
            let (icks, iret, mcks, mret, _) = run_both(&p, &ccfg, HwConfig::baseline());
            assert_eq!(icks, mcks, "config {}", ccfg.name);
            assert_eq!(iret, mret, "config {}", ccfg.name);
        }
    }

    #[test]
    fn hw_sensitivity_configs_run() {
        let p = add_element_program(1500, 1 << 20);
        for hw in [
            HwConfig::baseline(),
            HwConfig::with_begin_overhead(),
            HwConfig::single_inflight(),
            HwConfig::two_wide(),
            HwConfig::two_wide_half(),
        ] {
            let name = hw.name;
            let (icks, _, mcks, _, _) = run_both(&p, &CompilerConfig::atomic(), hw);
            assert_eq!(icks, mcks, "hw config {name}");
        }
    }

    #[test]
    fn begin_overhead_costs_cycles() {
        let p = add_element_program(2000, 1 << 20);
        let (_, _, _, _, fast) = run_both(&p, &CompilerConfig::atomic(), HwConfig::baseline());
        let (_, _, _, _, slow) = run_both(
            &p,
            &CompilerConfig::atomic(),
            HwConfig::with_begin_overhead(),
        );
        assert!(
            slow.cycles > fast.cycles,
            "{} vs {}",
            slow.cycles,
            fast.cycles
        );
        let (_, _, _, _, single) =
            run_both(&p, &CompilerConfig::atomic(), HwConfig::single_inflight());
        assert!(
            single.cycles > fast.cycles,
            "{} vs {}",
            single.cycles,
            fast.cycles
        );
    }

    #[test]
    fn markers_snapshot_uops_and_cycles() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        m.marker(1);
        let i = m.imm(0);
        let n = m.imm(100);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        m.marker(2);
        m.checksum(i);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let (_, _, _, _, stats) = run_both(&p, &CompilerConfig::no_atomic(), HwConfig::baseline());
        assert_eq!(stats.markers.len(), 2);
        assert_eq!(stats.markers[0].id, 1);
        assert_eq!(stats.markers[1].id, 2);
        assert!(stats.markers[1].uops > stats.markers[0].uops + 100);
        assert!(stats.markers[1].cycles > stats.markers[0].cycles);
    }

    #[test]
    fn sle_reduces_uops_on_lock_heavy_code() {
        let p = add_element_program(3000, 1 << 20);
        let mut no_sle = CompilerConfig::atomic();
        no_sle.sle = false;
        let (_, _, cks_sle, _, with) =
            run_both(&p, &CompilerConfig::atomic(), HwConfig::baseline());
        let (_, _, cks_nosle, _, without) = run_both(&p, &no_sle, HwConfig::baseline());
        assert_eq!(cks_sle, cks_nosle);
        assert!(
            with.uops <= without.uops,
            "SLE must not add uops: {} vs {}",
            with.uops,
            without.uops
        );
    }
}

#[cfg(test)]
mod unit_tests {
    //! Focused machine-internals tests (the broader pipeline tests live in
    //! `tests` above).
    use super::*;
    use hasp_ir::{Func, Inst, Op, RegionInfo, Term};
    use hasp_vm::builder::ProgramBuilder;
    use hasp_vm::bytecode::{BinOp, CmpOp};

    /// Builds a single-method program and matching code cache by hand.
    fn install(f: &Func) -> (Program, CodeCache) {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut cc = CodeCache::new();
        cc.install(entry, crate::lower::lower(f));
        (p, cc)
    }

    #[test]
    fn call_overhead_is_accounted() {
        // A method calling a leaf twice: uop count must exceed the static
        // instruction count by the linkage overhead.
        let mut pb = ProgramBuilder::new();
        let mut leaf = pb.method("leaf", 1);
        leaf.ret(Some(leaf.arg(0)));
        let leaf_id = leaf.finish(&mut pb);
        let mut m = pb.method("main", 0);
        let x = m.imm(3);
        let r = m.reg();
        m.call(Some(r), leaf_id, &[x]);
        m.call(Some(r), leaf_id, &[x]);
        m.ret(Some(r));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let prof = hasp_vm::profile::Profile::new();
        let mut cc = CodeCache::new();
        for mid in p.method_ids() {
            let f = hasp_ir::translate(&p, mid, prof.method(mid));
            cc.install(mid, crate::lower::lower(&f));
        }
        let mut mach = Machine::new(&p, &cc, HwConfig::baseline());
        mach.run(&[]).unwrap();
        // Static uops on the execution path ≈ 1 const + 2 calls + 2 rets +
        // main ret = 6; overhead adds (args+2) per call and 2 per ret.
        let s = mach.stats();
        assert!(
            s.uops >= 6 + 2 * 3 + 3 * 2,
            "linkage uops must be charged: {}",
            s.uops
        );
    }

    #[test]
    fn region_stats_track_commits_sizes_and_footprints() {
        // One region around a couple of memory ops.
        let mut pb = ProgramBuilder::new();
        let cls = pb.add_class("C", None, &["f"]);
        let fld = pb.field(cls, "f");
        let mut m = pb.method("main", 0);
        let o = m.reg();
        m.new_obj(o, cls);
        let v = m.imm(7);
        m.put_field(o, fld, v);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);

        // Hand-build IR with a region wrapping the store.
        let mut f = hasp_ir::translate(&p, entry, None);
        // Find the block with the store and wrap the whole body.
        let body_blocks = f.block_ids();
        let abort = f.add_block(Term::Return(None));
        let target = body_blocks[0];
        let begin = f.add_block(Term::Jump(target));
        let r = f.new_region(RegionInfo {
            begin,
            abort_target: abort,
            size_estimate: 8,
        });
        f.block_mut(begin).term = Term::RegionBegin {
            region: r,
            body: target,
            abort,
        };
        for b in body_blocks {
            f.block_mut(b).region = Some(r);
            if matches!(f.block(b).term, Term::Return(_)) {
                f.block_mut(b).insts.push(Inst::effect(Op::RegionEnd(r)));
            }
        }
        f.entry = begin;
        hasp_ir::verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));

        let mut cc = CodeCache::new();
        cc.install(entry, crate::lower::lower(&f));
        let mut mach = Machine::new(&p, &cc, HwConfig::baseline());
        mach.run(&[]).unwrap();
        let s = mach.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.region_sizes.n, 1);
        assert!(s.region_sizes.sum > 0);
        assert_eq!(s.region_footprint.n, 1);
        assert!(s.region_footprint.sum >= 1, "the store touched a line");
        assert_eq!(s.per_region.len(), 1);
        assert!(s.coverage() > 0.5);
    }

    #[test]
    fn single_inflight_charges_back_to_back_regions() {
        // Two immediately-consecutive regions: the second begin stalls.
        let mut f = Func::new("m", hasp_vm::bytecode::MethodId(0), 0);
        let v = f.vreg();
        let exit = f.add_block(Term::Return(None));
        let abort2 = f.add_block(Term::Jump(exit));
        let body2 = f.add_block(Term::Jump(exit));
        let begin2 = f.add_block(Term::Jump(exit));
        let abort1 = f.add_block(Term::Jump(begin2));
        let body1 = f.add_block(Term::Jump(begin2));
        let r1 = f.new_region(RegionInfo {
            begin: f.entry,
            abort_target: abort1,
            size_estimate: 2,
        });
        let r2 = f.new_region(RegionInfo {
            begin: begin2,
            abort_target: abort2,
            size_estimate: 2,
        });
        f.block_mut(f.entry).term = Term::RegionBegin {
            region: r1,
            body: body1,
            abort: abort1,
        };
        f.block_mut(begin2).term = Term::RegionBegin {
            region: r2,
            body: body2,
            abort: abort2,
        };
        for (b, r) in [(body1, r1), (body2, r2)] {
            f.block_mut(b).region = Some(r);
            f.block_mut(b).insts.push(Inst::with_dst(v, Op::Const(1)));
            f.block_mut(b).insts.push(Inst::effect(Op::RegionEnd(r)));
        }
        // body1 defines v; body2 redefines — fix SSA by using a fresh value.
        let v2 = f.vreg();
        f.block_mut(body2).insts[0] = Inst::with_dst(v2, Op::Const(2));
        hasp_ir::verify(&f).unwrap_or_else(|e| panic!("{e}\n{}", f.display()));

        let (p, cc) = install(&f);
        let mut fast = Machine::new(&p, &cc, HwConfig::baseline());
        fast.run(&[]).unwrap();
        let mut slow = Machine::new(&p, &cc, HwConfig::single_inflight());
        slow.run(&[]).unwrap();
        assert!(
            slow.cycles() > fast.cycles(),
            "single-inflight must stall the second begin: {} vs {}",
            slow.cycles(),
            fast.cycles()
        );
        assert_eq!(slow.stats().commits, 2);
    }

    #[test]
    fn alu_and_branch_semantics_match_interpreter_ops() {
        // Spot-check encode/decode through the machine: ref equality and
        // int ordering behave like the interpreter.
        let mut pb = ProgramBuilder::new();
        let cls = pb.add_class("C", None, &[]);
        let mut m = pb.method("main", 0);
        let a = m.reg();
        m.new_obj(a, cls);
        let b = m.reg();
        m.new_obj(b, cls);
        let same = m.new_label();
        let done = m.new_label();
        let flag = m.imm(0);
        m.branch(CmpOp::Eq, a, a, same);
        m.jump(done);
        m.bind(same);
        let one = m.imm(1);
        m.bin(BinOp::Add, flag, flag, one);
        // b != a:
        let not_taken = m.new_label();
        m.branch(CmpOp::Eq, a, b, not_taken);
        m.jump(done);
        m.bind(not_taken);
        let k100 = m.imm(100);
        m.bin(BinOp::Add, flag, flag, k100);
        m.jump(done);
        m.bind(done);
        m.checksum(flag);
        m.ret(Some(flag));
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);

        let mut interp = Interp_::new(&p);
        let iref = interp.run(&[]).unwrap();

        let prof = hasp_vm::profile::Profile::new();
        let mut cc = CodeCache::new();
        for mid in p.method_ids() {
            let f = hasp_ir::translate(&p, mid, prof.method(mid));
            cc.install(mid, crate::lower::lower(&f));
        }
        let mut mach = Machine::new(&p, &cc, HwConfig::baseline());
        let mref = mach.run(&[]).unwrap();
        assert_eq!(iref, mref);
        assert_eq!(interp.env.checksum(), mach.env.checksum());
        assert_eq!(mref, Some(Value::Int(1)), "a==a taken, a==b not taken");
    }

    use hasp_vm::interp::Interp as Interp_;
}

#[cfg(test)]
mod fault_tests {
    //! The abort-path contract, checked per cause: every injected abort kind
    //! must (a) stay architecturally transparent and (b) pass the invariant
    //! validator, and hardware misuse must surface as a structured
    //! [`MachineFault`] instead of a panic.
    use super::tests::{add_element_program, run_both};
    use super::*;
    use crate::fault::FaultPlan;
    use hasp_opt::CompilerConfig;
    use hasp_vm::builder::ProgramBuilder;
    use hasp_vm::bytecode::{BinOp, CmpOp};

    /// Installs a hand-written uop stream as the entry method.
    fn install_uops(uops: Vec<Uop>, regs: u32) -> (Program, CodeCache) {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut cc = CodeCache::new();
        cc.install(
            entry,
            CompiledCode {
                name: "main".into(),
                uops,
                regs,
                assert_origins: Vec::new(),
                region_count: 1,
                region_boundaries: Vec::new(),
                blocks: Vec::new(),
                region_writes: Default::default(),
            },
        );
        (p, cc)
    }

    /// Runs `add_element` under `plan` with the validator on; asserts
    /// transparency and that at least `min` aborts of `reason` validated.
    fn assert_validated_aborts(plan: FaultPlan, reason: AbortReason, min: u64) -> RunStats {
        let p = add_element_program(2000, 1 << 20);
        let mut hw = HwConfig::baseline();
        hw.faults = plan;
        hw.validate = true;
        let (icks, iret, mcks, mret, stats) = run_both(&p, &CompilerConfig::atomic(), hw);
        assert_eq!(icks, mcks, "{reason:?} aborts must be transparent");
        assert_eq!(iret, mret);
        assert!(
            stats.aborts.get(reason) >= min,
            "expected ≥{min} {reason:?} aborts: {:?}",
            stats.aborts
        );
        assert!(
            stats.validations >= stats.commits + stats.total_aborts(),
            "every commit and abort must validate: {} < {} + {}",
            stats.validations,
            stats.commits,
            stats.total_aborts()
        );
        stats
    }

    #[test]
    fn validator_passes_conflict_aborts() {
        assert_validated_aborts(FaultPlan::conflicts(500), AbortReason::Conflict, 1);
    }

    #[test]
    fn validator_passes_interrupt_aborts() {
        assert_validated_aborts(FaultPlan::interrupts(10_000), AbortReason::Interrupt, 1);
    }

    #[test]
    fn validator_passes_spurious_aborts() {
        assert_validated_aborts(FaultPlan::spurious(500), AbortReason::Spurious, 1);
    }

    #[test]
    fn validator_passes_overflow_aborts_from_line_budget() {
        // A 2-line speculative budget is below any real region footprint
        // here, so regions overflow immediately and fall back.
        assert_validated_aborts(FaultPlan::overflow_budget(2), AbortReason::Overflow, 1);
    }

    #[test]
    fn validator_passes_targeted_entry_abort() {
        let stats = assert_validated_aborts(FaultPlan::abort_at(5), AbortReason::Spurious, 1);
        assert_eq!(
            stats.aborts.get(AbortReason::Spurious),
            1,
            "exactly the 5th entry aborts"
        );
    }

    #[test]
    fn validator_passes_explicit_aborts() {
        // chunk < n: the wraparound assert fires (Explicit aborts) with the
        // validator on.
        let p = add_element_program(20_000, 500);
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        let (icks, _, mcks, _, stats) = run_both(&p, &CompilerConfig::atomic(), hw);
        assert_eq!(icks, mcks);
        assert!(
            stats.aborts.get(AbortReason::Explicit) > 0,
            "{:?}",
            stats.aborts
        );
        assert!(stats.validations >= stats.commits + stats.total_aborts());
    }

    #[test]
    fn validator_passes_sle_abort() {
        // Raw stream: an SLE lock-word assert (`aregion_abort` with the
        // reserved id) fires inside the region; alt path returns 7.
        let (p, cc) = install_uops(
            vec![
                Uop::RegionBegin { region: 0, alt: 3 },
                Uop::Abort {
                    assert_id: u32::MAX,
                },
                Uop::RegionEnd { region: 0 },
                Uop::Const {
                    dst: MReg(0),
                    imm: 7,
                },
                Uop::Ret { src: Some(MReg(0)) },
            ],
            1,
        );
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        let mut mach = Machine::new(&p, &cc, hw);
        let out = mach.run(&[]).expect("sle abort is recoverable");
        assert_eq!(out, Some(Value::Int(7)));
        assert_eq!(mach.stats().aborts.get(AbortReason::Sle), 1);
        assert!(mach.stats().validations >= 1);
    }

    #[test]
    fn validator_passes_exception_abort() {
        // Raw stream: a failing CheckDiv inside the region is an exception
        // abort (a trap outside); alt path returns 42.
        let (p, cc) = install_uops(
            vec![
                Uop::Const {
                    dst: MReg(0),
                    imm: 0,
                },
                Uop::RegionBegin { region: 0, alt: 4 },
                Uop::CheckDiv { v: MReg(0) },
                Uop::RegionEnd { region: 0 },
                Uop::Const {
                    dst: MReg(0),
                    imm: 42,
                },
                Uop::Ret { src: Some(MReg(0)) },
            ],
            1,
        );
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        let mut mach = Machine::new(&p, &cc, hw);
        let out = mach.run(&[]).expect("exception abort is recoverable");
        assert_eq!(out, Some(Value::Int(42)));
        assert_eq!(mach.stats().aborts.get(AbortReason::Exception), 1);
        assert!(mach.stats().validations >= 1);
    }

    /// A hand-sealed static run `[Poll, CheckNull, Poll]` whose head
    /// bulk-charges both polls before the check traps between them: the
    /// in-region trap becomes an exception abort to the alt path, and the
    /// batched engine must refund the never-retired follower's charge so
    /// every counter lands exactly where the per-access reference does.
    fn mid_run_trap_stream() -> (Program, CodeCache) {
        install_uops(
            vec![
                Uop::RegionBegin { region: 0, alt: 8 },
                Uop::ConstNull { dst: MReg(0) },
                Uop::Poll,
                Uop::CheckNull { v: MReg(0) },
                Uop::Poll,
                Uop::RegionEnd { region: 0 },
                Uop::Const {
                    dst: MReg(1),
                    imm: 1,
                },
                Uop::Ret { src: Some(MReg(1)) },
                Uop::Const {
                    dst: MReg(1),
                    imm: 7,
                },
                Uop::Ret { src: Some(MReg(1)) },
            ],
            2,
        )
    }

    #[test]
    fn precharged_poll_run_is_refunded_exactly_on_a_mid_run_trap() {
        // Seal-time plan: the run head at pc 2 covers both polls (the
        // CheckNull between them is not a memory uop, so it rides inside
        // the run), which is precisely what forces the batched engine to
        // precharge the pc-4 poll it will never retire.
        let (_p, cc) = mid_run_trap_stream();
        let code = cc.get(hasp_vm::bytecode::MethodId(0)).expect("entry");
        assert_eq!(code.blocks[2].poll_run, 2, "run head covers both polls");
        assert_eq!(code.blocks[4].poll_run, 1);

        let mut runs = Vec::new();
        for hw in [
            HwConfig::baseline(),
            HwConfig::unbatched(),
            HwConfig::per_uop(),
        ] {
            let (p, cc) = mid_run_trap_stream();
            let mut mach = Machine::new(&p, &cc, hw);
            let out = mach.run(&[]).expect("exception abort is recoverable");
            assert_eq!(out, Some(Value::Int(7)), "trap redirects to alt path");
            assert_eq!(mach.stats().aborts.get(AbortReason::Exception), 1);
            // Only the run's head poll retired before the trap (a cold
            // miss); the follower's bulk L1-hit charge must have been
            // refunded.
            assert_eq!(mach.stats().mem_accesses, 1);
            assert_eq!(mach.stats().l1_hits, 0);
            runs.push((mach.stats().clone(), mach.cycles()));
        }
        assert_eq!(runs[0], runs[1], "batched == per-access reference");
        assert_eq!(runs[0].0, runs[2].0, "superblock == per-uop reference");
    }

    #[test]
    fn hardware_misuse_is_a_structured_fault() {
        type FaultCheck = fn(&MachineFault) -> bool;
        let cases: Vec<(Vec<Uop>, FaultCheck)> = vec![
            (
                vec![Uop::Abort { assert_id: 0 }, Uop::Ret { src: None }],
                |e| matches!(e, MachineFault::AbortOutsideRegion { pc: 0, .. }),
            ),
            (
                vec![Uop::RegionEnd { region: 0 }, Uop::Ret { src: None }],
                |e| matches!(e, MachineFault::EndOutsideRegion { pc: 0, .. }),
            ),
            (
                vec![
                    Uop::RegionBegin { region: 0, alt: 3 },
                    Uop::RegionBegin { region: 1, alt: 3 },
                    Uop::RegionEnd { region: 0 },
                    Uop::Ret { src: None },
                ],
                |e| matches!(e, MachineFault::NestedRegion { pc: 1, .. }),
            ),
        ];
        for (uops, check) in cases {
            let (p, cc) = install_uops(uops, 1);
            let mut mach = Machine::new(&p, &cc, HwConfig::baseline());
            let err = mach.run(&[]).unwrap_err();
            assert!(check(&err), "unexpected fault: {err}");
        }
    }

    /// An always-aborting region in a counted loop: the governor must
    /// de-speculate it and convert most entries into direct alt-path runs.
    fn always_abort_loop(n: i64) -> (Program, CodeCache) {
        install_uops(
            vec![
                Uop::Const {
                    dst: MReg(0),
                    imm: 0,
                },
                Uop::Const {
                    dst: MReg(1),
                    imm: n,
                },
                Uop::Const {
                    dst: MReg(2),
                    imm: 1,
                },
                Uop::Br {
                    op: CmpOp::Ge,
                    a: MReg(0),
                    b: MReg(1),
                    target: 8,
                },
                Uop::RegionBegin { region: 0, alt: 6 },
                Uop::Abort { assert_id: 0 },
                Uop::Alu {
                    op: BinOp::Add,
                    dst: MReg(0),
                    a: MReg(0),
                    b: MReg(2),
                },
                Uop::Jmp { target: 3 },
                Uop::Ret { src: Some(MReg(0)) },
            ],
            3,
        )
    }

    #[test]
    fn governor_despeculates_sustained_abort_region() {
        let (p, cc) = always_abort_loop(1000);
        // Off: every entry aborts.
        let mut mach = Machine::new(&p, &cc, HwConfig::baseline());
        let out = mach.run(&[]).expect("run");
        assert_eq!(out, Some(Value::Int(1000)));
        assert_eq!(mach.stats().total_aborts(), 1000);

        // On: streaks of `retry_budget` aborts, then exponentially growing
        // skip windows; the alt path still runs every iteration.
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        hw.governor = GovernorConfig {
            retry_budget: 3,
            cooldown_entries: 4,
            max_cooldown: 64,
            ..GovernorConfig::online()
        };
        let mut mach = Machine::new(&p, &cc, hw);
        let out = mach.run(&[]).expect("run");
        assert_eq!(out, Some(Value::Int(1000)), "semantics preserved");
        let s = mach.stats();
        assert!(
            s.governor_disables >= 2,
            "sustained aborts must trip the budget repeatedly: {s:?}"
        );
        assert!(
            s.governor_skips > 800,
            "backoff must absorb most entries: {} skips",
            s.governor_skips
        );
        assert!(
            s.total_aborts() < 100,
            "de-speculation must suppress aborts: {}",
            s.total_aborts()
        );
        let region = s.per_region.values().next().expect("one region");
        assert_eq!(region.gov_skips, s.governor_skips);
    }

    #[test]
    fn governor_reenables_and_cooldown_decays_on_commit() {
        // A region that aborts only while i < 32 and commits afterwards:
        // the governor de-speculates during the abort phase, re-enables, and
        // commits thereafter reset the streak (cooldown decays toward base).
        let (p, cc) = install_uops(
            vec![
                Uop::Const {
                    dst: MReg(0),
                    imm: 0,
                },
                Uop::Const {
                    dst: MReg(1),
                    imm: 400,
                },
                Uop::Const {
                    dst: MReg(2),
                    imm: 1,
                },
                Uop::Const {
                    dst: MReg(3),
                    imm: 32,
                },
                // loop head
                Uop::Br {
                    op: CmpOp::Ge,
                    a: MReg(0),
                    b: MReg(1),
                    target: 12,
                },
                Uop::RegionBegin { region: 0, alt: 10 },
                // abort while i < 32
                Uop::Br {
                    op: CmpOp::Lt,
                    a: MReg(0),
                    b: MReg(3),
                    target: 8,
                },
                Uop::Jmp { target: 9 },
                Uop::Abort { assert_id: 0 },
                Uop::RegionEnd { region: 0 },
                // alt / join: i += 1
                Uop::Alu {
                    op: BinOp::Add,
                    dst: MReg(0),
                    a: MReg(0),
                    b: MReg(2),
                },
                Uop::Jmp { target: 4 },
                Uop::Ret { src: Some(MReg(0)) },
            ],
            4,
        );
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        // Pin the tier-1 (backoff-only) policy: this test is specifically
        // about reenable + cooldown decay, which the ladder's tier-3
        // permanence would otherwise mask.
        hw.governor = GovernorConfig {
            retry_budget: 2,
            cooldown_entries: 4,
            max_cooldown: 16,
            ..GovernorConfig::backoff_only()
        };
        let mut mach = Machine::new(&p, &cc, hw);
        let out = mach.run(&[]).expect("run");
        assert_eq!(out, Some(Value::Int(400)));
        let s = mach.stats();
        assert!(s.governor_disables >= 1, "{s:?}");
        assert!(s.governor_reenables >= 1, "{s:?}");
        assert!(
            s.commits > 300,
            "post-phase entries must speculate again: {} commits",
            s.commits
        );
    }

    /// One always-aborting region driven through the complete tier ladder:
    /// tracked (0) → backoff (1) → fallback-lock subscription (2) →
    /// permanent software path (3), with a re-formation request emitted on
    /// the sustained `Explicit` streak — all while the alt path preserves
    /// semantics and the tier accounting stays balanced under the
    /// validator.
    #[test]
    fn ladder_escalates_through_every_tier() {
        let (p, cc) = always_abort_loop(1500);
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        hw.governor = GovernorConfig {
            retry_budget: 2,
            cooldown_entries: 2,
            max_cooldown: 8,
            ..GovernorConfig::online()
        };
        let mut mach = Machine::new(&p, &cc, hw);
        let out = mach.run(&[]).expect("run");
        assert_eq!(out, Some(Value::Int(1500)), "semantics preserved");
        let reqs = mach.take_reform_requests();
        let s = mach.stats();
        // Every tier was entered, non-vacuously.
        for t in 0..4 {
            assert!(s.tier_enters[t] > 0, "tier {t} never entered: {s:?}");
            assert!(s.tier_time[t] > 0, "no time spent at tier {t}: {s:?}");
        }
        // The region ends pinned at tier 3 (permanent), and is the only
        // live tracked region.
        assert_eq!(s.tier_live, [0, 0, 0, 1], "{s:?}");
        assert!(s.tier_counters_consistent(), "{s:?}");
        let region = s.per_region.values().next().expect("one region");
        assert_eq!(region.tier, 3);
        // Tier 2 actually engaged the hybrid-TM protocol: speculative
        // entries subscribed the fallback lock, software-path entries
        // took it.
        assert!(s.lock_subscriptions > 0, "{s:?}");
        assert!(s.lock_holds > 0, "{s:?}");
        // The sustained Explicit streak produced exactly one re-formation
        // request; the hand-built stream has no boundary map.
        assert_eq!(s.reform_requests, 1);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].reason, AbortReason::Explicit);
        assert_eq!(reqs[0].boundary, u32::MAX);
        // Tier 3 converts the tail of the run into software-path entries.
        assert!(s.governor_skips > 1000, "{s:?}");
    }

    /// With an external software-path writer holding the fallback lock, a
    /// tier-2 region's subscription read sees the lock held and aborts
    /// (`Sle`) instead of speculating against the lock holder.
    #[test]
    fn tier2_subscription_aborts_while_fallback_lock_held() {
        let (p, cc) = always_abort_loop(600);
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        // Stop the ladder at tier 2 so speculative retries keep happening
        // (tier 3 would stop attempting speculation altogether).
        hw.governor = GovernorConfig {
            retry_budget: 2,
            cooldown_entries: 2,
            max_cooldown: 8,
            ..GovernorConfig::to_tier2()
        };
        let mut mach = Machine::new(&p, &cc, hw);
        mach.set_fallback_lock(true);
        let out = mach.run(&[]).expect("run");
        assert_eq!(out, Some(Value::Int(600)), "semantics preserved");
        let s = mach.stats();
        assert!(
            s.lock_held_aborts > 0,
            "tier-2 entries must abort on the held lock: {s:?}"
        );
        assert!(s.aborts.get(AbortReason::Sle) >= s.lock_held_aborts);
        assert!(s.tier_counters_consistent(), "{s:?}");
        assert!(mach.fallback_lock_held());
    }

    /// The ladder behaves identically under both dispatch engines: a
    /// governed always-aborting region produces bit-identical statistics
    /// whether dispatched per-uop or through sealed superblocks.
    #[test]
    fn ladder_matches_across_dispatch_engines() {
        let policy = GovernorConfig {
            retry_budget: 2,
            cooldown_entries: 2,
            max_cooldown: 8,
            ..GovernorConfig::online()
        };
        let mut runs = Vec::new();
        for mut hw in [HwConfig::baseline(), HwConfig::per_uop()] {
            hw.governor = policy.clone();
            let (p, cc) = always_abort_loop(800);
            let mut mach = Machine::new(&p, &cc, hw);
            let out = mach.run(&[]).expect("run");
            assert_eq!(out, Some(Value::Int(800)));
            runs.push(mach.stats().clone());
        }
        let diff = runs[0].diff(&runs[1]);
        assert!(diff.is_empty(), "engines diverged: {diff:?}");
    }

    #[test]
    fn committed_region_end_falls_through_to_join() {
        // Sanity for the two-phase program above: a committed region's end
        // falls through to the shared join block.
        let (p, cc) = install_uops(
            vec![
                Uop::RegionBegin { region: 0, alt: 2 },
                Uop::RegionEnd { region: 0 },
                Uop::Const {
                    dst: MReg(0),
                    imm: 9,
                },
                Uop::Ret { src: Some(MReg(0)) },
            ],
            1,
        );
        let mut hw = HwConfig::baseline();
        hw.validate = true;
        let mut mach = Machine::new(&p, &cc, hw);
        let out = mach.run(&[]).expect("run");
        assert_eq!(out, Some(Value::Int(9)));
        assert_eq!(mach.stats().commits, 1);
        assert!(mach.stats().validations >= 1);
    }

    #[test]
    fn deterministic_injection_is_reproducible() {
        let p = add_element_program(2000, 1 << 20);
        let mut hw = HwConfig::baseline();
        hw.faults = FaultPlan::conflicts(800);
        let (_, _, cks_a, _, stats_a) = run_both(&p, &CompilerConfig::atomic(), hw.clone());
        let (_, _, cks_b, _, stats_b) = run_both(&p, &CompilerConfig::atomic(), hw);
        assert_eq!(cks_a, cks_b);
        assert_eq!(stats_a.aborts.total(), stats_b.aborts.total());
        assert_eq!(stats_a.cycles, stats_b.cycles);
    }

    /// Compiles `add_element_program` under the atomic config and installs
    /// it — the shared fixture for the pooled-machine/reset tests.
    fn compiled_add_element(n: i64, chunk: i64) -> (Program, CodeCache) {
        use hasp_opt::compile_program;
        use hasp_vm::interp::Interp;
        let p = add_element_program(n, chunk);
        let mut interp = Interp::new(&p).with_profiling();
        interp.run(&[]).expect("interp");
        let compiled = compile_program(&p, &interp.profile, &CompilerConfig::atomic());
        let mut cc = CodeCache::new();
        for (m, c) in &compiled {
            cc.install(*m, crate::lower::lower(&c.func));
        }
        (p, cc)
    }

    #[test]
    fn reset_for_request_is_bit_identical_to_a_fresh_machine() {
        let (p, cc) = compiled_add_element(3000, 500);
        let hw = HwConfig::baseline();
        // Reference: a fresh machine per run.
        let mut fresh = Machine::new(&p, &cc, hw.clone());
        fresh.run(&[]).expect("fresh run");
        let fresh_cks = fresh.env.checksum();
        let fresh_stats = fresh.stats().clone();
        assert!(fresh_stats.total_aborts() > 0, "fixture must abort");

        // A recycled machine: dirty from a full prior request (committed
        // regions, aborts, warmed caches and predictors), then reset.
        let mut mach = Machine::new(&p, &cc, hw);
        mach.run(&[]).expect("first request");
        mach.reset_for_request();
        assert_eq!(mach.cross_request_state(), None);
        mach.run(&[]).expect("second request");
        assert_eq!(mach.env.checksum(), fresh_cks);
        assert_eq!(
            mach.stats(),
            &fresh_stats,
            "a reset machine must be indistinguishable from a fresh one: {:?}",
            fresh_stats.diff(mach.stats())
        );
    }

    #[test]
    fn reset_for_request_clears_a_mid_region_interrupted_run() {
        let (p, cc) = compiled_add_element(3000, 1 << 20);
        let hw = HwConfig::baseline();
        let mut fresh = Machine::new(&p, &cc, hw.clone());
        fresh.run(&[]).expect("fresh run");
        let fresh_cks = fresh.env.checksum();
        let fresh_stats = fresh.stats().clone();

        // Cut a run down mid-flight by exhausting fuel: frames are live and
        // (with the hot loop fully encapsulated) a region is typically in
        // flight — the dirtiest state a worker can hand back.
        let mut mach = Machine::new(&p, &cc, hw);
        mach.set_fuel(fresh_stats.uops / 2);
        let out = mach.run(&[]);
        assert!(out.is_err(), "truncated run must fault on fuel");
        assert_ne!(mach.cross_request_state(), None, "dirty state expected");
        mach.reset_for_request();
        assert_eq!(mach.cross_request_state(), None);
        mach.run(&[]).expect("post-reset request");
        assert_eq!(mach.env.checksum(), fresh_cks);
        assert_eq!(
            mach.stats(),
            &fresh_stats,
            "{:?}",
            fresh_stats.diff(mach.stats())
        );
    }

    #[test]
    fn pooled_machine_matches_fresh_machine_bit_for_bit() {
        let (p, cc) = compiled_add_element(3000, 500);
        let hw = HwConfig::baseline();
        let mut fresh = Machine::new(&p, &cc, hw.clone());
        fresh.run(&[]).expect("fresh run");
        // Retire a dirty machine into pools (mid-flight, to exercise the
        // transient-state recycling), then build a pooled successor.
        let mut donor = Machine::new(&p, &cc, hw.clone());
        donor.set_fuel(fresh.stats().uops / 3);
        let _ = donor.run(&[]);
        let pools = donor.into_pools();
        let mut pooled = Machine::with_pools(&p, &cc, hw, pools);
        assert_eq!(pooled.cross_request_state(), None);
        pooled.run(&[]).expect("pooled run");
        assert_eq!(pooled.env.checksum(), fresh.env.checksum());
        assert_eq!(
            pooled.stats(),
            fresh.stats(),
            "{:?}",
            fresh.stats().diff(pooled.stats())
        );
    }
}
