//! The machine-level micro-operation ISA and compiled-code containers.
//!
//! The ISA is an abstract register machine extended with the paper's three
//! atomicity primitives (`aregion_begin <alt>`, `aregion_end`,
//! `aregion_abort`). Registers are per-frame and unbounded — a substitution
//! for a real register allocator documented in `DESIGN.md`: every compiler
//! configuration is lowered identically, so relative uop counts (the paper's
//! efficiency metric) are preserved.

use hasp_vm::bytecode::{BinOp, ClassId, CmpOp, Intrinsic, MethodId, SlotId};

/// A machine register within a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MReg(pub u32);

/// A resolved code offset within a method's uop stream.
pub type CodePos = usize;

/// One micro-operation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // operand fields (dst/src/obj/...) are self-describing
pub enum Uop {
    /// `dst = imm`
    Const { dst: MReg, imm: i64 },
    /// `dst = null`
    ConstNull { dst: MReg },
    /// `dst = src`
    Mov { dst: MReg, src: MReg },
    /// ALU operation (Div/Rem must be guarded by `CheckDiv`).
    Alu {
        op: BinOp,
        dst: MReg,
        a: MReg,
        b: MReg,
    },
    /// `dst = (a op b) ? 1 : 0`
    CmpSet {
        op: CmpOp,
        dst: MReg,
        a: MReg,
        b: MReg,
    },
    /// Unconditional jump.
    Jmp { target: CodePos },
    /// Conditional branch: taken to `target` when `a op b` holds.
    Br {
        op: CmpOp,
        a: MReg,
        b: MReg,
        target: CodePos,
    },
    /// Indirect table dispatch (Java `tableswitch`).
    JmpInd {
        sel: MReg,
        table: Box<[CodePos]>,
        default: CodePos,
    },
    /// Field load (null-checked separately).
    LoadField { dst: MReg, obj: MReg, field: u16 },
    /// Field store.
    StoreField { obj: MReg, field: u16, src: MReg },
    /// Array element load (checked separately).
    LoadElem { dst: MReg, arr: MReg, idx: MReg },
    /// Array element store.
    StoreElem { arr: MReg, idx: MReg, src: MReg },
    /// Array length load.
    LoadLen { dst: MReg, arr: MReg },
    /// Lock-word load (packed owner/count).
    LoadLock { dst: MReg, obj: MReg },
    /// Lock-word store.
    StoreLock { obj: MReg, src: MReg },
    /// Dynamic class-id load.
    LoadClass { dst: MReg, obj: MReg },
    /// Object allocation.
    AllocObj { dst: MReg, class: ClassId },
    /// Array allocation.
    AllocArr { dst: MReg, len: MReg },
    /// Trap (or in-region abort) if `v` is null.
    CheckNull { v: MReg },
    /// Trap (or in-region abort) unless `0 <= idx < len`.
    CheckBounds { len: MReg, idx: MReg },
    /// Trap (or in-region abort) if `v == 0`.
    CheckDiv { v: MReg },
    /// Trap (or in-region abort) unless `obj` is null or instance of `class`.
    CheckCast { obj: MReg, class: ClassId },
    /// `dst = (obj instanceof class) ? 1 : 0`.
    InstOf {
        dst: MReg,
        obj: MReg,
        class: ClassId,
    },
    /// Direct call.
    Call {
        dst: Option<MReg>,
        target: MethodId,
        args: Box<[MReg]>,
    },
    /// Virtual call through the receiver's vtable.
    CallVirt {
        dst: Option<MReg>,
        slot: SlotId,
        recv: MReg,
        args: Box<[MReg]>,
    },
    /// Return from the frame.
    Ret { src: Option<MReg> },
    /// `aregion_begin <alt>`: checkpoint and start speculating; on abort,
    /// control resumes at `alt`.
    RegionBegin { region: u32, alt: CodePos },
    /// `aregion_end`: commit the region atomically.
    RegionEnd { region: u32 },
    /// `aregion_abort`: unconditional rollback (target of assert branches).
    Abort { assert_id: u32 },
    /// GC safepoint poll (a load of the thread-local yield flag).
    Poll,
    /// Host intrinsic.
    Intrin {
        kind: Intrinsic,
        dst: Option<MReg>,
        args: Box<[MReg]>,
    },
    /// Simulation marker (§5 methodology); architecturally inert.
    Marker { id: u32 },
    /// Executing this uop is a VM bug (e.g. monitor contention path in the
    /// single-mutator simulation).
    Unreachable { why: &'static str },
}

/// Coarse uop classification for dense per-class retirement tallies.
///
/// The simulator bumps one of these counters on every retired uop, so the
/// representation must be an index into a flat array — never a hash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum UopClass {
    /// Constants, moves, ALU and compare-set operations.
    Alu,
    /// Conditional, unconditional, and indirect control transfer.
    Branch,
    /// Data-memory loads and stores (including lock words and polls).
    Memory,
    /// Object and array allocation.
    Alloc,
    /// Safety checks (null/bounds/div/cast) and `instanceof`.
    Check,
    /// Call and return linkage.
    Call,
    /// Atomic-region primitives (`aregion_begin/end/abort`).
    Region,
    /// Host intrinsics, markers, and everything else.
    Other,
}

/// All uop classes, in index order (for iteration and display).
pub const UOP_CLASSES: [UopClass; 8] = [
    UopClass::Alu,
    UopClass::Branch,
    UopClass::Memory,
    UopClass::Alloc,
    UopClass::Check,
    UopClass::Call,
    UopClass::Region,
    UopClass::Other,
];

impl UopClass {
    /// Report label (instruction-mix tables).
    pub fn name(self) -> &'static str {
        match self {
            UopClass::Alu => "alu",
            UopClass::Branch => "branch",
            UopClass::Memory => "memory",
            UopClass::Alloc => "alloc",
            UopClass::Check => "check",
            UopClass::Call => "call",
            UopClass::Region => "region",
            UopClass::Other => "other",
        }
    }
}

impl Uop {
    /// The dense class index used for retirement tallies.
    pub fn class(&self) -> UopClass {
        match self {
            Uop::Const { .. }
            | Uop::ConstNull { .. }
            | Uop::Mov { .. }
            | Uop::Alu { .. }
            | Uop::CmpSet { .. } => UopClass::Alu,
            Uop::Jmp { .. } | Uop::Br { .. } | Uop::JmpInd { .. } => UopClass::Branch,
            Uop::LoadField { .. }
            | Uop::StoreField { .. }
            | Uop::LoadElem { .. }
            | Uop::StoreElem { .. }
            | Uop::LoadLen { .. }
            | Uop::LoadLock { .. }
            | Uop::StoreLock { .. }
            | Uop::LoadClass { .. }
            | Uop::Poll => UopClass::Memory,
            Uop::AllocObj { .. } | Uop::AllocArr { .. } => UopClass::Alloc,
            Uop::CheckNull { .. }
            | Uop::CheckBounds { .. }
            | Uop::CheckDiv { .. }
            | Uop::CheckCast { .. }
            | Uop::InstOf { .. } => UopClass::Check,
            Uop::Call { .. } | Uop::CallVirt { .. } | Uop::Ret { .. } => UopClass::Call,
            Uop::RegionBegin { .. } | Uop::RegionEnd { .. } | Uop::Abort { .. } => UopClass::Region,
            Uop::Intrin { .. } | Uop::Marker { .. } | Uop::Unreachable { .. } => UopClass::Other,
        }
    }

    /// True for control-transfer uops that consult the branch predictor.
    pub fn is_branch(&self) -> bool {
        matches!(self, Uop::Br { .. } | Uop::JmpInd { .. })
    }

    /// True for uops whose primary action is a data-memory access.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Uop::LoadField { .. }
                | Uop::StoreField { .. }
                | Uop::LoadElem { .. }
                | Uop::StoreElem { .. }
                | Uop::LoadLen { .. }
                | Uop::LoadLock { .. }
                | Uop::StoreLock { .. }
                | Uop::LoadClass { .. }
                | Uop::Poll
        )
    }
}

/// A method's compiled code.
#[derive(Debug, Clone)]
pub struct CompiledCode {
    /// Method name (diagnostics).
    pub name: String,
    /// The uop stream; execution starts at offset 0.
    pub uops: Vec<Uop>,
    /// Number of machine registers the frame needs.
    pub regs: u32,
    /// Map from assert id to provenance (for abort diagnosis, paper §3.2).
    pub assert_origins: Vec<String>,
    /// Number of atomic regions in the code.
    pub region_count: u32,
    /// Per-region formation boundary, indexed by the dense per-method
    /// region id: the original (pre-replication) block id that seeded the
    /// region, which doubles as its abort target. Region formation is
    /// deterministic given the same program and profile, so this id is the
    /// region's stable identity across recompiles — it is what a
    /// [`ReformRequest`](crate::config::ReformRequest) names and what the
    /// harness excludes on re-formation. Empty for hand-assembled streams
    /// with no formation metadata (the machine then reports `u32::MAX`).
    pub region_boundaries: Vec<u32>,
    /// Per-pc decoded superblock index (`blocks[pc]` describes the block
    /// starting at `pc`). Built by [`CompiledCode::seal`] when the code is
    /// installed; empty until then.
    pub blocks: Vec<crate::superblock::SbInfo>,
    /// Per-region register write sets, indexed by the dense per-method
    /// region id (sorted dst registers reachable inside the region) — the
    /// sparse checkpoint the machine captures at region entry instead of
    /// the whole frame. A plain vector so the hot region-entry path is an
    /// index, not a hash lookup. Built by [`CompiledCode::seal`]; empty
    /// until then.
    pub region_writes: Vec<Box<[u32]>>,
}

impl CompiledCode {
    /// (Re)builds the decoded superblock index and the per-region register
    /// write sets from the uop stream. Called by [`CodeCache::install`], so
    /// every executable method carries consistent metadata — including
    /// hand-assembled test streams.
    pub fn seal(&mut self) {
        self.blocks = crate::superblock::build_blocks(&self.uops);
        self.region_writes = crate::superblock::build_region_writes(&self.uops);
    }
}

/// The code cache: compiled code for every method. Method ids are small and
/// dense (assigned sequentially by the front end), so the cache is a
/// direct-indexed table — the fetch on every call's frame push is one bounds
/// check and a load, not a hash.
#[derive(Debug, Clone, Default)]
pub struct CodeCache {
    methods: Vec<Option<CompiledCode>>,
    /// Next free way-predictor seal site (DESIGN §16). Monotonic across
    /// installs — reinstalling a method hands its sites *fresh* slots
    /// instead of recycling the old base, so a machine built against an
    /// earlier install generation can never alias a re-formed method's
    /// accesses onto stale predictor entries (harmless for correctness —
    /// validation catches stale entries — but it would pollute hit rates).
    next_site: u32,
}

impl CodeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs compiled code for a method, sealing its superblock index
    /// and rebasing its per-method seal sites into the cache-global
    /// predictor slot space.
    pub fn install(&mut self, m: MethodId, mut code: CompiledCode) {
        code.seal();
        let base = self.next_site;
        let mut sites = 0u32;
        for b in &mut code.blocks {
            if b.mem_site != crate::cache::NO_SITE {
                b.mem_site += base;
                sites += 1;
            }
        }
        self.next_site = base
            .checked_add(sites)
            .expect("seal-site space exhausted (u32)");
        let idx = m.0 as usize;
        if idx >= self.methods.len() {
            self.methods.resize_with(idx + 1, || None);
        }
        self.methods[idx] = Some(code);
    }

    /// Total seal sites handed out across every install (the upper bound of
    /// the global predictor slot space; sizing hint for predictor tables).
    pub fn seal_sites(&self) -> u32 {
        self.next_site
    }

    /// Fetches a method's code.
    pub fn get(&self, m: MethodId) -> Option<&CompiledCode> {
        self.methods.get(m.0 as usize)?.as_ref()
    }

    /// Total static uop count across all methods.
    pub fn static_uops(&self) -> usize {
        self.methods.iter().flatten().map(|c| c.uops.len()).sum()
    }

    /// Static data-memory uop share across all sealed methods, from the
    /// superblock access pre-classification: (memory uops, total uops).
    /// The dispatch benchmark reports the ratio per workload — memory
    /// density is what separates each workload's shipped throughput from
    /// its cache-off ceiling (DESIGN §12).
    pub fn static_mem_uops(&self) -> (usize, usize) {
        let mut mem = 0;
        for c in self.methods.iter().flatten() {
            // `blocks` is a per-pc suffix table: stepping head-to-head by
            // each head's `len` counts every uop exactly once (a `len: 0`
            // marker entry is its own one-uop step).
            let mut pc = 0;
            while pc < c.blocks.len() {
                let sb = &c.blocks[pc];
                mem += sb.mem_ops as usize;
                pc += (sb.len as usize).max(1);
            }
        }
        (mem, self.static_uops())
    }

    /// Static-plan coverage across all sealed methods: (memory uops whose
    /// line the seal-time static access plan resolves, total memory uops).
    /// The dispatch benchmark reports the ratio per workload as
    /// `static_resolved_share` — it bounds how much of the cache-model cost
    /// bulk per-superblock accounting (DESIGN §13) can possibly remove,
    /// because only statically resolved accesses can be collapsed into a
    /// sealed run's single probe.
    pub fn static_resolved_uops(&self) -> (usize, usize) {
        let (mut resolved, mut mem) = (0, 0);
        for c in self.methods.iter().flatten() {
            // Same per-pc suffix-table walk as `static_mem_uops`.
            let mut pc = 0;
            while pc < c.blocks.len() {
                let sb = &c.blocks[pc];
                resolved += sb.static_ops() as usize;
                mem += sb.mem_ops as usize;
                pc += (sb.len as usize).max(1);
            }
        }
        (resolved, mem)
    }

    /// Iterates over all installed methods and their code.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, &CompiledCode)> {
        self.methods
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (MethodId(i as u32), c)))
    }

    /// Number of compiled methods.
    pub fn len(&self) -> usize {
        self.methods.iter().flatten().count()
    }

    /// True if no methods are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Uop::Br {
            op: CmpOp::Eq,
            a: MReg(0),
            b: MReg(1),
            target: 0
        }
        .is_branch());
        assert!(Uop::JmpInd {
            sel: MReg(0),
            table: Box::default(),
            default: 0
        }
        .is_branch());
        assert!(
            !Uop::Jmp { target: 0 }.is_branch(),
            "unconditional jumps don't predict"
        );
        assert!(Uop::LoadField {
            dst: MReg(0),
            obj: MReg(1),
            field: 0
        }
        .is_memory());
        assert!(Uop::Poll.is_memory());
        assert!(!Uop::Const {
            dst: MReg(0),
            imm: 3
        }
        .is_memory());
    }

    #[test]
    fn code_cache_roundtrip() {
        let mut cc = CodeCache::new();
        assert!(cc.is_empty());
        cc.install(
            MethodId(3),
            CompiledCode {
                name: "m".into(),
                uops: vec![Uop::Ret { src: None }],
                regs: 1,
                assert_origins: vec![],
                region_count: 0,
                region_boundaries: Vec::new(),
                blocks: Vec::new(),
                region_writes: Default::default(),
            },
        );
        assert_eq!(cc.len(), 1);
        assert_eq!(cc.static_uops(), 1);
        let sealed = cc.get(MethodId(3)).unwrap();
        assert_eq!(sealed.blocks.len(), 1, "install seals the block index");
        assert_eq!(sealed.blocks[0].len, 1);
        assert!(cc.get(MethodId(3)).is_some());
        assert!(cc.get(MethodId(4)).is_none());
    }

    #[test]
    fn install_rebases_seal_sites_across_methods() {
        let mem_method = |name: &str| CompiledCode {
            name: name.into(),
            uops: vec![
                Uop::LoadField {
                    dst: MReg(0),
                    obj: MReg(0),
                    field: 0,
                },
                Uop::LoadField {
                    dst: MReg(0),
                    obj: MReg(0),
                    field: 1,
                },
                Uop::Ret { src: Some(MReg(0)) },
            ],
            regs: 1,
            assert_origins: vec![],
            region_count: 0,
            region_boundaries: Vec::new(),
            blocks: Vec::new(),
            region_writes: Default::default(),
        };
        let mut cc = CodeCache::new();
        cc.install(MethodId(0), mem_method("a"));
        cc.install(MethodId(1), mem_method("b"));
        let a = cc.get(MethodId(0)).unwrap();
        let b = cc.get(MethodId(1)).unwrap();
        let sites = |c: &CompiledCode| c.blocks.iter().map(|blk| blk.mem_site).collect::<Vec<_>>();
        use crate::cache::NO_SITE;
        assert_eq!(sites(a), vec![0, 1, NO_SITE]);
        assert_eq!(
            sites(b),
            vec![2, 3, NO_SITE],
            "second install must land in fresh global predictor slots"
        );
        assert_eq!(cc.seal_sites(), 4);
        // Reinstalling never recycles slots.
        cc.install(MethodId(0), mem_method("a2"));
        assert_eq!(sites(cc.get(MethodId(0)).unwrap()), vec![4, 5, NO_SITE]);
        assert_eq!(cc.seal_sites(), 6);
    }
}
