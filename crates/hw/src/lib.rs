//! # hasp-hw — hardware atomicity substrate and timing simulator
//!
//! The hardware half of the HASP reproduction of *Hardware Atomicity for
//! Reliable Software Speculation* (ISCA 2007): the three ISA primitives
//! (`aregion_begin <alt>`, `aregion_end`, `aregion_abort`) implemented on a
//! checkpoint execution substrate, exactly as §3 prescribes — register
//! checkpoint at the recovery point, address tracking through per-line
//! speculative read/write bits in the L1, buffered updates (undo log),
//! conflict detection against coherence invalidations, flash-clear
//! commit/abort — plus a Table 1 machine model for timing.
//!
//! * [`uop`] — the machine ISA and code cache.
//! * [`lower()`](crate::lower::lower) — IR → uop lowering (phi elimination, assert/abort shapes,
//!   reservation-lock and SLE expansions).
//! * [`cache`] — two-level cache with speculative bits (overflow → abort).
//! * [`coherence`] — the sharded line directory behind real multi-core
//!   runs: N machines on OS threads publish per-line intent and receive
//!   asynchronous organic `Conflict`/`Sle` aborts.
//! * [`bpred`] — tournament + indirect branch predictors.
//! * [`machine`] — the functional executor with checkpoint/rollback and the
//!   interval timing model, including the Figure 9 sensitivity knobs.
//! * [`superblock`] — the decoded superblock index behind the batched
//!   dispatch hot path (built at code-cache install time).
//! * [`config`] — Table 1 parameters, §6.3 variants, and the online
//!   abort-recovery governor ladder policy ([`GovernorConfig`],
//!   [`ReformRequest`]).
//! * [`stats`] — uops/cycles/coverage/abort statistics (Tables 3, Fig. 8/9).
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) and
//!   structured machine errors ([`MachineFault`]).
//! * [`publish`] — epoch/RCU-style lock-free publication ([`Publisher`]),
//!   the code-cache installation channel for the serving harness.

#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod fault;
pub mod fxhash;
pub mod lineset;
pub mod lower;
pub mod machine;
pub mod publish;
pub mod stats;
pub mod superblock;
pub mod uop;

pub use cache::{CacheSim, FastHit, HitLevel, TargetCache, NO_SITE};
pub use coherence::{CohMsg, CoreId, CoreLink, Directory, LineState, LinkStats, MAX_CORES};
pub use config::{Dispatch, GovernorConfig, HwConfig, ReformRequest};
pub use fault::{FaultKind, FaultPlan, MachineFault, FAULT_KINDS};
pub use lower::lower;
pub use machine::{Machine, MachinePools, FALLBACK_LOCK_ADDR};
pub use publish::{PinGuard, Publisher};
pub use stats::{
    AbortReason, Histogram, MarkerSnap, PredStats, RegionCounters, RunStats, ABORT_REASONS,
};
pub use uop::{CodeCache, CompiledCode, MReg, Uop, UopClass, UOP_CLASSES};
