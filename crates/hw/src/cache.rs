//! Two-level data-cache model with per-line speculative read/write bits.
//!
//! Exactly the paper's §3.3 implementation sketch: "the data cache retains
//! the data footprint of the atomic region ... Each cache line is extended
//! with two bits for tracking which addresses have been read and written in
//! the atomic region. These addresses are exposed to the coherency mechanism
//! to observe invalidations. Flash clear operations are used to commit
//! and/or abort speculative state." Evicting a speculatively-accessed line
//! overflows the region (best-effort hardware → abort).
//!
//! The flash clear itself is modeled the way real hardware builds it: the
//! speculative R/W "bits" are epoch tags compared against a region epoch, so
//! a commit clears every line's speculative state by bumping one counter —
//! O(1), like the single wired clear line it models — instead of sweeping
//! the array. Aborts still sweep, but only to invalidate speculatively
//! written lines, and aborts are the rare case.

use crate::config::HwConfig;

/// Branch-target side-cache size (power of two, direct-mapped).
const BTB_ENTRIES: usize = 512;

/// A direct-mapped branch-target side-cache for `JmpInd` tables and
/// `CallVirt` vtable walks, keyed by (site, dynamic selector). Both lookups
/// it short-circuits are pure functions of that pair — a switch table is
/// immutable and a class's vtable slot never changes — so hits are
/// semantically transparent; monomorphic sites skip the table walk entirely.
#[derive(Debug)]
pub struct TargetCache {
    entries: Vec<BtbEntry>,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    site: u64,
    key: i64,
    target: usize,
}

impl Default for TargetCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TargetCache {
    /// Creates an empty side-cache.
    pub fn new() -> Self {
        TargetCache {
            // `site: u64::MAX` never collides with a real pc hash (method
            // ids are 32-bit), so it doubles as the empty sentinel.
            entries: vec![
                BtbEntry {
                    site: u64::MAX,
                    key: 0,
                    target: 0,
                };
                BTB_ENTRIES
            ],
        }
    }

    /// The memoized target for `(site, key)`, if the entry is live. The
    /// sentinel site is rejected explicitly, so even a probe with
    /// `u64::MAX` (which no real pc hash produces) cannot match an empty
    /// entry.
    #[inline]
    pub fn lookup(&self, site: u64, key: i64) -> Option<usize> {
        let e = &self.entries[(site as usize) & (BTB_ENTRIES - 1)];
        (e.site == site && e.key == key && site != u64::MAX).then_some(e.target)
    }

    /// Installs (or replaces) the direct-mapped entry for `(site, key)`.
    #[inline]
    pub fn insert(&mut self, site: u64, key: i64, target: usize) {
        self.entries[(site as usize) & (BTB_ENTRIES - 1)] = BtbEntry { site, key, target };
    }

    /// Flash-invalidates every entry, restoring construction state in place
    /// (allocation reused — the cross-request reset path).
    pub fn reset(&mut self) {
        self.entries.fill(BtbEntry {
            site: u64::MAX,
            key: 0,
            target: 0,
        });
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L2 unified cache hit.
    L2,
    /// Miss to memory.
    Memory,
}

/// Epoch value meaning "bit never set" (no region epoch ever matches it).
const NEVER: u64 = 0;

/// Tag value meaning "line invalid". Real tags are line indices
/// (`addr >> log2(line_bytes)`), which cannot reach `u64::MAX`, so validity
/// folds into the tag word and the hit-path scan is a single array sweep.
const TAG_INVALID: u64 = u64::MAX;

/// One cache level, struct-of-arrays: the per-access tag scan touches one
/// contiguous `ways`-sized window of `tags` (a single hardware cache line
/// for any sane associativity) instead of striding across fat line records;
/// LRU ages and speculative epochs live in parallel arrays touched only on
/// a hit index or an install.
#[derive(Debug, Clone)]
struct Level {
    sets: u64,
    ways: u64,
    /// `sets - 1` when the set count is a power of two (every shipped
    /// config), letting the per-access set index be a mask instead of a
    /// hardware `div` — this runs on every simulated memory uop.
    set_mask: Option<u64>,
    tags: Vec<u64>,
    lru: Vec<u64>,
    /// Region epoch in which each line was last speculatively read; the
    /// read bit is "set" iff this equals the cache's current epoch.
    spec_read_epoch: Vec<u64>,
    /// Region epoch in which each line was last speculatively written.
    spec_write_epoch: Vec<u64>,
    tick: u64,
}

impl Level {
    fn new(sets: u64, ways: u64) -> Self {
        let n = (sets * ways) as usize;
        Level {
            sets,
            ways,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            tags: vec![TAG_INVALID; n],
            lru: vec![0; n],
            spec_read_epoch: vec![NEVER; n],
            spec_write_epoch: vec![NEVER; n],
            tick: 0,
        }
    }

    fn spec(&self, i: usize, epoch: u64) -> bool {
        self.spec_read_epoch[i] == epoch || self.spec_write_epoch[i] == epoch
    }

    /// Restores construction state in place, reusing the allocations.
    fn reset(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.lru.fill(0);
        self.spec_read_epoch.fill(NEVER);
        self.spec_write_epoch.fill(NEVER);
        self.tick = 0;
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = match self.set_mask {
            Some(m) => (line_addr & m) as usize,
            None => (line_addr % self.sets) as usize,
        };
        let w = self.ways as usize;
        set * w..(set + 1) * w
    }

    #[inline]
    fn lookup(&mut self, line_addr: u64) -> Option<usize> {
        self.tick += 1;
        let r = self.set_range(line_addr);
        let base = r.start;
        // Branchless scan: sweep the whole (tiny) set instead of exiting at
        // the first match. An early-exit loop leaves at a data-dependent
        // iteration, which costs the *host* a branch mispredict on nearly
        // every simulated access; the fixed-trip select below compiles to
        // straight-line compare/cmov code. A tag match implies validity: no
        // real line is `TAG_INVALID`.
        let mut hit = usize::MAX;
        for (k, &t) in self.tags[r].iter().enumerate() {
            if t == line_addr {
                hit = base + k;
            }
        }
        if hit != usize::MAX {
            self.lru[hit] = self.tick;
            return Some(hit);
        }
        None
    }

    /// Installs a line, returning the evicted line if it had speculative
    /// bits set (overflow signal); prefers evicting non-speculative lines.
    fn install(&mut self, line_addr: u64, epoch: u64) -> (usize, bool) {
        self.tick += 1;
        let r = self.set_range(line_addr);
        // Choose victim: invalid > non-speculative LRU > speculative LRU.
        let mut victim = r.start;
        let mut best = (2u8, u64::MAX); // (class, lru)
        for i in r {
            let class = if self.tags[i] == TAG_INVALID {
                0
            } else if !self.spec(i, epoch) {
                1
            } else {
                2
            };
            if (class, self.lru[i]) < best {
                best = (class, self.lru[i]);
                victim = i;
            }
        }
        let overflow = self.tags[victim] != TAG_INVALID && self.spec(victim, epoch);
        self.tags[victim] = line_addr;
        self.lru[victim] = self.tick;
        self.spec_read_epoch[victim] = NEVER;
        self.spec_write_epoch[victim] = NEVER;
        (victim, overflow)
    }
}

/// The simulated cache hierarchy, fronted by a one-entry MRU line filter.
///
/// The filter (`DESIGN.md` §12) memoizes the last L1-resident line touched:
/// a repeat access to it skips the set scan, the LRU bump, and the install
/// path entirely — the dominant pattern in field/array-heavy workloads is
/// runs of accesses to one object's line. Two invariants make it invisible:
///
/// * **Validity.** The entry `(mru_line, mru_idx)` is live only while
///   `mru_epoch == epoch`. Commit and abort bump the epoch (the same flash
///   clear that wipes the speculative bits), and `invalidate` disarms it
///   explicitly, so the filter can never claim residency for a line the
///   hierarchy no longer holds: between two full-path accesses nothing else
///   can evict an L1 line.
/// * **Deferred LRU.** Filter hits do not bump the line's recency; the
///   collapsed run is recorded in `mru_dirty` and one final bump is flushed
///   before the next full-path access (or tag mutation). Victim selection
///   compares only *relative* `(class, lru)` order within a set, and a run
///   of same-line hits has no intervening access, so collapsing its bumps
///   to one preserves every victim choice — hence residency, hit levels,
///   and overflow signals — bit-exactly.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    line_bytes: u64,
    /// `log2(line_bytes)` when the line size is a power of two, so the
    /// per-access line index is a shift instead of a hardware `div`.
    line_shift: Option<u32>,
    /// Current region epoch; starts above [`NEVER`] so default lines are
    /// never speculative.
    epoch: u64,
    /// MRU-filter line index ([`TAG_INVALID`] disarms; never armed when the
    /// filter is configured off).
    mru_line: u64,
    /// The armed line's way slot in L1 (valid only while the entry is live).
    mru_idx: usize,
    /// Epoch at arming: the entry is live iff this equals `epoch`, so every
    /// commit/abort flash-clears the filter for free.
    mru_epoch: u64,
    /// A collapsed run of filter hits is pending its final LRU bump.
    mru_dirty: bool,
    /// `HwConfig::mem_filter` — `false` forces the unfiltered reference
    /// path for the equivalence gates.
    filter: bool,
    /// O(1)-maintained count of L1 lines holding current-epoch speculative
    /// state (replaces the O(sets×ways) scan the validator used to pay on
    /// every commit/abort).
    spec_count: u32,
    /// Construction-time-precomputed extra contention cycles charged per L2
    /// hit — `(l2_latency - l1_latency) / mlp * width`, the exact integer
    /// the per-access path computes (with two hardware divides) on every
    /// miss. The batched accounting path multiplies this by the block's L2
    /// tally once per superblock instead.
    pub(crate) l2_extra_cxw: u64,
    /// As [`Self::l2_extra_cxw`] for misses to memory:
    /// `(mem_latency - l1_latency) / mlp * width`.
    pub(crate) mem_extra_cxw: u64,
}

impl CacheSim {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &HwConfig) -> Self {
        CacheSim {
            l1: Level::new(cfg.l1_sets(), cfg.l1_ways),
            l2: Level::new(cfg.l2_sets(), cfg.l2_ways),
            line_bytes: cfg.line_bytes,
            line_shift: cfg
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.line_bytes.trailing_zeros()),
            epoch: NEVER + 1,
            mru_line: TAG_INVALID,
            mru_idx: 0,
            mru_epoch: NEVER,
            mru_dirty: false,
            filter: cfg.mem_filter,
            spec_count: 0,
            l2_extra_cxw: (cfg.l2_latency - cfg.l1_latency) / cfg.mlp * cfg.width,
            mem_extra_cxw: (cfg.mem_latency - cfg.l1_latency) / cfg.mlp * cfg.width,
        }
    }

    /// Restores the hierarchy to the state [`CacheSim::new`] would build
    /// for `cfg`. When the geometry matches the current one, every array is
    /// cleared in place (the allocations — megabytes for an L2 — are the
    /// whole point of recycling a simulator across service requests);
    /// otherwise the hierarchy is rebuilt. Either way the result is
    /// bit-identical to a freshly constructed simulator.
    pub fn reset(&mut self, cfg: &HwConfig) {
        let same_geometry = self.l1.sets == cfg.l1_sets()
            && self.l1.ways == cfg.l1_ways
            && self.l2.sets == cfg.l2_sets()
            && self.l2.ways == cfg.l2_ways
            && self.line_bytes == cfg.line_bytes;
        if !same_geometry {
            *self = CacheSim::new(cfg);
            return;
        }
        self.l1.reset();
        self.l2.reset();
        self.epoch = NEVER + 1;
        self.mru_line = TAG_INVALID;
        self.mru_idx = 0;
        self.mru_epoch = NEVER;
        self.mru_dirty = false;
        self.filter = cfg.mem_filter;
        self.spec_count = 0;
        self.l2_extra_cxw = (cfg.l2_latency - cfg.l1_latency) / cfg.mlp * cfg.width;
        self.mem_extra_cxw = (cfg.mem_latency - cfg.l1_latency) / cfg.mlp * cfg.width;
    }

    /// Whether the MRU line filter currently holds a live entry — must be
    /// `false` between requests (the cross-request isolation check).
    pub fn mru_armed(&self) -> bool {
        self.mru_line != TAG_INVALID && self.mru_epoch == self.epoch
    }

    /// The cache line index of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.line_bytes,
        }
    }

    /// Marks the current epoch's speculative bit on L1 way `idx`,
    /// maintaining the O(1) speculative-line counter (a line is counted
    /// once however many bits it accumulates).
    #[inline]
    fn mark_spec(&mut self, idx: usize, write: bool) {
        if !self.l1.spec(idx, self.epoch) {
            self.spec_count += 1;
        }
        if write {
            self.l1.spec_write_epoch[idx] = self.epoch;
        } else {
            self.l1.spec_read_epoch[idx] = self.epoch;
        }
    }

    /// Applies the deferred LRU bump of a collapsed filter-hit run: the MRU
    /// line receives the run's *final* tick, exactly as if only the last of
    /// the same-line accesses had gone through [`Level::lookup`]. Called
    /// before any full-path access or tag mutation, while the armed entry
    /// is still valid (nothing can evict an L1 line in between).
    #[inline]
    fn flush_mru(&mut self) {
        if self.mru_dirty {
            self.l1.tick += 1;
            self.l1.lru[self.mru_idx] = self.l1.tick;
            self.mru_dirty = false;
        }
    }

    /// The zero-cost tier of [`CacheSim::access`], for callers that batch
    /// their own statistics: `true` iff `addr` is a repeat of the armed MRU
    /// line whose effects are fully absorbed — an L1 hit on a resident line
    /// with (when `speculative`) a speculative bit already covering this
    /// access kind, so *no* residency, LRU-order, speculative, footprint,
    /// or overflow state can change. A write is absorbed only if the write
    /// bit is already set; a read also when only the write bit is set (the
    /// skipped read bit is unobservable: every consumer tests read-or-write,
    /// and the write bit can only be cleared by the same flash clears).
    #[inline(always)]
    pub fn absorbed(&self, addr: u64, write: bool, speculative: bool) -> bool {
        let line = self.line_of(addr);
        line == self.mru_line
            && self.mru_epoch == self.epoch
            && (!speculative
                || self.l1.spec_write_epoch[self.mru_idx] == self.epoch
                || (!write && self.l1.spec_read_epoch[self.mru_idx] == self.epoch))
    }

    /// Performs an access. When `speculative` (inside an atomic region) the
    /// touched L1 line's read/write bit is set. Returns the servicing level
    /// and whether installing the line evicted speculative state (region
    /// overflow — the caller must abort).
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool, speculative: bool) -> (HitLevel, bool) {
        let line = self.line_of(addr);
        // MRU filter hit: the line is L1-resident at `mru_idx` (nothing can
        // have evicted it since arming), so the set scan, LRU bump, and
        // install path are all skipped; the recency bump is deferred.
        if line == self.mru_line && self.mru_epoch == self.epoch {
            self.mru_dirty = true;
            if speculative {
                self.mark_spec(self.mru_idx, write);
            }
            return (HitLevel::L1, false);
        }
        self.flush_mru();
        let (level, idx, overflow) = match self.l1.lookup(line) {
            Some(i) => (HitLevel::L1, i, false),
            None => {
                let level = if self.l2.lookup(line).is_some() {
                    HitLevel::L2
                } else {
                    self.l2.install(line, NEVER);
                    HitLevel::Memory
                };
                let (i, ovf) = self.l1.install(line, self.epoch);
                (level, i, ovf)
            }
        };
        if overflow {
            // The evicted victim carried current-epoch speculative bits;
            // its state left the cache with it.
            debug_assert!(self.spec_count > 0);
            self.spec_count -= 1;
        }
        if speculative {
            self.mark_spec(idx, write);
        }
        if self.filter {
            self.mru_line = line;
            self.mru_idx = idx;
            self.mru_epoch = self.epoch;
            self.mru_dirty = false;
        }
        (level, overflow)
    }

    /// Commits the current region: flash-clears all speculative bits (a
    /// single epoch bump — the O(1) wired clear the paper describes). The
    /// epoch bump also flash-clears the MRU filter entry.
    pub fn commit_region(&mut self) {
        self.flush_mru();
        self.epoch += 1;
        self.spec_count = 0;
    }

    /// Aborts the current region: speculatively-written lines are
    /// invalidated (their data is rolled back architecturally by the undo
    /// log); read bits — and the MRU filter entry — are flash-cleared.
    pub fn abort_region(&mut self) {
        self.flush_mru();
        for (i, e) in self.l1.spec_write_epoch.iter().enumerate() {
            if *e == self.epoch {
                self.l1.tags[i] = TAG_INVALID;
            }
        }
        self.epoch += 1;
        self.spec_count = 0;
    }

    /// Number of L1 lines currently holding speculative state — O(1) from
    /// the maintained counter (the invariant validator calls this on every
    /// commit and abort in validation mode).
    pub fn spec_lines(&self) -> usize {
        debug_assert_eq!(
            self.spec_count as usize,
            self.spec_lines_scan(),
            "maintained speculative-line counter out of sync with the array scan"
        );
        self.spec_count as usize
    }

    /// The reference O(sets×ways) scan the counter replaces; retained as
    /// the debug-mode oracle for [`CacheSim::spec_lines`].
    fn spec_lines_scan(&self) -> usize {
        (0..self.l1.tags.len())
            .filter(|&i| self.l1.tags[i] != TAG_INVALID && self.l1.spec(i, self.epoch))
            .count()
    }

    /// An external coherence invalidation for `addr`: the line is removed
    /// from *both* levels (the model is coherence-inclusive: an external
    /// writer owns the line exclusively, so no level may keep a stale
    /// copy). Returns `true` if it hit a line in the current region's read
    /// or write set (conflict — the caller must abort the region).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        self.flush_mru();
        self.mru_line = TAG_INVALID;
        self.mru_epoch = NEVER;
        let line = self.line_of(addr);
        for i in self.l2.set_range(line) {
            if self.l2.tags[i] == line {
                self.l2.tags[i] = TAG_INVALID;
                self.l2.spec_read_epoch[i] = NEVER;
                self.l2.spec_write_epoch[i] = NEVER;
                break;
            }
        }
        let r = self.l1.set_range(line);
        for i in r {
            if self.l1.tags[i] == line {
                let conflict = self.l1.spec(i, self.epoch);
                if conflict {
                    debug_assert!(self.spec_count > 0);
                    self.spec_count -= 1;
                }
                self.l1.tags[i] = TAG_INVALID;
                self.l1.spec_read_epoch[i] = NEVER;
                self.l1.spec_write_epoch[i] = NEVER;
                return conflict;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> CacheSim {
        CacheSim::new(&HwConfig::baseline())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = sim();
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::Memory);
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::L1);
        assert_eq!(c.access(0x1008, false, false).0, HitLevel::L1, "same line");
        assert_eq!(
            c.access(0x1040, false, false).0,
            HitLevel::Memory,
            "next line"
        );
    }

    #[test]
    fn l2_backstop() {
        let mut c = sim();
        c.access(0x1000, false, false);
        // Evict from L1 by filling its set (128 sets * 64B = 8KB stride).
        for k in 1..=4 {
            c.access(0x1000 + k * 8192, false, false);
        }
        // 0x1000 evicted from L1 but still in L2.
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::L2);
    }

    #[test]
    fn speculative_bits_and_commit() {
        let mut c = sim();
        c.access(0x2000, false, true);
        c.access(0x3000, true, true);
        assert_eq!(c.spec_lines(), 2);
        c.commit_region();
        assert_eq!(c.spec_lines(), 0);
        // Data survives commit.
        assert_eq!(c.access(0x2000, false, false).0, HitLevel::L1);
    }

    #[test]
    fn abort_invalidates_written_lines_only() {
        let mut c = sim();
        c.access(0x2000, false, true); // read set
        c.access(0x3000, true, true); // write set
        c.abort_region();
        assert_eq!(c.spec_lines(), 0);
        assert_eq!(
            c.access(0x2000, false, false).0,
            HitLevel::L1,
            "read line survives"
        );
        assert_ne!(
            c.access(0x3000, false, false).0,
            HitLevel::L1,
            "written line invalidated"
        );
    }

    #[test]
    fn overflow_when_set_full_of_speculative_lines() {
        let mut c = sim();
        // Fill one L1 set (4 ways) with speculative lines; the 5th evicts one.
        for k in 0..4u64 {
            let (_, ovf) = c.access(0x1000 + k * 8192, true, true);
            assert!(!ovf);
        }
        let (_, ovf) = c.access(0x1000 + 4 * 8192, true, true);
        assert!(ovf, "fifth speculative line in a 4-way set overflows");
    }

    #[test]
    fn conflict_detection() {
        let mut c = sim();
        c.access(0x5000, false, true);
        assert!(
            c.invalidate(0x5008),
            "invalidation of read-set line conflicts"
        );
        assert!(!c.invalidate(0x9000), "unrelated line: no conflict");
        c.access(0x6000, false, false);
        c.commit_region();
        assert!(!c.invalidate(0x6000), "non-speculative line: no conflict");
    }

    #[test]
    fn mru_filter_absorbs_only_covered_accesses() {
        let mut c = sim();
        assert!(!c.absorbed(0x1000, false, false), "cold cache: disarmed");
        c.access(0x1000, false, false);
        assert!(c.absorbed(0x1008, false, false), "same line is armed");
        assert!(!c.absorbed(0x1040, false, false), "different line");
        // Speculative coverage: a read bit absorbs reads but not writes;
        // the write bit covers both (the skipped read bit is unobservable).
        c.access(0x1000, false, true);
        assert!(c.absorbed(0x1008, false, true));
        assert!(!c.absorbed(0x1008, true, true), "write needs the write bit");
        c.access(0x1000, true, true);
        assert!(c.absorbed(0x1008, true, true));
        assert!(c.absorbed(0x1008, false, true), "write bit covers reads");
        c.commit_region();
        assert!(
            !c.absorbed(0x1000, false, false),
            "the commit epoch bump flash-clears the filter"
        );
        c.access(0x1000, false, false);
        c.invalidate(0x1000);
        assert!(!c.absorbed(0x1000, false, false), "invalidate disarms");
    }

    #[test]
    fn unfiltered_config_never_arms_the_filter() {
        let mut c = CacheSim::new(&HwConfig::unfiltered());
        c.access(0x1000, false, false);
        c.access(0x1000, false, false);
        assert!(!c.absorbed(0x1008, false, false));
    }

    #[test]
    fn invalidate_removes_the_line_from_both_levels() {
        let mut c = sim();
        c.access(0x1000, false, false); // resident in L1 and L2
        c.invalidate(0x1000);
        assert_eq!(
            c.access(0x1000, false, false).0,
            HitLevel::Memory,
            "coherence-inclusive: the L2 copy is gone too"
        );
    }

    #[test]
    fn deferred_lru_preserves_victim_choice_against_reference() {
        let mut f = sim();
        let mut r = CacheSim::new(&HwConfig::unfiltered());
        // A same-line run (collapsed by the filter in `f`), then an eviction
        // storm through the same L1 set (8 KB stride), then re-probes: every
        // hit level, overflow signal, and the victim sequence behind them
        // must match the unfiltered reference access for access.
        let mut seq: Vec<(u64, bool, bool)> = vec![
            (0x1000, false, false),
            (0x1008, false, false),
            (0x1010, true, false),
            (0x1018, false, false),
        ];
        for k in 1..=4u64 {
            seq.push((0x1000 + k * 8192, false, false));
        }
        seq.push((0x1000, false, false));
        seq.push((0x1000 + 8192, true, true));
        seq.push((0x1000 + 8192, false, true));
        for &(a, w, s) in &seq {
            assert_eq!(f.access(a, w, s), r.access(a, w, s), "at {a:#x}");
            assert_eq!(f.spec_lines(), r.spec_lines());
        }
    }

    #[test]
    fn spec_counter_tracks_overflow_and_conflict_evictions() {
        let mut c = sim();
        for k in 0..4u64 {
            c.access(0x1000 + k * 8192, true, true);
        }
        assert_eq!(c.spec_lines(), 4);
        let (_, ovf) = c.access(0x1000 + 4 * 8192, true, true);
        assert!(ovf);
        assert_eq!(c.spec_lines(), 4, "victim left with its bits, +1 new line");
        assert!(c.invalidate(0x1000 + 4 * 8192));
        assert_eq!(
            c.spec_lines(),
            3,
            "conflicting line left the read/write set"
        );
    }

    #[test]
    fn target_cache_hit_miss_and_alias_eviction() {
        let mut t = TargetCache::new();
        // Cold: every probe misses.
        assert_eq!(t.lookup(10, 3), None);
        t.insert(10, 3, 77);
        // Hit requires both the site and the dynamic key to match.
        assert_eq!(t.lookup(10, 3), Some(77));
        assert_eq!(t.lookup(10, 4), None, "same site, different selector");
        assert_eq!(t.lookup(11, 3), None, "different site, same selector");
        // A new selector at the same site replaces the entry (direct-mapped,
        // one way per index): the old pair is gone.
        t.insert(10, 4, 88);
        assert_eq!(t.lookup(10, 4), Some(88));
        assert_eq!(t.lookup(10, 3), None, "evicted by the same-site update");
        // Aliasing: sites 512 apart map to the same entry and evict each
        // other (index is site & (BTB_ENTRIES - 1)).
        t.insert(5, 0, 1);
        assert_eq!(t.lookup(5, 0), Some(1));
        t.insert(5 + 512, 0, 2);
        assert_eq!(t.lookup(5 + 512, 0), Some(2));
        assert_eq!(t.lookup(5, 0), None, "aliased site evicted the entry");
        // The empty sentinel never matches a real site hash even at the
        // aliasing index of u64::MAX.
        assert_eq!(t.lookup(u64::MAX, 0), None);
    }

    #[test]
    fn epoch_clear_does_not_leak_stale_bits_across_regions() {
        let mut c = sim();
        // Region 1 touches a line speculatively, commits.
        c.access(0x7000, true, true);
        c.commit_region();
        assert_eq!(c.spec_lines(), 0);
        // Region 2 re-touches the same line non-speculatively: still clean.
        c.access(0x7000, false, false);
        assert_eq!(c.spec_lines(), 0);
        // A conflict probe on it must not see region 1's stale write bit.
        assert!(!c.invalidate(0x7000));
        // Region 3: the line is speculative again only once re-marked.
        c.access(0x8000, false, true);
        c.abort_region();
        c.access(0x8000, false, true);
        assert_eq!(c.spec_lines(), 1);
    }
}
